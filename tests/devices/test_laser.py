"""Tests for the loss-budget-driven laser power model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.devices import (
    LossBudget,
    ddot_path_loss,
    default_library,
    required_laser_power,
    splitter_tree_loss_db,
)
from repro.units import db_to_linear


@pytest.fixture
def lib():
    return default_library()


class TestLossBudget:
    def test_total_is_sum_of_entries(self):
        budget = LossBudget()
        budget.add("a", 1.0)
        budget.add("b", 2.5)
        assert budget.total_db == pytest.approx(3.5)

    def test_transmission_matches_db(self):
        budget = LossBudget()
        budget.add("x", 10.0)
        assert budget.transmission == pytest.approx(0.1)

    def test_rejects_negative_loss(self):
        budget = LossBudget()
        with pytest.raises(ValueError):
            budget.add("gain?", -1.0)

    def test_empty_budget_is_lossless(self):
        assert LossBudget().total_db == 0.0
        assert LossBudget().transmission == 1.0


class TestSplitterTree:
    def test_fanout_one_is_lossless(self, lib):
        assert splitter_tree_loss_db(1, lib) == 0.0

    def test_fanout_two(self, lib):
        # 3.01 dB ideal split + one Y-branch excess loss.
        expected = 10 * math.log10(2) + lib.y_branch.insertion_loss_db
        assert splitter_tree_loss_db(2, lib) == pytest.approx(expected)

    def test_fanout_twelve(self, lib):
        # 10.79 dB ideal + ceil(log2(12)) = 4 stages of excess loss.
        expected = 10 * math.log10(12) + 4 * lib.y_branch.insertion_loss_db
        assert splitter_tree_loss_db(12, lib) == pytest.approx(expected)

    def test_rejects_zero_fanout(self, lib):
        with pytest.raises(ValueError):
            splitter_tree_loss_db(0, lib)

    @given(fanout=st.integers(min_value=1, max_value=256))
    def test_monotone_in_fanout(self, fanout):
        lib = default_library()
        assert splitter_tree_loss_db(fanout + 1, lib) >= splitter_tree_loss_db(
            fanout, lib
        )


class TestDDotPathLoss:
    def test_contains_all_path_elements(self, lib):
        budget = ddot_path_loss(lib, broadcast_fanout=12, crossings=6)
        names = [name for name, _ in budget.entries]
        for expected in (
            "wdm_demux",
            "mzm",
            "wdm_mux",
            "broadcast_tree",
            "crossings",
            "ddot_phase_shifter",
            "ddot_coupler",
        ):
            assert expected in names

    def test_paper_scale_loss(self, lib):
        """The N=12 crossbar path lands in the mid-teens of dB."""
        budget = ddot_path_loss(lib, broadcast_fanout=12, crossings=6)
        assert 13.0 < budget.total_db < 19.0

    def test_no_broadcast_is_cheaper(self, lib):
        wide = ddot_path_loss(lib, broadcast_fanout=12, crossings=0).total_db
        narrow = ddot_path_loss(lib, broadcast_fanout=1, crossings=0).total_db
        assert narrow < wide


class TestRequiredLaserPower:
    def test_scales_linearly_with_channels(self, lib):
        p1 = required_laser_power(100, 15.0, 4, lib)
        p2 = required_laser_power(200, 15.0, 4, lib)
        assert p2 == pytest.approx(2 * p1)

    def test_scales_with_loss(self, lib):
        p_low = required_laser_power(100, 10.0, 4, lib)
        p_high = required_laser_power(100, 20.0, 4, lib)
        assert p_high == pytest.approx(10 * p_low)

    def test_each_output_bit_doubles_power(self, lib):
        """The paper's 0.77 W -> 12.3 W laser jump (4-bit -> 8-bit) is 16x."""
        p4 = required_laser_power(100, 15.0, 4, lib)
        p8 = required_laser_power(100, 15.0, 8, lib)
        assert p8 == pytest.approx(16 * p4)

    def test_wall_plug_efficiency_divides(self, lib):
        # direct recomputation for a single lossless channel at 4 bits:
        # -25 dBm floor = 3.16 uW optical, / 0.2 wall-plug = 15.8 uW electrical
        optical_floor = 1e-3 * db_to_linear(lib.photodetector.sensitivity_dbm)
        expected = optical_floor / lib.laser.wall_plug_efficiency
        assert required_laser_power(1, 0.0, 4, lib) == pytest.approx(
            expected, rel=1e-6
        )

    def test_zero_channels_needs_no_power(self, lib):
        assert required_laser_power(0, 15.0, 4, lib) == 0.0

    def test_rejects_bad_inputs(self, lib):
        with pytest.raises(ValueError):
            required_laser_power(-1, 15.0, 4, lib)
        with pytest.raises(ValueError):
            required_laser_power(10, 15.0, 0, lib)
