"""Tests for the Table III device library."""

import dataclasses

import pytest

from repro.devices import DeviceLibrary, default_library
from repro.units import GHZ, MW, THZ, UM2, US


@pytest.fixture
def lib() -> DeviceLibrary:
    return default_library()


class TestTableIIIValues:
    """Every operating point matches the paper's Table III."""

    def test_dac(self, lib):
        assert lib.dac.bits == 8
        assert lib.dac.power == pytest.approx(50 * MW)
        assert lib.dac.sample_rate == pytest.approx(14 * GHZ)
        assert lib.dac.area == pytest.approx(11_000 * UM2)

    def test_adc(self, lib):
        assert lib.adc.bits == 8
        assert lib.adc.power == pytest.approx(14.8 * MW)
        assert lib.adc.sample_rate == pytest.approx(10 * GHZ)
        assert lib.adc.area == pytest.approx(2_850 * UM2)

    def test_tia(self, lib):
        assert lib.tia.power == pytest.approx(3 * MW)
        assert lib.tia.area <= 50 * UM2

    def test_microdisk(self, lib):
        assert lib.microdisk.locking_power == pytest.approx(0.275 * MW)
        assert lib.microdisk.insertion_loss_db == pytest.approx(0.93)
        assert lib.microdisk.fsr == pytest.approx(5.6 * THZ)

    def test_microring(self, lib):
        assert lib.microring.tuning_power == pytest.approx(0.21 * MW)
        assert lib.microring.locking_power == pytest.approx(1.2 * MW)
        assert lib.microring.insertion_loss_db == pytest.approx(0.95)
        assert lib.microring.area == pytest.approx(9.66 * 9.66 * UM2)

    def test_mzm(self, lib):
        assert lib.mzm.tuning_power == pytest.approx(2.25 * MW)
        assert lib.mzm.insertion_loss_db == pytest.approx(1.2)
        assert lib.mzm.area == pytest.approx(260 * 20 * UM2)

    def test_directional_coupler(self, lib):
        assert lib.directional_coupler.insertion_loss_db == pytest.approx(0.33)
        assert lib.directional_coupler.area == pytest.approx(5.25 * 2.4 * UM2)

    def test_phase_shifter(self, lib):
        assert lib.phase_shifter.insertion_loss_db == pytest.approx(0.33)
        assert lib.phase_shifter.area == pytest.approx(100 * 45 * UM2)
        assert lib.phase_shifter.response_time == pytest.approx(2 * US)

    def test_photodetector(self, lib):
        assert lib.photodetector.power == pytest.approx(1.1 * MW)
        assert lib.photodetector.sensitivity_dbm == pytest.approx(-25.0)

    def test_y_branch(self, lib):
        assert lib.y_branch.insertion_loss_db == pytest.approx(0.3)

    def test_micro_comb(self, lib):
        assert lib.micro_comb.area == pytest.approx(1_184 * 1_184 * UM2)

    def test_laser(self, lib):
        assert lib.laser.wall_plug_efficiency == pytest.approx(0.2)
        assert lib.laser.area == pytest.approx(400 * 300 * UM2)


class TestLibrarySemantics:
    def test_library_is_frozen(self, lib):
        with pytest.raises(dataclasses.FrozenInstanceError):
            lib.dac = None

    def test_derived_library_via_replace(self, lib):
        cheaper_mzm = dataclasses.replace(lib.mzm, tuning_power=1 * MW)
        derived = dataclasses.replace(lib, mzm=cheaper_mzm)
        assert derived.mzm.tuning_power == pytest.approx(1 * MW)
        assert lib.mzm.tuning_power == pytest.approx(2.25 * MW)

    def test_two_default_libraries_equal(self):
        assert default_library() == default_library()


class TestParamValidation:
    def test_dac_rejects_nonpositive_bits(self):
        from repro.devices import DACParams

        with pytest.raises(ValueError):
            DACParams(bits=0, power=1.0, sample_rate=1.0, area=1.0)

    def test_adc_rejects_nonpositive_power(self):
        from repro.devices import ADCParams

        with pytest.raises(ValueError):
            ADCParams(bits=8, power=-1.0, sample_rate=1.0, area=1.0)

    def test_laser_rejects_bad_efficiency(self):
        from repro.devices import LaserParams

        with pytest.raises(ValueError):
            LaserParams(wall_plug_efficiency=0.0, area=1.0)
        with pytest.raises(ValueError):
            LaserParams(wall_plug_efficiency=1.5, area=1.0)
