"""Tests for ADC/DAC bit-width and frequency power scaling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.devices import default_library
from repro.devices.scaling import (
    adc_energy_per_conversion,
    adc_power,
    adc_walden_fom,
    dac_energy_per_conversion,
    dac_power,
)
from repro.units import GHZ, MW


@pytest.fixture
def lib():
    return default_library()


class TestADCScaling:
    def test_reference_point_reproduced(self, lib):
        assert adc_power(8, 10 * GHZ, lib.adc) == pytest.approx(14.8 * MW)

    def test_walden_fom_value(self, lib):
        # 14.8 mW / (2^8 * 10 GHz) ~ 5.8 fJ per conversion step.
        assert adc_walden_fom(lib.adc) == pytest.approx(5.78e-15, rel=0.01)

    def test_linear_in_frequency(self, lib):
        p1 = adc_power(8, 5 * GHZ, lib.adc)
        p2 = adc_power(8, 10 * GHZ, lib.adc)
        assert p2 == pytest.approx(2 * p1)

    def test_each_bit_doubles_power(self, lib):
        p4 = adc_power(4, 5 * GHZ, lib.adc)
        p8 = adc_power(8, 5 * GHZ, lib.adc)
        assert p8 == pytest.approx(16 * p4)

    def test_energy_per_conversion_consistency(self, lib):
        f = 5 * GHZ
        assert adc_energy_per_conversion(6, lib.adc) == pytest.approx(
            adc_power(6, f, lib.adc) / f
        )

    def test_rejects_bad_inputs(self, lib):
        with pytest.raises(ValueError):
            adc_power(0, 1 * GHZ, lib.adc)
        with pytest.raises(ValueError):
            adc_power(8, -1.0, lib.adc)


class TestDACScaling:
    def test_reference_point_reproduced(self, lib):
        assert dac_power(8, 14 * GHZ, lib.dac) == pytest.approx(50 * MW)

    def test_linear_in_frequency(self, lib):
        p1 = dac_power(8, 7 * GHZ, lib.dac)
        assert dac_power(8, 14 * GHZ, lib.dac) == pytest.approx(2 * p1)

    def test_4bit_much_cheaper_than_8bit(self, lib):
        """The paper's >3x power jump from 4-bit to 8-bit hinges on this."""
        p4 = dac_power(4, 5 * GHZ, lib.dac)
        p8 = dac_power(8, 5 * GHZ, lib.dac)
        # (2^8 + 8) / (2^4 + 4) = 13.2
        assert p8 / p4 == pytest.approx(13.2, rel=1e-3)

    def test_energy_per_conversion(self, lib):
        f = 5 * GHZ
        energy = dac_energy_per_conversion(4, f, lib.dac)
        assert energy == pytest.approx(dac_power(4, f, lib.dac) / f)

    def test_rejects_bad_inputs(self, lib):
        with pytest.raises(ValueError):
            dac_power(-1, 1 * GHZ, lib.dac)
        with pytest.raises(ValueError):
            dac_power(8, 0.0, lib.dac)


class TestScalingProperties:
    @given(bits=st.integers(min_value=1, max_value=16))
    def test_adc_power_monotone_in_bits(self, bits):
        lib = default_library()
        p_low = adc_power(bits, 5 * GHZ, lib.adc)
        p_high = adc_power(bits + 1, 5 * GHZ, lib.adc)
        assert p_high > p_low

    @given(bits=st.integers(min_value=1, max_value=16))
    def test_dac_power_monotone_in_bits(self, bits):
        lib = default_library()
        p_low = dac_power(bits, 5 * GHZ, lib.dac)
        p_high = dac_power(bits + 1, 5 * GHZ, lib.dac)
        assert p_high > p_low

    @given(
        freq=st.floats(min_value=1e8, max_value=2e10),
        bits=st.integers(min_value=1, max_value=12),
    )
    def test_powers_positive(self, freq, bits):
        lib = default_library()
        assert adc_power(bits, freq, lib.adc) > 0
        assert dac_power(bits, freq, lib.dac) > 0
