"""The unified serving configuration API: EngineConfig / ClusterConfig
validation and JSON round-trips, config-object construction of engines,
clusters and servables, and the warn-once legacy-kwarg shim."""

import warnings

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ServiceModel, ServingCluster
from repro.serving import (
    EngineConfig,
    IterationCost,
    ServingEngine,
    SimulatedClock,
    reset_deprecation_warnings,
)
from repro.workloads.llm import DecoderConfig, decode_servable
from repro.workloads.transformer import TransformerConfig, servable_model

DECODER = DecoderConfig("config-test", depth=2, dim=16, heads=2, mlp_ratio=2.0)


class EchoServable:
    name = "echo"

    def prepare(self, payload):
        return payload

    def execute(self, requests):
        return [2 * request.payload for request in requests]


@pytest.fixture(autouse=True)
def fresh_deprecation_state():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


class TestEngineConfigValidation:
    @pytest.mark.parametrize(
        "changes",
        [
            {"max_batch_size": 0},
            {"max_wait_us": -1.0},
            {"queue_depth": 0},
            {"scheduler": "psychic"},
            {"num_cores": 0},
            {"shard_axis": "diagonal"},
            {"backend": "quantum"},
            {"chunk_size": 0},
            {"pipeline_depth": -1},
            {"block_size": 0},
            {"kv_capacity_bytes": -1},
            {"kv_bits": 0},
        ],
    )
    def test_rejects_bad_fields(self, changes):
        with pytest.raises(ValueError):
            EngineConfig(**changes)

    def test_replace_revalidates(self):
        config = EngineConfig()
        assert config.replace(max_batch_size=4).max_batch_size == 4
        with pytest.raises(ValueError):
            config.replace(max_batch_size=0)

    def test_batching_view(self):
        config = EngineConfig(max_batch_size=3, max_wait_us=42.0)
        policy = config.batching
        assert policy.max_batch_size == 3 and policy.max_wait_us == 42.0

    def test_frozen(self):
        with pytest.raises(Exception):
            EngineConfig().max_batch_size = 2


class TestEngineConfigRoundTrip:
    def test_dict_round_trip_with_iteration_cost(self):
        config = EngineConfig(
            scheduler="continuous",
            iteration_cost=IterationCost(base_s=1e-4, per_request_s=2e-5),
            block_size=4,
            kv_capacity_bytes=4096,
            seed=3,
        )
        data = config.to_dict()
        assert data["iteration_cost"] == {"base_s": 1e-4, "per_request_s": 2e-5}
        assert EngineConfig.from_dict(data) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown EngineConfig fields"):
            EngineConfig.from_dict({"max_batch": 4})

    def test_partial_dict_uses_defaults(self):
        config = EngineConfig.from_dict({"max_batch_size": 2})
        assert config.max_batch_size == 2
        assert config.queue_depth == EngineConfig().queue_depth

    def test_hotpath_knobs_round_trip(self):
        config = EngineConfig(chunk_size=8, pipeline_depth=2)
        data = config.to_dict()
        assert data["chunk_size"] == 8 and data["pipeline_depth"] == 2
        assert EngineConfig.from_dict(data) == config

    def test_hotpath_knobs_default_off(self):
        config = EngineConfig()
        assert config.chunk_size is None
        assert config.pipeline_depth == 1


class TestClusterConfigValidation:
    def test_rejects_bad_fields(self):
        for changes in (
            {"replicas": 0},
            {"policy": "psychic"},
            {"max_retries": -1},
            {"memo_bytes": -1},
            {"memo_ttl_s": -1.0},
            {"prefix_ttl_s": -1.0},
        ):
            with pytest.raises(ValueError):
                ClusterConfig(**changes)

    def test_service_model_excludes_iteration_cost(self):
        with pytest.raises(ValueError):
            ClusterConfig(
                service_model=ServiceModel(),
                engine=EngineConfig(
                    scheduler="continuous",
                    iteration_cost=IterationCost(
                        base_s=1e-4, per_request_s=1e-5
                    ),
                ),
            )

    def test_dict_round_trip(self):
        config = ClusterConfig(
            replicas=3,
            policy="cache_aware",
            engine=EngineConfig(max_batch_size=4, scheduler="continuous"),
            shared_cache=True,
            memo_bytes=1 << 16,
            memo_ttl_s=5.0,
        )
        assert ClusterConfig.from_dict(config.to_dict()) == config

    def test_from_dict_nested_service_model(self):
        data = ClusterConfig(service_model=ServiceModel(base_s=5e-5)).to_dict()
        config = ClusterConfig.from_dict(data)
        assert config.service_model == ServiceModel(base_s=5e-5)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            ClusterConfig.from_dict({"replica_count": 3})


class TestConfigConstruction:
    def test_engine_accepts_config_object(self):
        config = EngineConfig(max_batch_size=2, max_wait_us=0.0, queue_depth=7)
        engine = ServingEngine(
            EchoServable(), config=config, clock=SimulatedClock()
        )
        assert engine.config is config
        assert engine.policy.max_batch_size == 2
        with engine:
            handle = engine.submit(np.ones(3))
            engine.step()
            np.testing.assert_array_equal(handle.result(timeout=0), 2 * np.ones(3))

    def test_cluster_accepts_config_object(self):
        config = ClusterConfig(
            replicas=2,
            engine=EngineConfig(max_wait_us=0.0),
            close_executors=False,
        )
        with ServingCluster(
            lambda rid: EchoServable(), config=config, clock=SimulatedClock()
        ) as cluster:
            assert cluster.config is config
            assert cluster.fleet_size == 2
            handle = cluster.submit(np.ones(2))
            cluster.run_until_idle()
            np.testing.assert_array_equal(handle.result(timeout=0), 2 * np.ones(2))

    def test_servables_inherit_engine_geometry(self):
        engine = EngineConfig(block_size=4, kv_capacity_bytes=1 << 16, seed=5)
        servable = decode_servable(DECODER, engine=engine)
        assert servable.cache.block_size == 4
        assert servable.cache.pool.capacity_bytes == 1 << 16
        vit = TransformerConfig(
            "cfg-vit", depth=1, dim=32, heads=2, seq_len=17,
            n_classes=4, patch_size=4, image_size=16, in_channels=1,
        )
        a = servable_model(vit, engine=EngineConfig(seed=3))
        b = servable_model(vit, engine=EngineConfig(seed=3))
        image = np.random.default_rng(0).normal(size=(16, 16))
        np.testing.assert_array_equal(
            a.forward(image).data, b.forward(image).data
        )

    def test_explicit_kwargs_override_engine_fields(self):
        servable = decode_servable(
            DECODER, engine=EngineConfig(block_size=4), block_size=2
        )
        assert servable.cache.block_size == 2


class TestDeprecationShim:
    def test_engine_legacy_kwargs_warn_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ServingEngine(
                EchoServable(), max_batch_size=2, clock=SimulatedClock()
            )
            ServingEngine(
                EchoServable(), max_batch_size=4, clock=SimulatedClock()
            )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "max_batch_size" in str(deprecations[0].message)
        assert "EngineConfig" in str(deprecations[0].message)

    def test_warn_state_is_per_api(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ServingEngine(EchoServable(), queue_depth=4, clock=SimulatedClock())
            ServingCluster(
                lambda rid: EchoServable(),
                replicas=1,
                close_executors=False,
                clock=SimulatedClock(),
            )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2  # one per API, not one per process

    def test_config_objects_never_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ServingEngine(
                EchoServable(), config=EngineConfig(), clock=SimulatedClock()
            )
            ServingCluster(
                lambda rid: EchoServable(),
                config=ClusterConfig(replicas=1, close_executors=False),
                clock=SimulatedClock(),
            )
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_engine_rejects_config_plus_legacy(self):
        with pytest.raises(ValueError, match="not both"):
            ServingEngine(
                EchoServable(),
                config=EngineConfig(),
                max_batch_size=2,
                clock=SimulatedClock(),
            )

    def test_cluster_rejects_config_plus_legacy(self):
        with pytest.raises(ValueError, match="not both"):
            ServingCluster(
                lambda rid: EchoServable(),
                config=ClusterConfig(),
                replicas=3,
                clock=SimulatedClock(),
            )

    def test_legacy_cluster_kwargs_still_work(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            cluster = ServingCluster(
                lambda rid: EchoServable(),
                replicas=3,
                policy="least_outstanding",
                max_wait_us=0.0,
                close_executors=False,
                clock=SimulatedClock(),
            )
        assert cluster.config.replicas == 3
        assert cluster.config.policy == "least_outstanding"
        assert cluster.config.engine.max_wait_us == 0.0
        with cluster:
            handle = cluster.submit(np.ones(2))
            cluster.run_until_idle()
            np.testing.assert_array_equal(handle.result(timeout=0), 2 * np.ones(2))
