"""Tests for the iteration-level scheduler: admission ordering,
residency/preemption, doom, retirement, and failover drain."""

import numpy as np
import pytest

from repro.serving import (
    InferenceRequest,
    IterationCost,
    IterationScheduler,
    RequestHandle,
    SessionCache,
    ServingError,
)
from repro.workloads import DecoderConfig, kv_cache_bytes


def toy_decoder() -> DecoderConfig:
    return DecoderConfig("toy", depth=2, dim=16, heads=2, mlp_ratio=2.0)


def request_of(i, session_id=None) -> InferenceRequest:
    return InferenceRequest(
        payload=np.zeros(4),
        handle=RequestHandle(i, 0.0),
        arrival=0.0,
        session_id=session_id,
        request_id=i,
    )


class TestIterationCost:
    def test_batch_seconds_is_affine(self):
        cost = IterationCost(base_s=1e-3, per_request_s=1e-4)
        assert cost.batch_seconds(1) == pytest.approx(1.1e-3)
        assert cost.batch_seconds(4) == pytest.approx(1.4e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            IterationCost(base_s=-1.0)
        with pytest.raises(ValueError):
            IterationCost().batch_seconds(0)


class TestAdmissionOrdering:
    def test_simultaneous_arrivals_planned_in_submission_order(self):
        sched = IterationScheduler(max_active=2)
        # Four sessions arrive in the same ingest pass; capacity is 2.
        for i, sid in enumerate(("c", "a", "d", "b")):
            sched.enqueue(request_of(i, sid))
        first = sched.compose()
        assert [r.session_id for r in first.batch] == ["c", "a"]
        second = sched.compose()
        assert [r.session_id for r in second.batch] == ["d", "b"]

    def test_priority_is_first_admission_not_latest(self):
        sched = IterationScheduler(max_active=1)
        sched.enqueue(request_of(0, "a"))
        sched.enqueue(request_of(1, "b"))
        assert [r.session_id for r in sched.compose().batch] == ["a"]
        # "a" keeps arriving; "b" must still wait its FCFS turn only
        # while "a" is ahead, and "a" re-enqueued does not jump "b".
        sched.enqueue(request_of(2, "a"))
        assert [r.session_id for r in sched.compose().batch] == ["a"]
        assert [r.session_id for r in sched.compose().batch] == ["b"]

    def test_sessionless_fill_spare_lanes_fifo(self):
        sched = IterationScheduler(max_active=3)
        sched.enqueue(request_of(0, "s"))
        sched.enqueue(request_of(1, None))
        sched.enqueue(request_of(2, None))
        batch = sched.compose().batch
        assert [r.request_id for r in batch] == [0, 1, 2]

    def test_per_session_steps_never_reorder(self):
        sched = IterationScheduler(max_active=4)
        sched.enqueue(request_of(0, "s"))
        sched.enqueue(request_of(1, "s"))
        sched.enqueue(request_of(2, "s"))
        # One step per session per iteration, in submission order.
        assert [r.request_id for r in sched.compose().batch] == [0]
        assert [r.request_id for r in sched.compose().batch] == [1]
        assert [r.request_id for r in sched.compose().batch] == [2]


class TestResidency:
    def _tight(self, blocks, block_size=2):
        config = toy_decoder()
        cache = SessionCache(
            config,
            block_size=block_size,
            kv_capacity_bytes=kv_cache_bytes(config, block_size) * blocks,
        )
        return config, cache

    def test_preempts_lowest_priority_when_pool_full(self):
        config, cache = self._tight(2)
        sched = IterationScheduler(max_active=4, cache=cache)
        cache.open_session("a", prompt_len=2)
        cache.open_session("b", prompt_len=2)
        # Pool is now full (2 blocks). Admitting "c" must swap a victim.
        sched.enqueue(request_of(0, "a"))
        sched.enqueue(request_of(1, "b"))
        sched.enqueue(request_of(2, "c"))
        batch = sched.compose().batch
        assert sched.preemptions >= 1
        assert cache.stats()["swapped_sessions"] >= 1
        planned = {r.session_id for r in batch}
        assert "a" in planned  # highest priority always survives

    def test_quiescent_residents_preempted_first(self):
        config, cache = self._tight(2)
        sched = IterationScheduler(max_active=4, cache=cache)
        cache.open_session("idle", prompt_len=2)  # resident, no steps
        cache.open_session("busy", prompt_len=2)
        sched.enqueue(request_of(0, "busy"))
        sched.enqueue(request_of(1, "new"))
        sched.compose()
        assert cache.session("idle").swapped
        assert not cache.session("busy").swapped

    def test_swap_in_counts_and_restores_budget(self):
        config, cache = self._tight(4)
        sched = IterationScheduler(max_active=4, cache=cache)
        cache.open_session("s", prompt_len=2)
        cache.swap_out("s")
        sched.enqueue(request_of(0, "s"))
        batch = sched.compose().batch
        assert [r.session_id for r in batch] == ["s"]
        assert sched.swap_ins == 1
        assert not cache.session("s").swapped

    def test_doomed_session_fails_rather_than_spins(self):
        # Pool holds 1 block of 2 tokens; a 3-token prompt needs 2.
        config, cache = self._tight(1)
        sched = IterationScheduler(max_active=4, cache=cache)
        cache.open_session("huge", prompt_len=3)
        cache.swap_out("huge")  # over-budget state (e.g. adoption)
        sched.enqueue(request_of(0, "huge"))
        iteration = sched.compose()
        assert not iteration.batch
        assert [r.request_id for r in iteration.doomed] == [0]
        assert not cache.has_session("huge")  # doomed sessions close
        error = sched.doom_error(iteration.doomed[0])
        assert isinstance(error, ServingError)

    def test_blocked_behind_planned_work_is_not_doomed(self):
        config, cache = self._tight(2)
        sched = IterationScheduler(max_active=4, cache=cache)
        cache.open_session("a", prompt_len=2)
        cache.open_session("b", prompt_len=4)
        cache.swap_out("b")  # needs 2 pages + headroom to come back
        sched.enqueue(request_of(0, "a"))
        sched.enqueue(request_of(1, "b"))
        iteration = sched.compose()
        # "b" cannot swap in while "a" is planned (protected), but it is
        # not doomed — it stays queued and retries next iteration.
        assert [r.session_id for r in iteration.batch] == ["a"]
        assert not iteration.doomed
        assert sched.held == 1


class TestRetirement:
    def test_release_clears_state(self):
        sched = IterationScheduler(max_active=2)
        sched.enqueue(request_of(0, "s"))
        sched.compose()
        sched.release("s")
        assert sched.held == 0
        # Re-admission gets a fresh (later) priority stamp.
        sched.enqueue(request_of(1, "t"))
        sched.enqueue(request_of(2, "s"))
        assert [r.session_id for r in sched.compose().batch] == ["t", "s"]

    def test_release_with_queued_steps_raises(self):
        sched = IterationScheduler(max_active=2)
        sched.enqueue(request_of(0, "s"))
        with pytest.raises(ValueError):
            sched.release("s")

    def test_drain_returns_global_submission_order(self):
        sched = IterationScheduler(max_active=2)
        sched.enqueue(request_of(3, "b"))
        sched.enqueue(request_of(1, None))
        sched.enqueue(request_of(0, "a"))
        sched.enqueue(request_of(2, "a"))
        drained = sched.drain()
        assert [r.request_id for r in drained] == [0, 1, 2, 3]
        assert sched.held == 0 and not sched.has_work()

    def test_stats_counters(self):
        sched = IterationScheduler(max_active=2)
        sched.enqueue(request_of(0, "s"))
        sched.compose()
        stats = sched.stats()
        assert stats["admissions"] == 1
        assert stats["iterations"] == 1
        assert stats["held"] == 0

    def test_max_active_validation(self):
        with pytest.raises(ValueError):
            IterationScheduler(max_active=0)
