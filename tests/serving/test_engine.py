"""Tests for the serving engine: manual (simulated-clock) regime."""

import numpy as np
import pytest

from repro.serving import (
    BatchingPolicy,
    EngineClosed,
    QueueFull,
    Servable,
    ServingEngine,
    ServingError,
    SessionCache,
    SimulatedClock,
    VisionServable,
)
from tests.serving.test_servable import tiny_vit


class EchoServable(Servable):
    """Doubles each payload; optionally misbehaves, for failure paths."""

    name = "echo"

    def __init__(self, fail=False, short_output=False):
        self.fail = fail
        self.short_output = short_output
        self.batches: list[int] = []

    def prepare(self, payload):
        if payload is None:
            raise ValueError("bad payload")
        return payload

    def execute(self, requests):
        self.batches.append(len(requests))
        if self.fail:
            raise RuntimeError("photonic core fell over")
        outputs = [2 * request.payload for request in requests]
        return outputs[:-1] if self.short_output else outputs


def manual_engine(servable=None, **kwargs) -> ServingEngine:
    kwargs.setdefault("clock", SimulatedClock())
    return ServingEngine(servable if servable is not None else EchoServable(), **kwargs)


class TestSubmitAndStep:
    def test_submit_returns_pending_handle(self):
        engine = manual_engine()
        handle = engine.submit(21)
        assert not handle.done()
        assert engine.pending == 1

    def test_step_resolves_handles(self):
        engine = manual_engine()
        handles = [engine.submit(i) for i in range(3)]
        assert engine.step() == 3
        assert [h.result(timeout=0) for h in handles] == [0, 2, 4]
        assert all(h.batch_size == 3 for h in handles)

    def test_prepare_errors_fail_fast_at_submit(self):
        engine = manual_engine()
        with pytest.raises(ValueError):
            engine.submit(None)
        assert engine.pending == 0

    def test_policy_respected_without_force(self):
        clock = SimulatedClock()
        engine = manual_engine(
            policy=BatchingPolicy(max_batch_size=2, max_wait_us=1_000.0), clock=clock
        )
        engine.submit(1)
        assert engine.step(force=False) == 0, "partial batch inside the wait budget"
        clock.advance(1.5e-3)
        assert engine.step(force=False) == 1
        engine.submit(2)
        engine.submit(3)
        assert engine.step(force=False) == 2, "full batch dispatches immediately"

    def test_run_until_idle_processes_everything(self):
        engine = manual_engine(max_batch_size=4)
        handles = [engine.submit(i) for i in range(10)]
        assert engine.run_until_idle() == 10
        assert engine.pending == 0
        assert all(h.done() for h in handles)

    def test_coalescing_respects_max_batch_size(self):
        servable = EchoServable()
        engine = manual_engine(servable, max_batch_size=4)
        for i in range(10):
            engine.submit(i)
        engine.run_until_idle()
        assert servable.batches == [4, 4, 2]
        assert engine.metrics.batch_occupancy() == {2: 1, 4: 2}

    def test_latency_comes_from_the_simulated_clock(self):
        clock = SimulatedClock()
        engine = manual_engine(clock=clock)
        handle = engine.submit(1)
        clock.advance(4e-3)
        engine.step()
        assert handle.latency == pytest.approx(4e-3)
        assert handle.queue_wait == pytest.approx(4e-3)


class TestFailurePaths:
    def test_execution_errors_propagate_to_every_handle(self):
        engine = manual_engine(EchoServable(fail=True))
        handles = [engine.submit(i) for i in range(2)]
        engine.step()
        for handle in handles:
            assert isinstance(handle.exception(timeout=0), RuntimeError)
            with pytest.raises(RuntimeError):
                handle.result(timeout=0)
        assert engine.metrics.failed == 2
        assert engine.metrics.completed == 0

    def test_output_count_mismatch_is_a_serving_error(self):
        engine = manual_engine(EchoServable(short_output=True))
        handles = [engine.submit(i) for i in range(2)]
        engine.step()
        assert isinstance(handles[0].exception(timeout=0), ServingError)

    def test_unresolved_result_times_out(self):
        engine = manual_engine()
        handle = engine.submit(1)
        with pytest.raises(TimeoutError):
            handle.result(timeout=0)


class TestBackpressure:
    def test_manual_mode_sheds_load_when_full(self):
        engine = manual_engine(queue_depth=2)
        engine.submit(1)
        engine.submit(2)
        with pytest.raises(QueueFull):
            engine.submit(3)
        engine.run_until_idle()
        engine.submit(4)  # capacity freed


class TestLifecycle:
    def test_context_manager_drains_on_exit(self):
        with manual_engine() as engine:
            handles = [engine.submit(i) for i in range(3)]
        assert engine.closed
        assert [h.result(timeout=0) for h in handles] == [0, 2, 4]

    def test_close_without_drain_fails_pending(self):
        engine = manual_engine()
        handle = engine.submit(1)
        engine.close(drain=False)
        assert isinstance(handle.exception(timeout=0), EngineClosed)
        assert engine.metrics.failed == 1

    def test_submit_after_close_rejected(self):
        engine = manual_engine()
        engine.close()
        with pytest.raises(EngineClosed):
            engine.submit(1)

    def test_close_is_idempotent(self):
        engine = manual_engine()
        engine.close()
        engine.close()

    def test_policy_and_knobs_are_exclusive(self):
        with pytest.raises(ValueError):
            manual_engine(policy=BatchingPolicy(), max_batch_size=4)

    def test_close_executor_releases_the_pool(self):
        from repro.neural.photonic import PhotonicExecutor

        # A sharded executor gives close() a real worker pool to release.
        model = tiny_vit(executor=PhotonicExecutor.ideal(num_cores=2), seed=0)
        engine = manual_engine(VisionServable(model), close_executor=True)
        engine.submit(np.zeros((16, 16)))
        engine.run_until_idle()
        engine.close()
        model.executor.close()  # second close stays a no-op


class TestCacheIntegration:
    def test_repeated_prompt_is_served_from_cache(self):
        cache = SessionCache(capacity_bytes=1 << 16)
        engine = manual_engine(cache=cache)
        first = engine.submit(5, cache_key="p")
        engine.run_until_idle()
        second = engine.submit(5, cache_key="p")
        assert second.done() and second.cache_hit
        assert second.batch_size == 0
        assert second.result(timeout=0) == first.result(timeout=0) == 10
        assert engine.metrics.cache_hits == 1
        assert cache.hits == 1

    def test_distinct_keys_miss(self):
        engine = manual_engine(cache=SessionCache())
        engine.submit(5, cache_key="a")
        engine.run_until_idle()
        other = engine.submit(6, cache_key="b")
        assert not other.done()
        engine.run_until_idle()
        assert other.result(timeout=0) == 12

    def test_no_cache_no_memoization(self):
        engine = manual_engine()
        engine.submit(5, cache_key="p")
        engine.run_until_idle()
        repeat = engine.submit(5, cache_key="p")
        assert not repeat.done()
        engine.run_until_idle()


class TestDynamicVersusSequential:
    def test_vision_bit_identical(self):
        """The acceptance invariant, in miniature: coalesced == sequential."""
        rng = np.random.default_rng(0)
        images = [rng.normal(size=(16, 16)) for _ in range(6)]

        def run(max_batch_size):
            engine = manual_engine(
                VisionServable(tiny_vit(seed=3)), max_batch_size=max_batch_size
            )
            with engine:
                handles = [engine.submit(img) for img in images]
                engine.run_until_idle()
                return [h.result(timeout=0) for h in handles]

        sequential = run(1)
        batched = run(4)
        for s, b in zip(sequential, batched):
            assert np.array_equal(s, b)


class TestRemainingBranches:
    def test_start_after_close_rejected(self):
        engine = manual_engine()
        engine.close()
        with pytest.raises(EngineClosed):
            engine.start()

    def test_exception_accessor_times_out_while_pending(self):
        engine = manual_engine()
        handle = engine.submit(1)
        with pytest.raises(TimeoutError):
            handle.exception(timeout=0)

    def test_exception_is_none_on_success(self):
        engine = manual_engine()
        handle = engine.submit(1)
        engine.step()
        assert handle.exception(timeout=0) is None

    def test_nonblocking_submit_sheds_load_in_wall_mode(self):
        from repro.serving import WallClock

        # Unstarted wall-clock engine: the queue fills with no consumer.
        engine = ServingEngine(EchoServable(), queue_depth=1, clock=WallClock())
        engine.submit(1, block=False)
        with pytest.raises(QueueFull):
            engine.submit(2, block=False)
        engine.close(drain=False)

    def test_handle_timestamps_before_resolution(self):
        engine = manual_engine()
        handle = engine.submit(1)
        assert handle.latency is None and handle.queue_wait is None


class TestCloseAndBackpressureEdges:
    """The thin paths: drain=False propagation and QueueFull recovery."""

    def test_close_without_drain_fails_every_pending_handle(self):
        engine = manual_engine(queue_depth=8)
        handles = [engine.submit(i) for i in range(5)]
        engine.close(drain=False)
        for handle in handles:
            error = handle.exception(timeout=0)
            assert isinstance(error, EngineClosed)
            with pytest.raises(EngineClosed, match="closed before execution"):
                handle.result(timeout=0)
            assert handle.batch_size is None  # never reached a batch
        assert engine.metrics.failed == 5
        assert engine.metrics.completed == 0

    def test_close_without_drain_spares_resolved_handles(self):
        engine = manual_engine()
        done = engine.submit(3)
        engine.step()
        pending = engine.submit(4)
        engine.close(drain=False)
        assert done.result(timeout=0) == 6
        assert isinstance(pending.exception(timeout=0), EngineClosed)
        assert engine.metrics.completed == 1
        assert engine.metrics.failed == 1

    def test_queue_full_error_names_the_capacity(self):
        engine = manual_engine(queue_depth=2)
        engine.submit(1)
        engine.submit(2)
        with pytest.raises(QueueFull, match="capacity \\(2\\)"):
            engine.submit(3)
        # Shedding left the queued work untouched.
        assert engine.pending == 2
        assert engine.run_until_idle() == 2

    def test_queue_full_repeats_until_a_step_frees_capacity(self):
        engine = manual_engine(queue_depth=1, max_batch_size=1)
        first = engine.submit(1)
        for _ in range(3):
            with pytest.raises(QueueFull):
                engine.submit(99)
        engine.step()
        second = engine.submit(2)
        engine.step()
        assert (first.result(timeout=0), second.result(timeout=0)) == (2, 4)

    def test_evict_pending_removes_without_failing(self):
        engine = manual_engine()
        handles = [engine.submit(i) for i in range(3)]
        evicted = engine.evict_pending()
        assert [request.handle for request in evicted] == handles
        assert engine.pending == 0
        assert not any(handle.done() for handle in handles)
        engine.close(drain=False)  # nothing left to fail
        assert engine.metrics.failed == 0


class TestDoneCallbacks:
    def test_callback_fires_on_resolution(self):
        engine = manual_engine()
        seen = []
        handle = engine.submit(5)
        handle.add_done_callback(seen.append)
        assert seen == []
        engine.step()
        assert seen == [handle]
        assert seen[0].result(timeout=0) == 10

    def test_callback_fires_immediately_when_already_done(self):
        engine = manual_engine()
        handle = engine.submit(5)
        engine.step()
        seen = []
        handle.add_done_callback(seen.append)
        assert seen == [handle]

    def test_callback_fires_on_failure_paths(self):
        engine = manual_engine(EchoServable(fail=True))
        executed = engine.submit(1)
        failures = []
        executed.add_done_callback(
            lambda h: failures.append(type(h.exception(timeout=0)))
        )
        engine.step()
        closed = engine.submit(2)
        closed.add_done_callback(
            lambda h: failures.append(type(h.exception(timeout=0)))
        )
        engine.close(drain=False)
        assert failures == [RuntimeError, EngineClosed]
