"""Tests for the serving metrics recorder (deterministic, no sleeps)."""

import numpy as np
import pytest

from repro.serving import Metrics, RequestHandle, summarize


def resolved_handle(
    arrival: float,
    started: float,
    finished: float,
    batch_size: int = 1,
    cache_hit: bool = False,
) -> RequestHandle:
    handle = RequestHandle(0, arrival)
    handle._resolve(
        None,
        started=started,
        finished=finished,
        batch_size=batch_size,
        cache_hit=cache_hit,
    )
    return handle


class TestMetrics:
    def test_empty_snapshot_is_all_zero(self):
        snapshot = Metrics().snapshot()
        assert snapshot["completed"] == 0
        assert snapshot["throughput_rps"] == 0.0
        assert snapshot["latency_s"] == {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert snapshot["batch_occupancy"] == {}

    def test_latency_and_wait_summaries(self):
        metrics = Metrics()
        # Queue waits 1/2/3 ms; each batch runs for 1 ms.
        for i, wait in enumerate((1e-3, 2e-3, 3e-3)):
            metrics.record_request(
                resolved_handle(arrival=i, started=i + wait, finished=i + wait + 1e-3)
            )
        latency = metrics.latency_summary()
        assert latency["p50"] == pytest.approx(3e-3)
        assert latency["mean"] == pytest.approx(np.mean([2e-3, 3e-3, 4e-3]))
        wait = metrics.queue_wait_summary()
        assert wait["p50"] == pytest.approx(2e-3)

    def test_throughput_spans_arrival_to_completion(self):
        metrics = Metrics()
        metrics.record_request(resolved_handle(arrival=0.0, started=0.0, finished=1.0))
        metrics.record_request(resolved_handle(arrival=1.0, started=1.5, finished=2.0))
        assert metrics.throughput() == 1.0  # 2 requests over a 2 s span

    def test_degenerate_span_reports_zero(self):
        metrics = Metrics()
        metrics.record_request(resolved_handle(arrival=1.0, started=1.0, finished=1.0))
        assert metrics.throughput() == 0.0

    def test_occupancy_histogram(self):
        metrics = Metrics()
        for size in (4, 2, 4, 1):
            metrics.record_batch(size)
        assert metrics.batch_occupancy() == {1: 1, 2: 1, 4: 2}
        assert metrics.mean_occupancy() == (4 + 2 + 4 + 1) / 4

    def test_cache_hits_and_failures(self):
        metrics = Metrics()
        metrics.record_request(
            resolved_handle(0.0, 0.0, 0.0, batch_size=0, cache_hit=True)
        )
        metrics.record_request(resolved_handle(0.0, 0.0, 1.0))
        metrics.record_failures(3)
        assert metrics.cache_hits == 1
        assert metrics.completed == 2
        assert metrics.failed == 3

    def test_snapshot_is_json_shaped(self):
        import json

        metrics = Metrics()
        metrics.record_batch(2)
        metrics.record_request(resolved_handle(0.0, 0.5, 1.0, batch_size=2))
        snapshot = metrics.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["batch_occupancy"] == {"2": 1}
        assert snapshot["mean_batch_occupancy"] == 2.0

    def test_zero_request_snapshot_has_percentile_keys(self):
        """Both summaries keep their full key set with no records —
        dashboards never see a missing key or a NaN."""
        snapshot = Metrics().snapshot()
        for key in ("latency_s", "queue_wait_s"):
            assert set(snapshot[key]) == {"mean", "p50", "p95", "p99"}
            assert all(value == 0.0 for value in snapshot[key].values())

    def test_prometheus_exposition(self):
        metrics = Metrics()
        metrics.record_request(resolved_handle(0.0, 0.5, 1.0))
        metrics.record_batch(2)
        text = metrics.to_prometheus()
        assert "serving_requests_completed_total 1" in text
        assert 'serving_batches_total{size="2"} 1' in text
        assert "# TYPE serving_request_latency_seconds histogram" in text

    def test_snapshot_exposes_queue_wait_percentiles(self):
        """Queue waits (submit -> batch formation) appear in the JSON."""
        metrics = Metrics()
        for i, wait in enumerate((1e-3, 2e-3, 4e-3, 8e-3)):
            metrics.record_request(
                resolved_handle(arrival=i, started=i + wait, finished=i + wait)
            )
        wait = metrics.snapshot()["queue_wait_s"]
        assert set(wait) == {"mean", "p50", "p95", "p99"}
        assert wait["p50"] == pytest.approx(3e-3)
        assert wait["mean"] == pytest.approx(np.mean([1e-3, 2e-3, 4e-3, 8e-3]))
        assert wait["p99"] == pytest.approx(
            np.percentile([1e-3, 2e-3, 4e-3, 8e-3], 99)
        )


class TestSummarize:
    def test_empty_series_is_all_zero(self):
        assert summarize([]) == {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_percentiles_match_numpy(self):
        values = [1.0, 2.0, 3.0, 10.0]
        summary = summarize(values)
        assert summary["mean"] == pytest.approx(4.0)
        assert summary["p95"] == pytest.approx(np.percentile(values, 95))


class TestMergedMetrics:
    def test_records_accessor_returns_copies(self):
        metrics = Metrics()
        metrics.record_request(resolved_handle(0.0, 0.5, 1.0))
        records = metrics.records()
        assert len(records) == 1
        records.clear()
        assert metrics.completed == 1

    def test_merged_pools_raw_records_not_summaries(self):
        """Percentiles of the merged fleet come from pooled records —
        aggregating per-replica p50s would give a different (wrong)
        answer for any skewed split."""
        a, b = Metrics(), Metrics()
        for wait in (1e-3, 2e-3, 3e-3):
            a.record_request(resolved_handle(0.0, wait, wait))
        b.record_request(resolved_handle(0.0, 10e-3, 10e-3))
        a.record_batch(2)
        b.record_batch(2)
        b.record_batch(4)
        b.record_failures(2)
        merged = Metrics.merged([a, b])
        assert merged.completed == 4
        assert merged.failed == 2
        assert merged.batch_occupancy() == {2: 2, 4: 1}
        # Pooled waits 1/2/3/10 ms: p50 = 2.5 ms; the mean of the two
        # per-part p50s (2 ms and 10 ms) would be 6 ms.
        assert merged.queue_wait_summary()["p50"] == pytest.approx(2.5e-3)
        # Merging copies: later records in the parts don't leak in.
        a.record_request(resolved_handle(0.0, 1.0, 1.0))
        assert merged.completed == 4

    def test_merged_of_no_parts_is_empty(self):
        merged = Metrics.merged([])
        assert merged.completed == 0
        assert merged.failed == 0
        assert merged.throughput() == 0.0
        snapshot = merged.snapshot()
        assert snapshot["latency_s"] == {
            "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
        assert snapshot["batch_occupancy"] == {}

    def test_merged_failures_only_parts(self):
        """Parts that saw only failures still contribute their counts."""
        a, b = Metrics(), Metrics()
        a.record_failures(2)
        b.record_failures(1)
        merged = Metrics.merged([a, b])
        assert merged.completed == 0
        assert merged.failed == 3
        assert merged.throughput() == 0.0
        assert merged.latency_summary()["p99"] == 0.0

    def test_record_accepts_prebuilt_records(self):
        source = Metrics()
        source.record_request(resolved_handle(0.0, 0.5, 1.0))
        target = Metrics()
        for record in source.records():
            target.record(record)
        assert target.completed == 1
        assert target.latency_summary()["p50"] == pytest.approx(1.0)


class TestIterationOccupancy:
    def test_record_and_histogram(self):
        metrics = Metrics()
        for active in (1, 3, 3, 2):
            metrics.record_iteration(active)
        assert metrics.iteration_occupancy() == {1: 1, 2: 1, 3: 2}
        assert metrics.mean_iteration_occupancy() == pytest.approx(9 / 4)

    def test_empty_histogram(self):
        metrics = Metrics()
        assert metrics.iteration_occupancy() == {}
        assert metrics.mean_iteration_occupancy() == 0.0

    def test_snapshot_keys(self):
        metrics = Metrics()
        metrics.record_iteration(2)
        snapshot = metrics.snapshot()
        assert snapshot["iteration_occupancy"] == {"2": 1}
        assert snapshot["mean_iteration_occupancy"] == pytest.approx(2.0)

    def test_merged_pools_iterations(self):
        a, b = Metrics(), Metrics()
        a.record_iteration(2)
        b.record_iteration(2)
        b.record_iteration(4)
        merged = Metrics.merged([a, b])
        assert merged.iteration_occupancy() == {2: 2, 4: 1}
        assert merged.mean_iteration_occupancy() == pytest.approx(8 / 3)
