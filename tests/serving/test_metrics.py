"""Tests for the serving metrics recorder (deterministic, no sleeps)."""

import numpy as np
import pytest

from repro.serving import Metrics, RequestHandle


def resolved_handle(
    arrival: float,
    started: float,
    finished: float,
    batch_size: int = 1,
    cache_hit: bool = False,
) -> RequestHandle:
    handle = RequestHandle(0, arrival)
    handle._resolve(
        None,
        started=started,
        finished=finished,
        batch_size=batch_size,
        cache_hit=cache_hit,
    )
    return handle


class TestMetrics:
    def test_empty_snapshot_is_all_zero(self):
        snapshot = Metrics().snapshot()
        assert snapshot["completed"] == 0
        assert snapshot["throughput_rps"] == 0.0
        assert snapshot["latency_s"] == {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert snapshot["batch_occupancy"] == {}

    def test_latency_and_wait_summaries(self):
        metrics = Metrics()
        # Queue waits 1/2/3 ms; each batch runs for 1 ms.
        for i, wait in enumerate((1e-3, 2e-3, 3e-3)):
            metrics.record_request(
                resolved_handle(arrival=i, started=i + wait, finished=i + wait + 1e-3)
            )
        latency = metrics.latency_summary()
        assert latency["p50"] == pytest.approx(3e-3)
        assert latency["mean"] == pytest.approx(np.mean([2e-3, 3e-3, 4e-3]))
        wait = metrics.queue_wait_summary()
        assert wait["p50"] == pytest.approx(2e-3)

    def test_throughput_spans_arrival_to_completion(self):
        metrics = Metrics()
        metrics.record_request(resolved_handle(arrival=0.0, started=0.0, finished=1.0))
        metrics.record_request(resolved_handle(arrival=1.0, started=1.5, finished=2.0))
        assert metrics.throughput() == 1.0  # 2 requests over a 2 s span

    def test_degenerate_span_reports_zero(self):
        metrics = Metrics()
        metrics.record_request(resolved_handle(arrival=1.0, started=1.0, finished=1.0))
        assert metrics.throughput() == 0.0

    def test_occupancy_histogram(self):
        metrics = Metrics()
        for size in (4, 2, 4, 1):
            metrics.record_batch(size)
        assert metrics.batch_occupancy() == {1: 1, 2: 1, 4: 2}
        assert metrics.mean_occupancy() == (4 + 2 + 4 + 1) / 4

    def test_cache_hits_and_failures(self):
        metrics = Metrics()
        metrics.record_request(
            resolved_handle(0.0, 0.0, 0.0, batch_size=0, cache_hit=True)
        )
        metrics.record_request(resolved_handle(0.0, 0.0, 1.0))
        metrics.record_failures(3)
        assert metrics.cache_hits == 1
        assert metrics.completed == 2
        assert metrics.failed == 3

    def test_snapshot_is_json_shaped(self):
        import json

        metrics = Metrics()
        metrics.record_batch(2)
        metrics.record_request(resolved_handle(0.0, 0.5, 1.0, batch_size=2))
        snapshot = metrics.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["batch_occupancy"] == {"2": 1}
        assert snapshot["mean_batch_occupancy"] == 2.0
