"""Tests for the model-side servable adapters."""

import numpy as np
import pytest

from repro.neural.photonic import PhotonicExecutor
from repro.neural.text import TinyBERT
from repro.neural.vision import TinyViT
from repro.serving import (
    DecodeServable,
    InferenceRequest,
    RequestHandle,
    SessionCache,
    TextServable,
    VisionServable,
)
from repro.workloads import DecoderConfig, decode_servable, servable_model
from repro.workloads.transformer import KIND_TEXT, TransformerConfig


def request_of(payload, session_id=None, i=0) -> InferenceRequest:
    return InferenceRequest(
        payload=payload,
        handle=RequestHandle(i, 0.0),
        arrival=0.0,
        session_id=session_id,
        request_id=i,
    )


def tiny_vit(**kwargs) -> TinyViT:
    kwargs.setdefault("image_size", 16)
    kwargs.setdefault("patch_size", 4)
    kwargs.setdefault("dim", 16)
    kwargs.setdefault("depth", 1)
    kwargs.setdefault("heads", 2)
    kwargs.setdefault("mlp_ratio", 2.0)
    return TinyViT(**kwargs)


class TestVisionServable:
    def test_prepare_validates_shape(self):
        servable = VisionServable(tiny_vit())
        with pytest.raises(ValueError):
            servable.prepare(np.zeros((8, 8)))
        with pytest.raises(ValueError):
            servable.prepare(np.zeros((2, 16, 16)))

    def test_execute_matches_direct_batched_forward(self):
        rng = np.random.default_rng(0)
        images = [rng.normal(size=(16, 16)) for _ in range(3)]
        servable = VisionServable(tiny_vit(seed=1))
        outputs = servable.execute(
            [request_of(servable.prepare(img), i=i) for i, img in enumerate(images)]
        )
        direct = tiny_vit(seed=1)(np.stack(images)).data
        assert all(np.array_equal(out, direct[i]) for i, out in enumerate(outputs))


class TestTextServable:
    def make(self, seed=0):
        return TextServable(
            TinyBERT(seq_len=9, dim=16, depth=1, heads=2, seed=seed), pad_id=0
        )

    def test_prepare_pads_to_the_model_length(self):
        servable = self.make()
        padded = servable.prepare([3, 4, 5])
        assert padded.shape == (9,)
        assert list(padded[:3]) == [3, 4, 5]
        assert all(padded[3:] == 0)

    def test_padding_is_batch_independent(self):
        """A prompt's padded form never depends on its batch mates."""
        servable = self.make()
        assert np.array_equal(servable.prepare([7]), servable.prepare([7]))

    def test_prepare_validates(self):
        servable = self.make()
        with pytest.raises(ValueError):
            servable.prepare([])
        with pytest.raises(ValueError):
            servable.prepare(list(range(10)))  # longer than seq_len
        with pytest.raises(ValueError):
            servable.prepare([[1, 2], [3, 4]])

    def test_pad_id_must_be_in_vocabulary(self):
        model = TinyBERT(seq_len=9, dim=16, depth=1, heads=2)
        with pytest.raises(ValueError):
            TextServable(model, pad_id=model.vocab_size)

    def test_ragged_batch_matches_padded_sequential(self):
        prompts = [[5], [1, 2, 3], list(range(1, 9))]
        servable = self.make(seed=2)
        requests = [
            request_of(servable.prepare(p), i=i) for i, p in enumerate(prompts)
        ]
        outputs = servable.execute(requests)
        reference_model = TinyBERT(seq_len=9, dim=16, depth=1, heads=2, seed=2)
        for prompt, out in zip(prompts, outputs):
            padded = servable.prepare(prompt)
            assert np.array_equal(out, reference_model(padded).data)


class TestDecodeServable:
    def config(self) -> DecoderConfig:
        return DecoderConfig("toy", depth=2, dim=16, heads=2, mlp_ratio=2.0)

    def test_prepare_validates_dim(self):
        servable = DecodeServable(self.config())
        with pytest.raises(ValueError):
            servable.prepare(np.zeros(8))

    def test_requires_session_id(self):
        servable = DecodeServable(self.config())
        with pytest.raises(ValueError):
            servable.execute([request_of(np.zeros(16), session_id=None)])

    def test_step_appends_kv_and_returns_token_vector(self):
        servable = DecodeServable(self.config())
        servable.cache.open_session("s", prompt_len=4)
        out = servable.execute([request_of(np.ones(16), session_id="s")])
        assert out[0].shape == (16,)
        assert servable.cache.context_len("s") == 5

    def test_sessions_open_lazily(self):
        servable = DecodeServable(self.config())
        servable.execute([request_of(np.ones(16), session_id="fresh")])
        assert servable.cache.context_len("fresh") == 1

    def test_batched_equals_sequential_decode(self):
        """Coalesced GEMV projections == per-request decode, bit-exact."""
        rng = np.random.default_rng(3)
        steps = [rng.normal(size=16) for _ in range(4)]
        sessions = ["a", "b", "a", "b"]

        sequential = DecodeServable(self.config(), seed=0)
        seq_out = [
            sequential.execute([request_of(x, session_id=sid, i=i)])[0]
            for i, (x, sid) in enumerate(zip(steps, sessions))
        ]
        # Batch the two independent sessions' first steps, then seconds.
        batched = DecodeServable(self.config(), seed=0)
        first = batched.execute(
            [
                request_of(steps[0], session_id="a", i=0),
                request_of(steps[1], session_id="b", i=1),
            ]
        )
        second = batched.execute(
            [
                request_of(steps[2], session_id="a", i=2),
                request_of(steps[3], session_id="b", i=3),
            ]
        )
        for expected, got in zip(seq_out, first + second):
            assert np.array_equal(expected, got)

    def test_shared_executor_and_cache_injection(self):
        cache = SessionCache()
        executor = PhotonicExecutor.ideal()
        servable = DecodeServable(self.config(), executor=executor, cache=cache)
        assert servable.executor is executor
        assert servable.cache is cache
        assert cache.config == self.config()  # adopted for KV accounting


class TestWorkloadEntryPoints:
    def test_servable_model_vision(self):
        config = TransformerConfig(
            "t-vit", depth=1, dim=16, heads=2, seq_len=17,
            mlp_ratio=2.0, n_classes=3, patch_size=4, image_size=16,
            in_channels=1,
        )
        model = servable_model(config, seed=0)
        assert isinstance(model, TinyViT)
        logits = model(np.zeros((16, 16)))
        assert logits.shape == (3,)

    def test_servable_model_rejects_multichannel_vision(self):
        config = TransformerConfig(
            "t-rgb", depth=1, dim=16, heads=2, seq_len=17,
            patch_size=4, image_size=16, in_channels=3,
        )
        with pytest.raises(ValueError):
            servable_model(config)

    def test_servable_model_text(self):
        config = TransformerConfig(
            "t-bert", depth=1, dim=16, heads=2, seq_len=9,
            mlp_ratio=2.0, kind=KIND_TEXT, n_classes=2,
        )
        model = servable_model(config, vocab_size=16, seed=0)
        assert isinstance(model, TinyBERT)
        assert model.seq_len == 9 and model.vocab_size == 16

    def test_decode_servable_entry_point(self):
        config = DecoderConfig("toy", depth=2, dim=16, heads=2, mlp_ratio=2.0)
        servable = decode_servable(config, seed=0)
        assert isinstance(servable, DecodeServable)
        assert servable.cache.config == config


class TestDecodeBatchAtomicity:
    """A bad batch-mate must never poison another request's session."""

    def config(self) -> DecoderConfig:
        return DecoderConfig("toy", depth=2, dim=16, heads=2, mlp_ratio=2.0)

    def test_failed_batch_leaves_no_kv_state(self):
        servable = DecodeServable(self.config(), seed=0)
        good = request_of(servable.prepare(np.ones(16)), session_id="a", i=0)
        bad = request_of(servable.prepare(np.ones(16)), session_id=None, i=1)
        with pytest.raises(ValueError):
            servable.execute([good, bad])
        assert not servable.cache.has_session("a"), "failed batch committed KV"

    def test_retry_after_failure_matches_clean_execution(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=16)
        poisoned = DecodeServable(self.config(), seed=0)
        with pytest.raises(ValueError):
            poisoned.execute(
                [
                    request_of(poisoned.prepare(x), session_id="a", i=0),
                    request_of(poisoned.prepare(x), session_id=None, i=1),
                ]
            )
        retried = poisoned.execute([request_of(poisoned.prepare(x), session_id="a")])
        clean = DecodeServable(self.config(), seed=0)
        expected = clean.execute([request_of(clean.prepare(x), session_id="a")])
        assert np.array_equal(retried[0], expected[0])
        assert poisoned.cache.context_len("a") == 1


class TestCacheIsolation:
    def test_cached_results_never_alias(self):
        from repro.serving import ServingEngine, SessionCache, SimulatedClock

        cache = SessionCache(capacity_bytes=1 << 16)
        engine = ServingEngine(
            VisionServable(tiny_vit(seed=0)),
            max_batch_size=2,
            clock=SimulatedClock(),
            cache=cache,
        )
        with engine:
            rng = np.random.default_rng(0)
            image = rng.normal(size=(16, 16))
            first = engine.submit(image, cache_key="p")
            engine.run_until_idle()
            original = first.result(timeout=0).copy()
            first.result(timeout=0)[:] = 0.0  # caller mutates in place
            second = engine.submit(image, cache_key="p")
            assert second.cache_hit
            assert np.array_equal(second.result(timeout=0), original)
            second.result(timeout=0)[:] = -1.0
            third = engine.submit(image, cache_key="p")
            assert np.array_equal(third.result(timeout=0), original)


class TestIntraBatchSessionChaining:
    def test_same_session_steps_in_one_batch_match_sequential(self):
        """Step t+1 coalesced with step t still attends over step t."""
        config = DecoderConfig("toy", depth=2, dim=16, heads=2, mlp_ratio=2.0)
        rng = np.random.default_rng(11)
        x1, x2 = rng.normal(size=16), rng.normal(size=16)

        sequential = DecodeServable(config, seed=0)
        expected = [
            sequential.execute([request_of(x1, session_id="s", i=0)])[0],
            sequential.execute([request_of(x2, session_id="s", i=1)])[0],
        ]
        batched = DecodeServable(config, seed=0)
        got = batched.execute(
            [
                request_of(x1, session_id="s", i=0),
                request_of(x2, session_id="s", i=1),
            ]
        )
        assert np.array_equal(expected[0], got[0])
        assert np.array_equal(expected[1], got[1])
        assert batched.cache.context_len("s") == 2
