"""Tests for the dynamic batching policy and coalescing logic."""

import threading

import pytest

from repro.serving import (
    BatchingPolicy,
    DynamicBatcher,
    RequestQueue,
    SimulatedClock,
    WallClock,
)
from tests.serving.test_queue import make_request


class TestBatchingPolicy:
    def test_defaults(self):
        policy = BatchingPolicy()
        assert policy.max_batch_size == 8
        assert policy.wait_s == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingPolicy(max_wait_us=-1.0)

    def test_wait_conversion(self):
        assert BatchingPolicy(max_wait_us=2_500.0).wait_s == pytest.approx(2.5e-3)


class TestCollect:
    """Manual (simulated-clock) coalescing."""

    def make(self, max_batch_size=4, max_wait_us=1_000.0):
        clock = SimulatedClock()
        queue = RequestQueue(maxsize=32)
        policy = BatchingPolicy(max_batch_size, max_wait_us)
        return DynamicBatcher(queue, policy, clock), queue, clock

    def test_empty_queue_yields_nothing(self):
        batcher, _, _ = self.make()
        assert batcher.collect() == []
        assert batcher.collect(force=True) == []

    def test_full_batch_dispatches_immediately(self):
        batcher, queue, clock = self.make(max_batch_size=3)
        for i in range(5):
            queue.put(make_request(i, arrival=clock.now()))
        batch = batcher.collect()
        assert [r.payload for r in batch] == [0, 1, 2]

    def test_partial_batch_waits_for_the_budget(self):
        batcher, queue, clock = self.make(max_batch_size=4, max_wait_us=1_000.0)
        queue.put(make_request(0, arrival=clock.now()))
        queue.put(make_request(1, arrival=clock.now()))
        assert batcher.collect() == []
        clock.advance(0.5e-3)
        assert batcher.collect() == [], "wait budget not yet expired"
        clock.advance(0.6e-3)
        batch = batcher.collect()
        assert [r.payload for r in batch] == [0, 1]

    def test_budget_counts_from_the_oldest_request(self):
        batcher, queue, clock = self.make(max_batch_size=4, max_wait_us=1_000.0)
        queue.put(make_request(0, arrival=clock.now()))
        clock.advance(0.9e-3)
        queue.put(make_request(1, arrival=clock.now()))
        clock.advance(0.2e-3)  # oldest is now 1.1 ms old, newest 0.2 ms
        batch = batcher.collect()
        assert [r.payload for r in batch] == [0, 1]

    def test_zero_wait_dispatches_whatever_is_queued(self):
        batcher, queue, clock = self.make(max_batch_size=8, max_wait_us=0.0)
        queue.put(make_request(0, arrival=clock.now()))
        assert [r.payload for r in batcher.collect()] == [0]

    def test_force_overrides_the_policy(self):
        batcher, queue, clock = self.make(max_batch_size=8, max_wait_us=10_000.0)
        queue.put(make_request(0, arrival=clock.now()))
        assert batcher.collect() == []
        assert [r.payload for r in batcher.collect(force=True)] == [0]

    def test_closed_queue_drains_immediately(self):
        batcher, queue, clock = self.make(max_batch_size=8, max_wait_us=10_000.0)
        queue.put(make_request(0, arrival=clock.now()))
        queue.close()
        assert [r.payload for r in batcher.collect()] == [0]


class TestNextBatch:
    """Blocking (wall-clock) coalescing used by the worker thread."""

    def make(self, max_batch_size=4, max_wait_us=500.0):
        clock = WallClock()
        queue = RequestQueue(maxsize=32)
        policy = BatchingPolicy(max_batch_size, max_wait_us)
        return DynamicBatcher(queue, policy, clock), queue, clock

    def collect_in_thread(self, batcher, results):
        def worker():
            results.append(batcher.next_batch())

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        return thread

    def test_returns_none_once_closed_and_empty(self):
        batcher, queue, _ = self.make()
        queue.close()
        assert batcher.next_batch() is None

    def test_drains_pending_work_after_close(self):
        batcher, queue, clock = self.make(max_batch_size=8, max_wait_us=60e6)
        queue.put(make_request(0, arrival=clock.now()))
        queue.close()
        assert [r.payload for r in batcher.next_batch()] == [0]
        assert batcher.next_batch() is None

    def test_full_batch_wakes_the_worker(self):
        batcher, queue, clock = self.make(max_batch_size=2, max_wait_us=60e6)
        results = []
        thread = self.collect_in_thread(batcher, results)
        queue.put(make_request(0, arrival=clock.now()))
        queue.put(make_request(1, arrival=clock.now()))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert [r.payload for r in results[0]] == [0, 1]

    def test_wait_budget_expiry_dispatches_partial_batch(self):
        batcher, queue, clock = self.make(max_batch_size=8, max_wait_us=2_000.0)
        results = []
        thread = self.collect_in_thread(batcher, results)
        queue.put(make_request(0, arrival=clock.now()))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert [r.payload for r in results[0]] == [0]
