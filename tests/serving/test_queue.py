"""Tests for the bounded request queue (admission + backpressure)."""

import threading

import pytest

from repro.serving import (
    EngineClosed,
    InferenceRequest,
    QueueFull,
    RequestHandle,
    RequestQueue,
)


def make_request(i: int, arrival: float = 0.0) -> InferenceRequest:
    return InferenceRequest(
        payload=i,
        handle=RequestHandle(i, arrival),
        arrival=arrival,
        request_id=i,
    )


class TestRequestQueue:
    def test_fifo_order(self):
        queue = RequestQueue(maxsize=8)
        for i in range(5):
            queue.put(make_request(i))
        with queue.mutex:
            batch = queue.pop_locked(3)
        assert [r.payload for r in batch] == [0, 1, 2]
        with queue.mutex:
            rest = queue.pop_locked(10)
        assert [r.payload for r in rest] == [3, 4]
        assert len(queue) == 0

    def test_validates_maxsize(self):
        with pytest.raises(ValueError):
            RequestQueue(maxsize=0)

    def test_nonblocking_put_raises_when_full(self):
        queue = RequestQueue(maxsize=2)
        queue.put(make_request(0))
        queue.put(make_request(1))
        with pytest.raises(QueueFull):
            queue.put(make_request(2), block=False)
        assert len(queue) == 2

    def test_timeout_put_raises_when_still_full(self):
        queue = RequestQueue(maxsize=1)
        queue.put(make_request(0))
        with pytest.raises(QueueFull):
            queue.put(make_request(1), timeout=0.01)

    def test_blocking_put_waits_for_capacity(self):
        queue = RequestQueue(maxsize=1)
        queue.put(make_request(0))
        done = threading.Event()

        def producer():
            queue.put(make_request(1))
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not done.wait(0.05), "producer should be blocked on backpressure"
        with queue.mutex:
            queue.pop_locked(1)
        assert done.wait(5.0), "producer should resume once a slot frees"
        thread.join(timeout=5.0)
        assert len(queue) == 1

    def test_put_after_close_raises(self):
        queue = RequestQueue(maxsize=2)
        queue.close()
        assert queue.closed
        with pytest.raises(EngineClosed):
            queue.put(make_request(0))

    def test_close_wakes_blocked_producer(self):
        queue = RequestQueue(maxsize=1)
        queue.put(make_request(0))
        errors = []

        def producer():
            try:
                queue.put(make_request(1))
            except EngineClosed as error:
                errors.append(error)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert len(errors) == 1

    def test_drain_pending_empties_the_queue(self):
        queue = RequestQueue(maxsize=4)
        for i in range(3):
            queue.put(make_request(i))
        pending = queue.drain_pending()
        assert [r.payload for r in pending] == [0, 1, 2]
        assert len(queue) == 0
