"""Tests for the paged KV layout: KVBlock, BlockPool, and the pooled
SessionCache invariants (page-rounded ledger, swap custody, reuse)."""

import numpy as np
import pytest

from repro.serving import BlockPool, KVBlock, SessionCache
from repro.workloads import DecoderConfig, kv_cache_bytes


def toy_decoder() -> DecoderConfig:
    return DecoderConfig("toy", depth=2, dim=16, heads=2, mlp_ratio=2.0)


class TestKVBlock:
    def test_append_fills_slots(self):
        block = KVBlock(4, 16)
        assert block.fill == 0 and not block.full
        block.append(np.ones(16), 2 * np.ones(16))
        assert block.fill == 1
        np.testing.assert_array_equal(block.keys[0], np.ones(16))
        np.testing.assert_array_equal(block.values[0], 2 * np.ones(16))

    def test_full_block_rejects_append(self):
        block = KVBlock(2, 4)
        block.append(np.zeros(4), np.zeros(4))
        block.append(np.zeros(4), np.zeros(4))
        assert block.full
        with pytest.raises(ValueError):
            block.append(np.zeros(4), np.zeros(4))

    def test_fill_zeros_materializes_prompt_slots(self):
        block = KVBlock(4, 8)
        block.fill_zeros(3)
        assert block.fill == 3
        assert not block.keys[:3].any() and not block.values[:3].any()

    def test_reset_clears_for_reuse(self):
        block = KVBlock(2, 4)
        block.append(np.ones(4), np.ones(4))
        block.reset()
        assert block.fill == 0
        assert not block.keys.any() and not block.values.any()


class TestBlockPool:
    def test_block_bytes_match_formula(self):
        config = toy_decoder()
        pool = BlockPool(config, block_size=4)
        assert pool.block_bytes == kv_cache_bytes(config, 4, bits=8)

    def test_capacity_blocks_floor(self):
        config = toy_decoder()
        per = kv_cache_bytes(config, 2)
        pool = BlockPool(config, block_size=2, capacity_bytes=3 * per + per // 2)
        assert pool.capacity_blocks == 3
        assert pool.can_fit(3) and not pool.can_fit(4)

    def test_unbounded_pool_always_fits(self):
        pool = BlockPool(toy_decoder(), block_size=2)
        assert pool.capacity_blocks is None
        assert pool.can_fit(10**6)

    def test_blocks_for_rounds_up(self):
        pool = BlockPool(toy_decoder(), block_size=4)
        assert pool.blocks_for(0) == 0
        assert pool.blocks_for(1) == 1
        assert pool.blocks_for(4) == 1
        assert pool.blocks_for(5) == 2

    def test_free_list_reuse(self):
        pool = BlockPool(toy_decoder(), block_size=2)
        block = pool.allocate()
        block.append(np.ones(16), np.ones(16))
        pool.release([block])
        assert pool.in_use == 0
        again = pool.allocate()
        assert again is block  # same storage, recycled
        assert again.fill == 0 and not again.keys.any()
        assert pool.reuses == 1 and pool.allocations == 1

    def test_charge_discharge_custody(self):
        config = toy_decoder()
        pool = BlockPool(config, block_size=1, capacity_bytes=kv_cache_bytes(config, 2))
        pool.allocate(), pool.allocate()
        assert pool.in_use == 2
        pool.discharge(2)
        assert pool.in_use == 0 and pool.can_fit(2)
        pool.charge(2)
        assert pool.in_use == 2

    def test_charge_never_fails_over_budget(self):
        config = toy_decoder()
        pool = BlockPool(config, block_size=1, capacity_bytes=kv_cache_bytes(config, 1))
        pool.allocate()
        pool.charge(3)  # adoption must not lose state
        assert pool.in_use == 4
        assert not pool.can_fit(1)

    def test_recycle_skips_custody_decrement(self):
        pool = BlockPool(toy_decoder(), block_size=2)
        block = pool.allocate()
        pool.discharge(1)  # swapped out: custody already dropped
        pool.recycle([block])
        assert pool.in_use == 0
        assert pool.allocate() is block

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockPool(toy_decoder(), block_size=0)
        with pytest.raises(ValueError):
            BlockPool(toy_decoder(), block_size=1, capacity_bytes=-1)


class TestPageRoundedLedger:
    def test_session_bytes_round_up_to_pages(self):
        config = toy_decoder()
        cache = SessionCache(config, block_size=4)
        cache.open_session("s", prompt_len=1)
        # context 1 occupies one 4-token page
        assert cache.session_bytes("s") == kv_cache_bytes(config, 4)
        for t in range(1, 5):
            k = np.full(config.dim, float(t))
            cache.append_kv("s", k, -k)
        # context 5 spills into a second page
        assert cache.session_bytes("s") == kv_cache_bytes(config, 8)

    def test_zero_context_is_zero_bytes(self):
        config = toy_decoder()
        cache = SessionCache(config, block_size=4)
        cache.open_session("s", prompt_len=0)
        assert cache.session_bytes("s") == 0

    def test_exact_page_boundary(self):
        config = toy_decoder()
        cache = SessionCache(config, block_size=4)
        cache.open_session("s", prompt_len=4)
        assert cache.session_bytes("s") == kv_cache_bytes(config, 4)
        assert cache.session_blocks("s") == 1

    def test_block_size_one_matches_unpaged_accounting(self):
        config = toy_decoder()
        cache = SessionCache(config)  # default block_size=1
        cache.open_session("s", prompt_len=3)
        k = np.ones(config.dim)
        cache.append_kv("s", k, k)
        cache.append_kv("s", k, k)
        assert cache.session_bytes("s") == kv_cache_bytes(config, 5, bits=8)

    def test_stats_report_paging(self):
        config = toy_decoder()
        cache = SessionCache(config, block_size=2, kv_capacity_bytes=10**6)
        cache.open_session("s", prompt_len=3)
        stats = cache.stats()
        assert stats["block_size"] == 2
        assert stats["swapped_sessions"] == 0
        assert stats["resident_kv_bytes"] == cache.session_bytes("s")
        assert stats["pool"]["in_use_blocks"] == 2


class TestLedgerPoolInvariant:
    def test_resident_bytes_equal_pool_in_use(self):
        config = toy_decoder()
        cache = SessionCache(config, block_size=2)
        for sid, prompt in (("a", 1), ("b", 4), ("c", 0)):
            cache.open_session(sid, prompt_len=prompt)
        k = np.ones(config.dim)
        cache.append_kv("a", k, k)
        for _ in range(3):
            cache.append_kv("c", k, k)
        assert cache.resident_kv_bytes() == cache.pool.in_use_bytes
        assert cache.total_kv_bytes() == sum(
            cache.session_bytes(sid) for sid in ("a", "b", "c")
        )

    def test_swap_out_leaves_ledger_but_frees_pool(self):
        config = toy_decoder()
        cache = SessionCache(config, block_size=2)
        cache.open_session("s", prompt_len=3)
        ledger = cache.session_bytes("s")
        blocks = cache.swap_out("s")
        assert blocks == 2
        assert cache.session_bytes("s") == ledger  # ledger remembers
        assert cache.resident_kv_bytes() == 0 == cache.pool.in_use_bytes
        assert cache.stats()["swapped_sessions"] == 1
        assert cache.swap_in("s") == 2
        assert cache.resident_kv_bytes() == ledger


class TestSwapBitExactness:
    def test_kv_arrays_survive_swap_round_trip(self):
        config = toy_decoder()
        cache = SessionCache(config, block_size=2)
        cache.open_session("s", prompt_len=2)
        rng = np.random.default_rng(0)
        for _ in range(3):
            k, v = rng.normal(size=config.dim), rng.normal(size=config.dim)
            cache.append_kv("s", k, v)
        before = cache.session("s").kv_arrays(config.dim)
        cache.swap_out("s")
        cache.swap_in("s")
        after = cache.session("s").kv_arrays(config.dim)
        np.testing.assert_array_equal(before[0], after[0])
        np.testing.assert_array_equal(before[1], after[1])


class TestPopAdopt:
    def _filled(self, config, cache, sid="s"):
        cache.open_session(sid, prompt_len=2)
        k = np.arange(config.dim, dtype=float)
        cache.append_kv(sid, k, 2 * k)
        return cache

    def test_pop_moves_blocks_wholesale(self):
        config = toy_decoder()
        src = SessionCache(config, block_size=2)
        dst = SessionCache(config, block_size=2)
        self._filled(config, src)
        session = src.pop_session("s")
        assert src.resident_kv_bytes() == 0 == src.pool.in_use_bytes
        assert not src.has_session("s")
        dst.adopt_session(session)
        assert dst.session_bytes("s") == kv_cache_bytes(config, 4)
        assert dst.resident_kv_bytes() == dst.pool.in_use_bytes
        k = np.arange(config.dim, dtype=float)
        keys, values = dst.session("s").kv_arrays(config.dim)
        np.testing.assert_array_equal(keys[2], k)
        np.testing.assert_array_equal(values[2], 2 * k)

    def test_pop_swapped_session_skips_discharge(self):
        config = toy_decoder()
        src = SessionCache(config, block_size=2)
        self._filled(config, src)
        src.swap_out("s")
        in_use = src.pool.in_use
        session = src.pop_session("s")
        assert session.swapped
        assert src.pool.in_use == in_use  # nothing to discharge twice

    def test_adopt_over_budget_succeeds(self):
        config = toy_decoder()
        src = SessionCache(config, block_size=1)
        self._filled(config, src)
        tiny = SessionCache(
            config, block_size=1, kv_capacity_bytes=kv_cache_bytes(config, 1)
        )
        tiny.adopt_session(src.pop_session("s"))  # charge never fails
        assert tiny.session_bytes("s") == kv_cache_bytes(config, 3)
        assert not tiny.pool.can_fit(1)


class TestCloseSemantics:
    def test_close_resident_releases(self):
        config = toy_decoder()
        cache = SessionCache(config, block_size=2)
        cache.open_session("s", prompt_len=3)
        cache.close_session("s")
        assert cache.pool.in_use == 0
        cache.open_session("t", prompt_len=3)
        assert cache.pool.reuses == 2  # pages came off the free list

    def test_close_swapped_recycles_without_double_release(self):
        config = toy_decoder()
        cache = SessionCache(config, block_size=2)
        cache.open_session("s", prompt_len=2)
        cache.swap_out("s")
        cache.close_session("s")
        assert cache.pool.in_use == 0
        cache.open_session("t", prompt_len=2)
        assert cache.pool.in_use == 1


class TestValidation:
    def test_kv_capacity_requires_config(self):
        with pytest.raises(ValueError):
            SessionCache(kv_capacity_bytes=1024)

    def test_configless_cache_has_no_pool(self):
        cache = SessionCache()
        assert cache.pool is None
        cache.open_session("s", prompt_len=1)
        k = np.ones(4)
        assert cache.append_kv("s", k, k) == 2


class TestPrefixExportAdopt:
    """Copy-on-write prefix sharing: export transfers page custody out
    of the pool, adopters alias the chain without charging it, and the
    first generated token lands on a fresh private page."""

    def test_export_discharges_and_keeps_alias(self):
        config = toy_decoder()
        cache = SessionCache(config, block_size=2)
        cache.open_session("donor", prompt_len=4)
        assert cache.pool.in_use == 2
        chain = cache.export_prefix("donor", "sys")
        assert chain.tokens == 4 and chain.n_blocks == 2
        assert cache.pool.in_use == 0  # custody moved to the tier
        session = cache.session("donor")
        assert session.shared_blocks == 2 and session.prefix_id == "sys"
        assert session.private_blocks == 0
        assert cache.session_bytes("donor") == 0
        assert cache.shared_session_bytes("donor") == kv_cache_bytes(config, 4)

    def test_export_boundary_must_be_page_aligned(self):
        config = toy_decoder()
        cache = SessionCache(config, block_size=2)
        cache.open_session("s", prompt_len=5)
        with pytest.raises(ValueError, match="page-aligned"):
            cache.export_prefix("s", "sys", tokens=3)
        chain = cache.export_prefix("s", "sys", tokens=4)
        assert chain.n_blocks == 2
        assert cache.session("s").private_blocks == 1  # the ragged tail

    def test_export_whole_context_may_end_ragged(self):
        cache = SessionCache(toy_decoder(), block_size=2)
        cache.open_session("s", prompt_len=5)
        chain = cache.export_prefix("s", "sys")  # 3 pages, last half-full
        assert chain.tokens == 5 and chain.n_blocks == 3
        assert cache.pool.in_use == 0

    def test_export_guards(self):
        config = toy_decoder()
        cache = SessionCache(config, block_size=2)
        cache.open_session("s", prompt_len=2)
        cache.export_prefix("s", "sys")
        with pytest.raises(ValueError, match="already shares"):
            cache.export_prefix("s", "again")
        cache.open_session("t", prompt_len=2)
        cache.swap_out("t")
        with pytest.raises(ValueError, match="swapped"):
            cache.export_prefix("t", "sys2")
        with pytest.raises(ValueError):
            cache.open_session("u", prompt_len=2)
            cache.export_prefix("u", "sys3", tokens=9)

    def test_adopt_aliases_without_charging(self):
        config = toy_decoder()
        donor = SessionCache(config, block_size=2)
        donor.open_session("d", prompt_len=4)
        chain = donor.export_prefix("d", "sys")
        cache = SessionCache(config, block_size=2)
        session = cache.adopt_prefix("fork", chain)
        assert cache.pool.in_use == 0  # shared pages are tier custody
        assert session.prompt_len == session.prompt_slots == 4
        assert not session.has_room  # first append must open a new page
        k = np.ones(config.dim)
        cache.append_kv("fork", k, k)
        assert cache.pool.in_use == 1  # fresh private page, not the chain
        assert session.blocks[0] is chain.blocks[0]
        assert chain.blocks[-1].fill == 2  # shared pages never written

    def test_adopt_rejects_open_session_and_page_mismatch(self):
        config = toy_decoder()
        donor = SessionCache(config, block_size=2)
        donor.open_session("d", prompt_len=2)
        chain = donor.export_prefix("d", "sys")
        cache = SessionCache(config, block_size=2)
        cache.open_session("busy", prompt_len=1)
        with pytest.raises(ValueError, match="already open"):
            cache.adopt_prefix("busy", chain)
        mismatched = SessionCache(config, block_size=4)
        with pytest.raises(ValueError, match="do not fit"):
            mismatched.adopt_prefix("fork", chain)

    def test_close_frees_only_private_tail(self):
        config = toy_decoder()
        donor = SessionCache(config, block_size=2)
        donor.open_session("d", prompt_len=4)
        chain = donor.export_prefix("d", "sys")
        cache = SessionCache(config, block_size=2)
        cache.adopt_prefix("fork", chain)
        k = np.ones(config.dim)
        cache.append_kv("fork", k, k)
        cache.close_session("fork")
        assert cache.pool.in_use == 0
        assert len(cache.pool._free) == 1  # the private page only
        assert all(id(b) not in {id(c) for c in chain.blocks}
                   for b in cache.pool._free)
        assert chain.blocks[0].fill == 2  # chain intact for the next fork

    def test_prefix_sessions_in_stats(self):
        config = toy_decoder()
        donor = SessionCache(config, block_size=2)
        donor.open_session("d", prompt_len=2)
        chain = donor.export_prefix("d", "sys")
        cache = SessionCache(config, block_size=2)
        cache.adopt_prefix("fork", chain)
        assert cache.prefix_sessions == 1
        assert cache.stats()["prefix_sessions"] == 1
        assert donor.prefix_sessions == 1
