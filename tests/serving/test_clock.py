"""Tests for the serving time sources."""

import pytest

from repro.serving import SimulatedClock, WallClock


class TestWallClock:
    def test_is_real_and_monotonic(self):
        clock = WallClock()
        assert clock.real
        first = clock.now()
        assert clock.now() >= first


class TestSimulatedClock:
    def test_starts_at_origin(self):
        assert SimulatedClock().now() == 0.0
        assert SimulatedClock(start=2.5).now() == 2.5

    def test_is_virtual(self):
        assert not SimulatedClock().real

    def test_advance_is_exact(self):
        clock = SimulatedClock()
        assert clock.advance(1.5e-3) == 1.5e-3
        clock.advance(0.5e-3)
        assert clock.now() == 2.0e-3

    def test_zero_advance_allowed(self):
        clock = SimulatedClock(start=1.0)
        assert clock.advance(0.0) == 1.0

    def test_rejects_backwards_travel(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)
