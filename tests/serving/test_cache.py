"""Tests for the session cache (memoization + KV accounting)."""

import numpy as np
import pytest

from repro.serving import MISS, SessionCache
from repro.workloads import DecoderConfig, kv_cache_bytes


def toy_decoder() -> DecoderConfig:
    return DecoderConfig("toy", depth=2, dim=16, heads=2, mlp_ratio=2.0)


class TestMemoization:
    def test_miss_then_hit(self):
        cache = SessionCache()
        assert cache.get("k") is MISS
        value = np.arange(4.0)
        cache.put("k", value)
        assert cache.get("k") is value
        assert cache.hits == 1 and cache.misses == 1

    def test_byte_accounting(self):
        cache = SessionCache()
        cache.put("a", np.zeros(4))  # 32 bytes
        cache.put("b", np.zeros(2))  # 16 bytes
        assert cache.memo_entries == 2
        assert cache.memo_bytes == 48

    def test_lru_eviction(self):
        cache = SessionCache(capacity_bytes=64)
        cache.put("a", np.zeros(4))  # 32 bytes
        cache.put("b", np.zeros(4))  # 32 bytes -> at capacity
        assert cache.get("a") is not MISS  # refresh "a"; "b" is now LRU
        cache.put("c", np.zeros(4))
        assert cache.get("b") is MISS
        assert cache.get("a") is not MISS
        assert cache.get("c") is not MISS
        assert cache.evictions == 1
        assert cache.memo_bytes == 64

    def test_oversized_entries_are_not_admitted(self):
        cache = SessionCache(capacity_bytes=16)
        cache.put("huge", np.zeros(64))
        assert cache.get("huge") is MISS
        assert cache.memo_bytes == 0

    def test_replacing_a_key_updates_bytes(self):
        cache = SessionCache()
        cache.put("k", np.zeros(8))
        cache.put("k", np.zeros(2))
        assert cache.memo_entries == 1
        assert cache.memo_bytes == 16

    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            SessionCache(capacity_bytes=-1)


class TestSessions:
    def test_open_and_grow(self):
        cache = SessionCache(toy_decoder())
        cache.open_session("s", prompt_len=3)
        assert cache.context_len("s") == 3
        k = np.zeros(16)
        assert cache.append_kv("s", k, k) == 4
        assert cache.append_kv("s", k, k) == 5
        session = cache.session("s")
        assert len(session.keys) == 2 and session.prompt_len == 3

    def test_duplicate_open_rejected(self):
        cache = SessionCache(toy_decoder())
        cache.open_session("s")
        with pytest.raises(ValueError):
            cache.open_session("s")

    def test_unknown_session_rejected(self):
        cache = SessionCache(toy_decoder())
        with pytest.raises(KeyError):
            cache.session("nope")

    def test_bytes_match_the_llm_analysis(self):
        """SessionCache accounting is kv_cache_bytes by definition."""
        config = toy_decoder()
        cache = SessionCache(config, kv_bits=8)
        cache.open_session("s", prompt_len=5)
        k = np.zeros(16)
        for _ in range(3):
            cache.append_kv("s", k, k)
        assert cache.session_bytes("s") == kv_cache_bytes(config, 8, bits=8)

    def test_kv_bits_scale_the_accounting(self):
        config = toy_decoder()
        int8 = SessionCache(config, kv_bits=8)
        int4 = SessionCache(config, kv_bits=4)
        for cache in (int8, int4):
            cache.open_session("s", prompt_len=4)
        assert int4.session_bytes("s") * 2 == int8.session_bytes("s")

    def test_empty_session_holds_no_bytes(self):
        cache = SessionCache(toy_decoder())
        cache.open_session("s")
        assert cache.session_bytes("s") == 0

    def test_total_and_close(self):
        config = toy_decoder()
        cache = SessionCache(config)
        cache.open_session("a", prompt_len=2)
        cache.open_session("b", prompt_len=7)
        expected = kv_cache_bytes(config, 2) + kv_cache_bytes(config, 7)
        assert cache.total_kv_bytes() == expected
        freed = cache.close_session("b")
        assert freed == kv_cache_bytes(config, 7)
        assert cache.total_kv_bytes() == kv_cache_bytes(config, 2)
        assert not cache.has_session("b")

    def test_session_api_needs_a_config(self):
        cache = SessionCache()
        cache.open_session("s", prompt_len=1)
        with pytest.raises(ValueError):
            cache.session_bytes("s")

    def test_stats(self):
        cache = SessionCache(toy_decoder())
        cache.open_session("s", prompt_len=2)
        cache.put("k", np.zeros(4))
        cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["open_sessions"] == 1
        assert stats["total_kv_bytes"] == kv_cache_bytes(toy_decoder(), 2)
