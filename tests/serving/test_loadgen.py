"""Tests for load generation: Poisson gaps and multi-tenant mixes."""

import numpy as np
import pytest

from repro.serving import (
    Arrival,
    TenantSpec,
    arrival_gaps,
    multi_tenant_arrivals,
    poisson_gaps,
)

TENANTS = (
    TenantSpec("vision-app", rate_rps=2000.0, weights={"vision": 1.0}),
    TenantSpec(
        "chat-app",
        rate_rps=1000.0,
        weights={"decode": 3.0, "prompt": 1.0},
        sessions=4,
    ),
)


def mix(seed=0, horizon_s=20e-3):
    return multi_tenant_arrivals(
        TENANTS, horizon_s=horizon_s, rng=np.random.default_rng(seed)
    )


class TestPoissonGaps:
    def test_zero_mean_gap_is_all_zero(self):
        assert np.all(poisson_gaps(4, 0.0, np.random.default_rng(0)) == 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_gaps(-1, 1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            poisson_gaps(1, -1.0, np.random.default_rng(0))


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate_rps"):
            TenantSpec("t", rate_rps=0.0)
        with pytest.raises(ValueError, match="sessions"):
            TenantSpec("t", rate_rps=1.0, sessions=-1)
        with pytest.raises(ValueError, match="request kind"):
            TenantSpec("t", rate_rps=1.0, weights={})
        with pytest.raises(ValueError, match="positive sum"):
            TenantSpec("t", rate_rps=1.0, weights={"a": 0.0})
        with pytest.raises(ValueError, match="positive sum"):
            TenantSpec("t", rate_rps=1.0, weights={"a": -1.0, "b": 2.0})


class TestMultiTenantArrivals:
    def test_schedule_is_sorted_and_indexed(self):
        arrivals = mix()
        assert arrivals  # ~60 expected over the horizon
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert [a.index for a in arrivals] == list(range(len(arrivals)))
        assert all(0 < a.time <= 20e-3 for a in arrivals)

    def test_equal_seeds_replay_identically(self):
        assert mix(seed=7) == mix(seed=7)
        assert mix(seed=7) != mix(seed=8)

    def test_tenant_streams_are_independent_of_each_other(self):
        """Dropping one tenant leaves the other's stream untouched."""
        both = [a for a in mix(seed=3) if a.tenant == "vision-app"]
        alone = multi_tenant_arrivals(
            TENANTS[:1], horizon_s=20e-3, rng=np.random.default_rng(3)
        )
        assert [(a.time, a.kind) for a in both] == [
            (a.time, a.kind) for a in alone
        ]

    def test_kinds_and_sessions_follow_the_spec(self):
        arrivals = mix(seed=1, horizon_s=50e-3)
        vision = [a for a in arrivals if a.tenant == "vision-app"]
        chat = [a for a in arrivals if a.tenant == "chat-app"]
        assert all(a.kind == "vision" and a.session is None for a in vision)
        assert all(a.kind in ("decode", "prompt") for a in chat)
        sessions = {a.session for a in chat}
        assert sessions <= {f"chat-app/s{i}" for i in range(4)}
        assert len(sessions) > 1  # the mix actually spreads over sessions
        # The 3:1 weighting shows up in the drawn kinds.
        decodes = sum(a.kind == "decode" for a in chat)
        assert decodes > len(chat) / 2

    def test_rates_set_stream_volumes(self):
        arrivals = mix(seed=5, horizon_s=100e-3)
        by_tenant = {
            name: sum(a.tenant == name for a in arrivals)
            for name in ("vision-app", "chat-app")
        }
        # 2000 rps vs 1000 rps over 100 ms: ~200 vs ~100 arrivals.
        assert by_tenant["vision-app"] > 1.4 * by_tenant["chat-app"]

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="horizon_s"):
            multi_tenant_arrivals(TENANTS, horizon_s=0.0, rng=rng)
        with pytest.raises(ValueError, match="TenantSpec"):
            multi_tenant_arrivals([], horizon_s=1.0, rng=rng)


class TestArrivalGaps:
    def test_gaps_reconstruct_times(self):
        arrivals = [
            Arrival(0.5, "t", "k", None, 0),
            Arrival(0.75, "t", "k", None, 1),
            Arrival(2.0, "t", "k", None, 2),
        ]
        gaps = arrival_gaps(arrivals)
        assert gaps == [0.5, 0.25, 1.25]
        assert sum(gaps) == pytest.approx(2.0)

    def test_empty_schedule(self):
        assert arrival_gaps([]) == []
