"""Tests for the wall-clock regime: worker thread + load generators.

These use real (but tiny) waits — microsecond-scale batching windows
and millisecond-scale workloads — so they stay fast-lane friendly.
"""

import numpy as np
import pytest

from repro.serving import (
    ServingEngine,
    VisionServable,
    poisson_gaps,
    run_closed_loop,
    run_open_loop,
)
from tests.serving.test_engine import EchoServable
from tests.serving.test_servable import tiny_vit


class TestWorkerThread:
    def test_submit_and_result_roundtrip(self):
        with ServingEngine(EchoServable(), max_wait_us=100.0) as engine:
            assert engine.submit(21).result(timeout=5.0) == 42

    def test_concurrent_submissions_coalesce(self):
        servable = EchoServable()
        # A generous window lets the burst coalesce before dispatch.
        with ServingEngine(
            servable, max_batch_size=8, max_wait_us=50_000.0
        ) as engine:
            handles = [engine.submit(i) for i in range(8)]
            assert [h.result(timeout=5.0) for h in handles] == [
                2 * i for i in range(8)
            ]
        assert max(servable.batches) > 1, "burst should have been coalesced"

    def test_execution_errors_reach_the_caller(self):
        with ServingEngine(EchoServable(fail=True), max_wait_us=100.0) as engine:
            handle = engine.submit(1)
            with pytest.raises(RuntimeError):
                handle.result(timeout=5.0)

    def test_close_drains_in_flight_work(self):
        engine = ServingEngine(EchoServable(), max_batch_size=2, max_wait_us=100.0)
        engine.start()
        handles = [engine.submit(i) for i in range(6)]
        engine.close()
        assert [h.result(timeout=0) for h in handles] == [2 * i for i in range(6)]

    def test_vision_model_served_on_the_worker(self):
        model = tiny_vit(seed=5)
        servable = VisionServable(model)
        image = np.random.default_rng(0).normal(size=(16, 16))
        with ServingEngine(servable, max_wait_us=100.0) as engine:
            logits = engine.submit(image).result(timeout=10.0)
        assert np.array_equal(logits, model(image).data)


class TestLoadGenerators:
    def test_poisson_gaps_are_seeded(self):
        first = poisson_gaps(8, 1e-3, np.random.default_rng(1))
        second = poisson_gaps(8, 1e-3, np.random.default_rng(1))
        assert np.array_equal(first, second)
        assert first.shape == (8,) and (first >= 0).all()

    def test_zero_rate_means_a_burst(self):
        assert poisson_gaps(4, 0.0, np.random.default_rng(0)).tolist() == [0] * 4

    def test_poisson_gaps_validate(self):
        with pytest.raises(ValueError):
            poisson_gaps(-1, 1e-3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            poisson_gaps(4, -1.0, np.random.default_rng(0))

    def test_open_loop_reports_throughput_and_latency(self):
        with ServingEngine(
            EchoServable(), max_batch_size=4, max_wait_us=200.0, queue_depth=64
        ) as engine:
            gaps = poisson_gaps(12, 1e-4, np.random.default_rng(2))
            result = run_open_loop(engine, list(range(12)), gaps)
        assert result["pattern"] == "open-loop-poisson"
        assert result["requests"] == 12
        assert result["throughput_rps"] > 0
        assert result["latency_p99_ms"] >= result["latency_p50_ms"] >= 0
        assert result["mean_batch_size"] >= 1.0

    def test_open_loop_validates_schedule(self):
        with ServingEngine(EchoServable(), max_wait_us=100.0) as engine:
            with pytest.raises(ValueError):
                run_open_loop(engine, [1, 2], [0.0])

    def test_closed_loop_runs_every_round(self):
        with ServingEngine(
            EchoServable(), max_batch_size=4, max_wait_us=200.0
        ) as engine:
            result = run_closed_loop(engine, [1, 2, 3], rounds=3)
        assert result["pattern"] == "closed-loop"
        assert result["concurrency"] == 3
        assert result["requests"] == 9
        assert result["throughput_rps"] > 0

    def test_closed_loop_validates_rounds(self):
        with ServingEngine(EchoServable(), max_wait_us=100.0) as engine:
            with pytest.raises(ValueError):
                run_closed_loop(engine, [1], rounds=0)

    def test_closed_loop_surfaces_user_errors(self):
        with ServingEngine(EchoServable(fail=True), max_wait_us=100.0) as engine:
            with pytest.raises(RuntimeError):
                run_closed_loop(engine, [1, 2], rounds=1)


class TestLoadGenEdgeCases:
    def test_empty_open_loop_reports_zeros(self):
        with ServingEngine(EchoServable(), max_wait_us=100.0) as engine:
            result = run_open_loop(engine, [], [])
        assert result["requests"] == 0
        assert result["throughput_rps"] == 0.0
        assert result["latency_p99_ms"] == 0.0
