"""Engine-level tests for continuous (iteration-level) scheduling:
bit-equality against request mode and sequential decode, preemption
round-trips, eviction/close semantics, and the virtual cost model."""

import numpy as np
import pytest

from repro.serving import (
    DecodeServable,
    EngineClosed,
    IterationCost,
    ServingEngine,
    SimulatedClock,
    decode_payload,
    mixed_decode_trace,
    run_decode_trace,
)
from repro.workloads import DecoderConfig, kv_cache_bytes


def toy_decoder(name="toy") -> DecoderConfig:
    return DecoderConfig(name, depth=2, dim=16, heads=2, mlp_ratio=2.0)


def payload_fn(config, seed=3):
    return lambda i, t: decode_payload(seed, i, t, config.dim)


def sequential_outputs(config, specs, *, seed=1):
    """Each session decoded alone on a fresh engine: the bit oracle."""
    fn = payload_fn(config)
    outputs = {}
    for i, spec in enumerate(specs):
        engine = ServingEngine(
            DecodeServable(config, seed=seed),
            max_batch_size=1,
            max_wait_us=0.0,
            clock=SimulatedClock(),
        )
        with engine:
            outs = []
            for t in range(spec.steps):
                handle = engine.submit(fn(i, t), session_id=spec.session_id)
                engine.step()
                outs.append(handle.result(timeout=0))
            outputs[spec.session_id] = outs
    return outputs


def trace_outputs(config, specs, *, scheduler, window_us=0.0, **servable_kwargs):
    engine = ServingEngine(
        DecodeServable(config, seed=1, **servable_kwargs),
        max_batch_size=4,
        max_wait_us=window_us,
        queue_depth=256,
        clock=SimulatedClock(),
        scheduler=scheduler,
        iteration_cost=IterationCost(base_s=2e-4, per_request_s=5e-5),
    )
    with engine:
        result = run_decode_trace(
            engine,
            specs,
            payload_fn=payload_fn(config),
            idle_tick_s=window_us * 1e-6,
        )
    return result, engine


def assert_bit_equal(outputs, reference, specs):
    for spec in specs:
        got, want = outputs[spec.session_id], reference[spec.session_id]
        assert len(got) == len(want)
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)


class TestBitEquality:
    def test_continuous_matches_sequential_and_request(self):
        config = toy_decoder()
        specs = mixed_decode_trace(6, seed=11, max_steps=7, horizon_s=5e-3)
        reference = sequential_outputs(config, specs)
        continuous, _ = trace_outputs(config, specs, scheduler="continuous")
        request, _ = trace_outputs(
            config, specs, scheduler="request", window_us=1_000.0
        )
        assert_bit_equal(continuous["outputs"], reference, specs)
        assert_bit_equal(request["outputs"], reference, specs)

    def test_continuous_is_faster_than_request(self):
        config = toy_decoder()
        specs = mixed_decode_trace(8, seed=5, max_steps=8, horizon_s=8e-3)
        continuous, _ = trace_outputs(config, specs, scheduler="continuous")
        request, _ = trace_outputs(
            config, specs, scheduler="request", window_us=2_000.0
        )
        assert continuous["throughput_sps"] > request["throughput_sps"]

    def test_preemption_round_trip_is_bit_exact(self):
        config = toy_decoder()
        # Dense arrivals against a pool of 4 two-token pages (the
        # largest session alone needs all 4): admission must preempt.
        specs = mixed_decode_trace(8, seed=11, max_steps=8, horizon_s=2e-3)
        reference = sequential_outputs(config, specs)
        tight, engine = trace_outputs(
            config,
            specs,
            scheduler="continuous",
            block_size=2,
            kv_capacity_bytes=kv_cache_bytes(config, 2) * 4,
        )
        sched = engine._scheduler
        assert sched.preemptions > 0, "tight pool must force preemption"
        assert sched.swap_ins > 0, "preempted sessions must resume"
        assert_bit_equal(tight["outputs"], reference, specs)


class TestIterationMetrics:
    def test_occupancy_recorded(self):
        config = toy_decoder()
        specs = mixed_decode_trace(4, seed=2, max_steps=5, horizon_s=2e-3)
        _, engine = trace_outputs(config, specs, scheduler="continuous")
        occupancy = engine.metrics.iteration_occupancy()
        assert sum(occupancy.values()) == engine._scheduler.iterations
        snapshot = engine.metrics.snapshot()
        assert snapshot["mean_iteration_occupancy"] > 1.0
        assert set(snapshot["iteration_occupancy"]) == {
            str(k) for k in occupancy
        }

    def test_request_mode_records_no_iterations(self):
        config = toy_decoder()
        specs = mixed_decode_trace(3, seed=2, max_steps=4, horizon_s=2e-3)
        _, engine = trace_outputs(
            config, specs, scheduler="request", window_us=500.0
        )
        assert engine.metrics.iteration_occupancy() == {}


class TestLifecycle:
    def _engine(self, **kwargs):
        config = toy_decoder()
        kwargs.setdefault("max_batch_size", 4)
        kwargs.setdefault("max_wait_us", 0.0)
        kwargs.setdefault("clock", SimulatedClock())
        kwargs.setdefault("scheduler", "continuous")
        return config, ServingEngine(DecodeServable(config, seed=1), **kwargs)

    def test_close_without_drain_fails_scheduler_held(self):
        config, engine = self._engine()
        engine.start()
        fn = payload_fn(config)
        handles = [engine.submit(fn(0, t), session_id="s") for t in range(3)]
        engine.step()  # first step executes; two remain scheduler-held
        engine.close(drain=False)
        assert handles[0].done() and handles[0].result(timeout=0) is not None
        for handle in handles[1:]:
            with pytest.raises(EngineClosed):
                handle.result(timeout=0)

    def test_evict_pending_merges_in_submission_order(self):
        config, engine = self._engine()
        engine.start()
        fn = payload_fn(config)
        engine.submit(fn(0, 0), session_id="a")
        engine.submit(fn(1, 0), session_id="b")
        engine.step()  # both admitted+executed; sessions now live
        engine.submit(fn(0, 1), session_id="a")
        engine.submit(fn(1, 1), session_id="b")
        engine.step()
        engine.submit(fn(0, 2), session_id="a")  # queue, not yet ingested
        evicted = engine.evict_pending()
        assert [r.request_id for r in evicted] == [4]
        assert engine.pending == 0
        engine.close(drain=False)

    def test_release_session_frees_pool_pages(self):
        config = toy_decoder()
        servable = DecodeServable(config, seed=1, block_size=2)
        engine = ServingEngine(
            servable,
            max_batch_size=4,
            max_wait_us=0.0,
            clock=SimulatedClock(),
            scheduler="continuous",
        )
        with engine:
            fn = payload_fn(config)
            for t in range(3):
                engine.submit(fn(0, t), session_id="s")
                engine.step()
            pages = servable.cache.pool.in_use
            assert pages > 0
            freed = engine.release_session("s")
            assert freed == kv_cache_bytes(config, 4)  # 3 tokens, 2 pages
            assert servable.cache.pool.in_use == 0
            assert servable.cache.pool.free_blocks == pages

    def test_release_session_unknown_is_zero(self):
        config, engine = self._engine()
        with engine:
            assert engine.release_session("ghost") == 0


class TestValidation:
    def test_unknown_scheduler_rejected(self):
        config = toy_decoder()
        with pytest.raises(ValueError):
            ServingEngine(
                DecodeServable(config, seed=1), scheduler="sorcery"
            )

    def test_iteration_cost_requires_simulated_clock(self):
        config = toy_decoder()
        with pytest.raises(ValueError):
            ServingEngine(
                DecodeServable(config, seed=1),
                iteration_cost=IterationCost(),
            )

    def test_trace_helpers_validate(self):
        with pytest.raises(ValueError):
            mixed_decode_trace(0)
        config = toy_decoder()
        engine = ServingEngine(DecodeServable(config, seed=1))  # wall clock
        specs = mixed_decode_trace(2, seed=0)
        with pytest.raises(ValueError):
            run_decode_trace(engine, specs, payload_fn=payload_fn(config))
        engine.close()


class TestWallClockContinuous:
    def test_background_worker_serves_sessions(self):
        config = toy_decoder()
        engine = ServingEngine(
            DecodeServable(config, seed=1),
            max_batch_size=4,
            max_wait_us=0.0,
            scheduler="continuous",
        )
        fn = payload_fn(config)
        with engine:
            handles = [
                engine.submit(fn(i, t), session_id=f"s{i}")
                for t in range(3)
                for i in range(2)
            ]
            results = [h.result(timeout=5.0) for h in handles]
        assert all(isinstance(r, np.ndarray) for r in results)
        # Same steps through a manual sequential engine: bits must agree.
        specs = mixed_decode_trace(2, seed=0, min_steps=3, max_steps=3)
        reference = sequential_outputs(config, specs)
        for i in range(2):
            for t in range(3):
                np.testing.assert_array_equal(
                    results[t * 2 + i], reference[f"s{i}"][t]
                )
