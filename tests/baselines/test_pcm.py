"""Tests for the PCM-crossbar baseline (Table I's third prior design)."""

import pytest

from repro.arch import LighteningTransformer, lt_base
from repro.baselines import (
    PCM_DECOMPOSITION_RUNS,
    PCMAccelerator,
    MRRAccelerator,
    pcm_core_area,
    pcm_path_loss_db,
)
from repro.units import MM2
from repro.workloads import (
    MODULE_ATTENTION,
    MODULE_FFN,
    GEMMOp,
    deit_tiny,
    gemm_trace,
)


@pytest.fixture(scope="module")
def pcm():
    return PCMAccelerator(bits=4)


class TestConfiguration:
    def test_four_product_decomposition(self, pcm):
        """Positive-only on both operands: (X+-X-)(Y+-Y-) needs 4 runs."""
        assert pcm.config.decomposition_runs == PCM_DECOMPOSITION_RUNS == 4

    def test_zero_locking_power(self, pcm):
        """Non-volatile PCM holds weights at zero static power."""
        assert pcm.config.locking_power_per_core == 0.0

    def test_slow_reconfiguration(self, pcm):
        """Device writes are in the paper's 10 ns - 10 us band."""
        assert 10e-9 <= pcm.config.reconfig_time <= 10e-6

    def test_core_area_band(self):
        assert 0.5 * MM2 < pcm_core_area(12) < 5 * MM2

    def test_loss_budget_moderate(self):
        assert 3 < pcm_path_loss_db(12) < 15

    def test_area_matched_cores(self, pcm):
        assert 10 <= pcm.config.n_cores <= 40


class TestExecutionCharacteristics:
    def test_mm_throughput_beats_mvm(self, pcm):
        """PCM is an MM core: it streams k vectors per cycle."""
        op = GEMMOp("fc", m=120, k=12, n=12, module=MODULE_FFN)
        mvm_cycles = pcm.op_weight_tiles(op) * op.m * pcm.config.decomposition_runs
        assert pcm.op_stream_cycles(op) == mvm_cycles // pcm.config.k

    def test_dynamic_ops_pay_rewrite_stalls(self, pcm):
        static = GEMMOp("fc", 197, 192, 192, module=MODULE_FFN)
        dynamic = GEMMOp(
            "qkt", 197, 192, 192, module=MODULE_ATTENTION, dynamic=True
        )
        assert pcm.op_reconfig_time(dynamic) == pytest.approx(
            4 * pcm.op_reconfig_time(static)
        )

    def test_dynamic_ops_pay_write_energy(self, pcm):
        static = GEMMOp("fc", 197, 192, 192, module=MODULE_FFN)
        dynamic = GEMMOp(
            "qkt", 197, 192, 192, module=MODULE_ATTENTION, dynamic=True
        )
        static_writes = pcm.op_energy(static).by_category["op1-mod"]
        dynamic_writes = pcm.op_energy(dynamic).by_category["op1-mod"]
        assert dynamic_writes > 3 * static_writes


class TestTableIShape:
    """PCM loses to LT on Transformers: reprogramming + decomposition."""

    def test_lt_wins_latency_by_orders(self, pcm):
        trace = gemm_trace(deit_tiny())
        lt = LighteningTransformer(lt_base(4)).run(trace)
        run = pcm.run(trace)
        assert run.latency / lt.latency > 30

    def test_lt_wins_energy(self, pcm):
        trace = gemm_trace(deit_tiny())
        lt = LighteningTransformer(lt_base(4)).run(trace)
        assert pcm.run(trace).energy_joules > lt.energy_joules

    def test_pcm_reprogramming_slower_than_mrr_on_attention(self, pcm):
        """Dynamic attention forces PCM cell reprogramming every product,
        so PCM trails MRR's streaming execution on these ops."""
        attention = [
            op for op in gemm_trace(deit_tiny()) if op.module == MODULE_ATTENTION
        ]
        mrr_latency = MRRAccelerator(bits=4).run(attention).latency
        pcm_latency = pcm.run(attention).latency
        assert pcm_latency > mrr_latency
