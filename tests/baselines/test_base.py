"""Tests for the weight-static baseline machinery and Table I data."""

import pytest

from repro.baselines import (
    TABLE_I,
    WeightStaticAccelerator,
    WeightStaticConfig,
)
from repro.workloads import MODULE_FFN, GEMMOp


class TestTableI:
    def test_all_designs_present(self):
        assert set(TABLE_I) == {"mzi", "pcm", "mrr1", "mrr2", "dptc"}

    def test_only_dptc_has_both_capabilities(self):
        """Table I's punchline: only DPTC supports dynamic MM *and*
        overhead-free full-range MM."""
        both = [
            key
            for key, caps in TABLE_I.items()
            if caps.dynamic_mm and caps.full_range_no_overhead
        ]
        assert both == ["dptc"]

    def test_mzi_full_range_but_static(self):
        caps = TABLE_I["mzi"]
        assert caps.full_range_no_overhead and not caps.dynamic_mm
        assert caps.mapping_cost == "high"

    def test_mrr_dynamic_but_restricted(self):
        caps = TABLE_I["mrr1"]
        assert caps.dynamic_mm and not caps.full_range_no_overhead

    def test_dptc_is_mm_class(self):
        assert TABLE_I["dptc"].operation == "MM"
        assert TABLE_I["mrr1"].operation == "MVM"


@pytest.fixture
def simple_config():
    return WeightStaticConfig(
        name="test",
        n_cores=4,
        k=8,
        bits=4,
        decomposition_runs=2,
        reconfig_time=1e-6,
        path_loss_db=10.0,
        channels_per_core=8,
        locking_power_per_core=0.1,
        input_mod_energy=1e-13,
    )


class TestTiming:
    def test_weight_tiles(self, simple_config):
        acc = WeightStaticAccelerator(simple_config)
        op = GEMMOp("fc", m=100, k=16, n=24, module=MODULE_FFN)
        assert acc.op_weight_tiles(op) == 2 * 3  # ceil(16/8) * ceil(24/8)

    def test_stream_cycles_include_decomposition(self, simple_config):
        acc = WeightStaticAccelerator(simple_config)
        op = GEMMOp("fc", m=100, k=16, n=24, module=MODULE_FFN)
        assert acc.op_stream_cycles(op) == 6 * 100 * 2

    def test_active_time_parallel_over_cores(self, simple_config):
        acc = WeightStaticAccelerator(simple_config)
        op = GEMMOp("fc", m=100, k=16, n=24, module=MODULE_FFN)
        expected_cycles = -(-acc.op_stream_cycles(op) // 4)
        assert acc.op_active_time(op) == pytest.approx(
            expected_cycles * simple_config.cycle_time
        )

    def test_reconfig_time_added_to_latency(self, simple_config):
        acc = WeightStaticAccelerator(simple_config)
        op = GEMMOp("fc", m=10, k=8, n=8, module=MODULE_FFN)
        assert acc.op_latency(op) > acc.op_active_time(op)
        assert acc.op_reconfig_time(op) == pytest.approx(1e-6)

    def test_count_scales_tiles(self, simple_config):
        acc = WeightStaticAccelerator(simple_config)
        single = GEMMOp("fc", m=10, k=8, n=8, module=MODULE_FFN)
        repeated = GEMMOp("fc", m=10, k=8, n=8, module=MODULE_FFN, count=5)
        assert acc.op_weight_tiles(repeated) == 5 * acc.op_weight_tiles(single)


class TestEnergy:
    def test_locking_charged_over_active_time(self, simple_config):
        acc = WeightStaticAccelerator(simple_config)
        op = GEMMOp("fc", m=1000, k=8, n=8, module=MODULE_FFN)
        report = acc.op_energy(op)
        expected = 0.1 * 4 * acc.op_active_time(op)
        assert report.by_category["op1-mod"] == pytest.approx(expected)

    def test_energy_positive_all_core_categories(self, simple_config):
        acc = WeightStaticAccelerator(simple_config)
        op = GEMMOp("fc", m=100, k=16, n=16, module=MODULE_FFN)
        report = acc.op_energy(op)
        for category in ("op1-dac", "op2-dac", "det", "adc", "laser", "static"):
            assert report.by_category[category] > 0

    def test_decomposition_doubles_streaming_energy(self):
        def make(runs):
            return WeightStaticAccelerator(
                WeightStaticConfig(
                    name="t", n_cores=1, k=8, decomposition_runs=runs,
                    path_loss_db=10.0, channels_per_core=8,
                )
            )

        op = GEMMOp("fc", m=64, k=8, n=8, module=MODULE_FFN)
        single = make(1).op_energy(op)
        double = make(2).op_energy(op)
        assert double.by_category["op2-dac"] == pytest.approx(
            2 * single.by_category["op2-dac"]
        )
        assert double.by_category["adc"] == pytest.approx(
            2 * single.by_category["adc"]
        )

    def test_run_aggregates(self, simple_config):
        acc = WeightStaticAccelerator(simple_config)
        ops = [GEMMOp("a", 16, 8, 8, module=MODULE_FFN) for _ in range(3)]
        result = acc.run(ops, workload="triple")
        assert result.workload == "triple"
        assert result.latency >= result.active_time
        assert result.energy.total == pytest.approx(
            sum(acc.op_energy(op).total for op in ops)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightStaticConfig(name="bad", n_cores=0, k=8)
        with pytest.raises(ValueError):
            WeightStaticConfig(name="bad", n_cores=1, k=8, decomposition_runs=0)
