"""Tests for the electronic roofline platforms (Fig. 13 comparison set)."""

import pytest

from repro.arch import LighteningTransformer, lt_base
from repro.baselines import (
    ElectronicPlatform,
    all_platforms,
    cpu_i7_9750h,
    edge_tpu,
    fpga_transformer_accelerator,
    gpu_a100,
)
from repro.workloads import deit_base, deit_tiny, gemm_trace


class TestPlatformModels:
    def test_four_platforms(self):
        names = [p.name for p in all_platforms()]
        assert len(names) == 4
        assert any("A100" in n for n in names)
        assert any("CPU" in n for n in names)

    def test_latency_scales_with_model_size(self):
        gpu = gpu_a100()
        assert gpu.latency(deit_base()) > gpu.latency(deit_tiny())

    def test_energy_scales_with_model_size(self):
        cpu = cpu_i7_9750h()
        assert cpu.energy(deit_base()) > cpu.energy(deit_tiny())

    def test_fps_inverse_of_latency(self):
        tpu = edge_tpu()
        assert tpu.fps(deit_tiny()) == pytest.approx(1.0 / tpu.latency(deit_tiny()))

    def test_edp_consistent(self):
        fpga = fpga_transformer_accelerator()
        trace = gemm_trace(deit_tiny())
        assert fpga.edp(trace) == pytest.approx(
            fpga.energy(trace) * fpga.latency(trace)
        )

    def test_accepts_trace_or_config(self):
        gpu = gpu_a100()
        assert gpu.energy(deit_tiny()) == pytest.approx(
            gpu.energy(gemm_trace(deit_tiny()))
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ElectronicPlatform("bad", peak_ops=0, utilization=0.5, ops_per_joule=1)
        with pytest.raises(ValueError):
            ElectronicPlatform("bad", peak_ops=1, utilization=1.5, ops_per_joule=1)


class TestFig13Shape:
    """The paper's headline cross-platform claims."""

    @pytest.fixture(scope="class")
    def lt_result(self):
        return LighteningTransformer(lt_base(4)).run(deit_tiny())

    def test_lt_beats_cpu_by_hundreds_x_energy(self, lt_result):
        ratio = cpu_i7_9750h().energy(deit_tiny()) / lt_result.energy_joules
        assert ratio > 150  # paper: >300x

    def test_lt_beats_gpu_energy(self, lt_result):
        ratio = gpu_a100().energy(deit_tiny()) / lt_result.energy_joules
        assert 3 < ratio < 20  # paper: ~6.6x

    def test_lt_beats_edge_tpu_energy(self, lt_result):
        ratio = edge_tpu().energy(deit_tiny()) / lt_result.energy_joules
        assert ratio > 8  # paper: ~18x

    def test_lt_beats_fpga_energy(self, lt_result):
        ratio = (
            fpga_transformer_accelerator().energy(deit_tiny())
            / lt_result.energy_joules
        )
        assert ratio > 8  # paper: ~20x

    def test_lt_highest_throughput(self, lt_result):
        """Paper: LT achieves the highest FPS among all platforms,
        even with the 4-tile LT-B."""
        for platform in all_platforms():
            assert lt_result.fps > platform.fps(deit_tiny())

    def test_edp_orders_of_magnitude(self, lt_result):
        """2-3 orders of magnitude EDP advantage over electronics."""
        lt_edp = lt_result.edp
        for platform in all_platforms():
            assert platform.edp(deit_tiny()) / lt_edp > 50
