"""Tests for the MZI and MRR baselines: the Table V comparison shape."""

import pytest

from repro.arch import LighteningTransformer, lt_base
from repro.baselines import (
    MRRAccelerator,
    MZIAccelerator,
    mrr_core_area,
    mzi_core_area,
    mzi_path_loss_db,
    mrr_path_loss_db,
)
from repro.units import MM2
from repro.workloads import (
    MODULE_ATTENTION,
    MODULE_FFN,
    GEMMOp,
    deit_tiny,
    filter_module,
    gemm_trace,
)


@pytest.fixture(scope="module")
def lt():
    return LighteningTransformer(lt_base(4))


@pytest.fixture(scope="module")
def mrr():
    return MRRAccelerator(bits=4)


@pytest.fixture(scope="module")
def mzi():
    return MZIAccelerator(bits=4)


@pytest.fixture(scope="module")
def deit_trace():
    return gemm_trace(deit_tiny())


class TestAreaMatching:
    def test_mrr_core_area_band(self):
        assert 1.0 * MM2 < mrr_core_area(12) < 4.0 * MM2

    def test_mzi_core_larger_than_mrr(self):
        """The bulky MZI mesh limits how many cores fit (paper Sec. V-C)."""
        assert mzi_core_area(12) > mrr_core_area(12)

    def test_core_counts_area_matched(self, mrr, mzi):
        assert 10 <= mrr.config.n_cores <= 24
        assert 6 <= mzi.config.n_cores <= 14
        assert mzi.config.n_cores < mrr.config.n_cores


class TestLossBudgets:
    def test_mzi_mesh_loss_is_prohibitive(self):
        """Deeply cascaded MZIs: tens of dB (paper: laser dominates)."""
        assert mzi_path_loss_db(12) > 25.0

    def test_mrr_loss_moderate(self):
        assert 5.0 < mrr_path_loss_db(12) < 15.0

    def test_mzi_loss_grows_with_mesh(self):
        assert mzi_path_loss_db(24) > mzi_path_loss_db(12)


class TestTableVShape:
    """Who wins, by roughly what factor (paper Table V, 4-bit)."""

    def test_mrr_energy_ratio(self, lt, mrr, deit_trace):
        ratio = mrr.run(deit_trace).energy_joules / lt.run(deit_trace).energy_joules
        assert ratio == pytest.approx(4.0, rel=0.4)  # paper avg: 4.03x

    def test_mrr_latency_ratio(self, lt, mrr, deit_trace):
        ratio = mrr.run(deit_trace).latency / lt.run(deit_trace).latency
        assert ratio == pytest.approx(12.8, rel=0.35)  # paper avg: 12.85x

    def test_mzi_latency_hundreds_of_x(self, lt, mzi, deit_trace):
        """Reconfiguration-bound MZI: paper avg 675x."""
        ratio = mzi.run(deit_trace).latency / lt.run(deit_trace).latency
        assert 200 < ratio < 1500

    def test_mzi_energy_ratio(self, lt, mzi, deit_trace):
        ratio = mzi.run(deit_trace).energy_joules / lt.run(deit_trace).energy_joules
        assert 3.0 < ratio < 16.0  # paper avg: 8.01x

    def test_mzi_edp_orders_of_magnitude(self, lt, mzi, deit_trace):
        """Paper: 3-4 orders of magnitude EDP gap."""
        ratio = mzi.run(deit_trace).edp / lt.run(deit_trace).edp
        assert ratio > 1e3

    def test_mrr_edp(self, lt, mrr, deit_trace):
        ratio = mrr.run(deit_trace).edp / lt.run(deit_trace).edp
        assert ratio == pytest.approx(51.8, rel=0.5)  # paper avg: 51.79x


class TestMRRCharacteristics:
    def test_locking_power_dominates_breakdown(self, mrr, deit_trace):
        """Paper Fig. 11: static operand locking is >40 % of MRR energy
        on the attention workload."""
        mha = filter_module(deit_trace, MODULE_ATTENTION)
        report = mrr.energy(mha)
        assert report.by_category["op1-mod"] / report.total > 0.25

    def test_decomposition_declared(self, mrr):
        assert mrr.config.decomposition_runs == 2

    def test_no_reconfig_stall(self, mrr):
        op = GEMMOp("fc", 100, 24, 24, module=MODULE_FFN)
        assert mrr.op_reconfig_time(op) == 0.0


class TestMZICharacteristics:
    def test_reconfiguration_dominates_latency(self, mzi):
        """The 2 us MEMS response makes weight switching the bottleneck."""
        op = GEMMOp("fc", 197, 192, 768, module=MODULE_FFN, count=12)
        assert mzi.op_reconfig_time(op) > 10 * mzi.op_active_time(op)

    def test_laser_is_top_energy_category_on_linear(self, mzi):
        """Paper: MZI laser takes over 75 % of its linear-layer energy."""
        op = GEMMOp("fc", 197, 192, 768, module=MODULE_FFN, count=12)
        report = mzi.op_energy(op)
        laser_share = report.by_category["laser"] / report.total
        assert laser_share > 0.30
        assert report.by_category["laser"] == max(report.by_category.values())

    def test_dynamic_ops_delegated_to_mrr(self, mzi):
        dynamic = GEMMOp(
            "qkt", 197, 64, 197, module=MODULE_ATTENTION, dynamic=True
        )
        assert not mzi.supports(dynamic)
        assert mzi.op_latency(dynamic) == pytest.approx(
            mzi.attention_subsystem.op_latency(dynamic)
        )

    def test_static_ops_on_mesh(self, mzi):
        static = GEMMOp("fc", 197, 192, 192, module=MODULE_FFN)
        assert mzi.supports(static)

    def test_full_range_single_pass(self, mzi):
        assert mzi.config.decomposition_runs == 1
