"""Tests for accelerator configuration and derived component counts."""

import pytest

from repro.arch import (
    AcceleratorConfig,
    ArchOptimizations,
    lt_base,
    lt_broadcast_base,
    lt_crossbar_base,
    lt_large,
    single_core,
)
from repro.core import DPTCGeometry
from repro.units import GHZ


class TestPresets:
    def test_lt_base_matches_table_iv(self):
        cfg = lt_base()
        assert cfg.n_tiles == 4
        assert cfg.cores_per_tile == 2
        assert (cfg.geometry.n_h, cfg.geometry.n_v, cfg.geometry.n_lambda) == (
            12,
            12,
            12,
        )
        assert cfg.global_sram_bytes == 2 * 1024 * 1024

    def test_lt_large_matches_table_iv(self):
        cfg = lt_large()
        assert cfg.n_tiles == 8
        assert cfg.global_sram_bytes == 4 * 1024 * 1024

    def test_default_clock_is_5ghz(self):
        assert lt_base().clock == pytest.approx(5 * GHZ)
        assert lt_base().cycle_time == pytest.approx(200e-12)

    def test_default_precision_is_4bit(self):
        assert lt_base().bits == 4

    def test_with_bits(self):
        cfg = lt_base().with_bits(8)
        assert cfg.bits == 8
        assert "8b" in cfg.name

    def test_variants(self):
        assert lt_crossbar_base().optimizations == ArchOptimizations.crossbar_only()
        assert lt_broadcast_base().optimizations == ArchOptimizations.broadcast_only()

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig("bad", n_tiles=0, cores_per_tile=1)
        with pytest.raises(ValueError):
            AcceleratorConfig("bad", n_tiles=1, cores_per_tile=1, bits=0)


class TestDerivedCounts:
    @pytest.fixture
    def cfg(self):
        return lt_base()

    def test_core_count(self, cfg):
        assert cfg.n_cores == 8
        assert cfg.n_ddots == 8 * 144

    def test_peak_throughput(self, cfg):
        # 8 cores x 1728 MACs x 5 GHz x 2 ops = 138.2 TOPS
        assert cfg.peak_ops == pytest.approx(138.24e12)

    def test_m1_waveguides(self, cfg):
        assert cfg.m1_waveguides == 8 * 12

    def test_m2_waveguides_shared(self, cfg):
        """Inter-core broadcast: one M2 modulation set per core position."""
        assert cfg.m2_waveguides == 2 * 12

    def test_m2_waveguides_unshared(self):
        cfg = lt_crossbar_base()
        assert cfg.m2_waveguides == 4 * 2 * 12

    def test_dac_count(self, cfg):
        assert cfg.n_dacs == (96 + 24) * 12 == 1440
        assert cfg.n_mzms == cfg.n_dacs
        assert cfg.n_microdisks == 2 * cfg.n_dacs

    def test_photodiode_count(self, cfg):
        assert cfg.n_photodiodes == 2 * 8 * 144

    def test_adc_count_with_summation(self, cfg):
        # Intra-tile analog summation merges the 2 cores of each tile.
        assert cfg.n_adcs == 8 * 144 // 2 == 576
        assert cfg.n_tias == cfg.n_adcs

    def test_adc_count_without_summation(self):
        cfg = lt_crossbar_base()
        assert cfg.n_adcs == 8 * 144

    def test_adc_rate_with_temporal_accumulation(self, cfg):
        assert cfg.adc_sample_rate == pytest.approx(cfg.clock / 3)

    def test_adc_rate_without_temporal_accumulation(self):
        cfg = lt_crossbar_base()
        assert cfg.adc_sample_rate == pytest.approx(cfg.clock)

    def test_light_sources(self, cfg):
        assert cfg.n_micro_combs == 4
        assert cfg.n_lasers == 8


class TestOptimizationFlags:
    def test_all_on_default(self):
        opts = ArchOptimizations.all_on()
        assert opts.crossbar_operand_sharing
        assert opts.inter_core_broadcast
        assert opts.intra_tile_analog_summation
        assert opts.analog_temporal_accumulation
        assert opts.effective_accumulation_depth == 3

    def test_crossbar_only(self):
        opts = ArchOptimizations.crossbar_only()
        assert opts.crossbar_operand_sharing
        assert not opts.inter_core_broadcast
        assert opts.effective_accumulation_depth == 1

    def test_broadcast_only(self):
        opts = ArchOptimizations.broadcast_only()
        assert not opts.crossbar_operand_sharing

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            ArchOptimizations(temporal_accumulation_depth=0)


class TestSingleCore:
    def test_geometry(self):
        cfg = single_core(16)
        assert cfg.n_cores == 1
        assert cfg.geometry == DPTCGeometry(16, 16, 16)

    def test_no_memory(self):
        cfg = single_core(8)
        assert cfg.global_sram_bytes == 0

    def test_no_arch_level_optimizations(self):
        cfg = single_core(8)
        assert not cfg.optimizations.inter_core_broadcast
        assert cfg.adc_sample_rate == pytest.approx(cfg.clock)
