"""Tests for the latency models: Fig. 9 path latency and Table V timing."""

import pytest

from repro.arch import (
    accumulation_cycles,
    core_path_latency,
    effective_throughput_ops,
    gemm_cycles,
    gemm_tile_count,
    lt_base,
    workload_cycles,
    workload_latency,
)
from repro.units import MS
from repro.workloads import (
    MODULE_ATTENTION,
    MODULE_FFN,
    GEMMOp,
    deit_base,
    deit_tiny,
    filter_module,
    gemm_trace,
)


class TestCorePathLatency:
    """Fig. 9 right panel: 47 ps at N=8 up to 106.4 ps at N=32."""

    def test_n8(self):
        assert core_path_latency(8).total_ps == pytest.approx(47.0, rel=0.05)

    def test_n32(self):
        assert core_path_latency(32).total_ps == pytest.approx(106.4, rel=0.05)

    def test_optics_grows_linearly(self):
        """Paper: 'the optics latency increases approximately linearly'."""
        step1 = core_path_latency(16).optics - core_path_latency(8).optics
        step2 = core_path_latency(24).optics - core_path_latency(16).optics
        assert step1 == pytest.approx(step2, rel=1e-9)

    def test_eo_oe_constant(self):
        """Paper: 'the EO/OE latency remains almost the same'."""
        assert core_path_latency(8).eo_oe == core_path_latency(32).eo_oe

    def test_below_clock_period(self):
        """Path latency never exceeds the 200 ps cycle at paper sizes."""
        for n in (8, 12, 16, 24, 32):
            assert core_path_latency(n).total < 200e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            core_path_latency(0)


class TestGEMMCycleCounting:
    @pytest.fixture
    def cfg(self):
        return lt_base()

    def test_tile_count(self, cfg):
        op = GEMMOp("x", m=197, k=64, n=197, count=36)
        assert gemm_tile_count(cfg, op) == 17 * 6 * 17 * 36

    def test_cycles_divide_over_cores(self, cfg):
        op = GEMMOp("x", m=24, k=12, n=48)  # 2*1*4 = 8 tiles, 8 cores
        assert gemm_cycles(cfg, op) == 1

    def test_cycles_round_up(self, cfg):
        op = GEMMOp("x", m=24, k=12, n=54)  # 2*1*5 = 10 tiles
        assert gemm_cycles(cfg, op) == 2

    def test_workload_cycles_sum(self, cfg):
        ops = [GEMMOp("a", 12, 12, 12), GEMMOp("b", 12, 12, 12)]
        assert workload_cycles(cfg, ops) == 2


class TestDigitalAccumulationCycles:
    """Contraction sharding exposes the adder-tree drain (Sec. IV)."""

    def test_unsplit_contraction_costs_nothing(self):
        assert accumulation_cycles(GEMMOp("x", 12, 12, 12)) == 0
        assert accumulation_cycles(GEMMOp("x", 12, 12, 12, k_splits=1)) == 0

    @pytest.mark.parametrize(
        "k_splits,expected", [(2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4)]
    )
    def test_tree_depth(self, k_splits, expected):
        op = GEMMOp("x", 12, 12, 12, k_splits=k_splits)
        assert accumulation_cycles(op) == expected

    def test_gemm_cycles_include_the_drain(self):
        cfg = lt_base()
        base = GEMMOp("x", 24, 12, 48)
        split = GEMMOp("x", 24, 12, 48, k_splits=4)
        assert gemm_cycles(cfg, split) == gemm_cycles(cfg, base) + 2

    def test_contraction_trace_latency_exceeds_pure_tile_share(self):
        """The per-core K-slab trace pays fewer compute cycles than the
        whole trace but always pays the accumulation drain on top."""
        cfg = lt_base()
        whole = gemm_trace(deit_tiny())
        per_core = gemm_trace(deit_tiny(), num_cores=4, shard_axis="contraction")
        drain = sum(accumulation_cycles(op) for op in per_core)
        assert drain > 0
        assert workload_cycles(cfg, per_core) < workload_cycles(cfg, whole)
        pure_tiles = sum(
            gemm_cycles(cfg, op) - accumulation_cycles(op) for op in per_core
        )
        assert workload_cycles(cfg, per_core) == pure_tiles + drain


class TestTableVLatency:
    """LT-B latency on DeiT-T/B reproduces Table V essentially exactly."""

    @pytest.fixture
    def cfg(self):
        return lt_base(4)

    def test_deit_tiny_mha(self, cfg):
        mha = filter_module(gemm_trace(deit_tiny()), MODULE_ATTENTION)
        assert workload_latency(cfg, mha) / MS == pytest.approx(3.12e-3, rel=0.02)

    def test_deit_tiny_ffn(self, cfg):
        ffn = filter_module(gemm_trace(deit_tiny()), MODULE_FFN)
        assert workload_latency(cfg, ffn) / MS == pytest.approx(1.04e-2, rel=0.02)

    def test_deit_tiny_all(self, cfg):
        trace = gemm_trace(deit_tiny())
        assert workload_latency(cfg, trace) / MS == pytest.approx(1.94e-2, rel=0.03)

    def test_deit_base_mha(self, cfg):
        mha = filter_module(gemm_trace(deit_base()), MODULE_ATTENTION)
        assert workload_latency(cfg, mha) / MS == pytest.approx(1.25e-2, rel=0.02)

    def test_deit_base_all(self, cfg):
        trace = gemm_trace(deit_base())
        assert workload_latency(cfg, trace) / MS == pytest.approx(2.65e-1, rel=0.03)

    def test_latency_precision_independent(self):
        """Table V: LT-B latency identical at 4-bit and 8-bit."""
        trace = gemm_trace(deit_tiny())
        assert workload_latency(lt_base(4), trace) == workload_latency(
            lt_base(8), trace
        )


class TestThroughput:
    def test_effective_below_peak(self):
        cfg = lt_base()
        trace = gemm_trace(deit_tiny())
        assert effective_throughput_ops(cfg, trace) < cfg.peak_ops

    def test_perfectly_tiled_hits_peak(self):
        cfg = lt_base()
        op = GEMMOp("fit", m=12 * 8, k=12, n=12)  # exactly 8 tiles
        assert effective_throughput_ops(cfg, [op]) == pytest.approx(cfg.peak_ops)
