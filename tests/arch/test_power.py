"""Tests for the power model: Fig. 8 breakdowns and Fig. 9 scaling."""

import pytest

from repro.arch import (
    laser_power,
    lt_base,
    lt_large,
    power_breakdown,
    single_core,
    single_core_power_breakdown,
)


class TestFig8Totals:
    def test_lt_base_4bit(self):
        """Paper: 14.75 W."""
        assert power_breakdown(lt_base(4)).total == pytest.approx(14.75, rel=0.05)

    def test_lt_base_8bit(self):
        """Paper: 50.94 W."""
        assert power_breakdown(lt_base(8)).total == pytest.approx(50.94, rel=0.08)

    def test_lt_large_4bit(self):
        """Paper: 28.06 W."""
        assert power_breakdown(lt_large(4)).total == pytest.approx(28.06, rel=0.05)

    def test_lt_large_8bit(self):
        """Paper: 95.92 W."""
        assert power_breakdown(lt_large(8)).total == pytest.approx(95.92, rel=0.08)

    def test_8bit_more_than_3x_4bit(self):
        """Paper: 'the 8-bit LT-B consumes more than three times the
        power of the 4-bit one'."""
        ratio = power_breakdown(lt_base(8)).total / power_breakdown(lt_base(4)).total
        assert ratio > 3.0


class TestFig8Breakdown:
    def test_8bit_dac_over_half(self):
        """Paper: high-bit DACs account for over 50 % of 8-bit power."""
        breakdown = power_breakdown(lt_base(8))
        assert breakdown.fraction("dac") > 0.45

    def test_4bit_encoding_dominates(self):
        """Operand encoding (DAC + modulation) is the dominant 4-bit cost."""
        breakdown = power_breakdown(lt_base(4))
        encoding = breakdown.by_category["dac"] + breakdown.by_category["modulation"]
        assert encoding / breakdown.total > 0.35

    def test_laser_power_4bit(self):
        """Paper: 0.77 W laser at 4-bit."""
        assert laser_power(lt_base(4)) == pytest.approx(0.77, rel=0.25)

    def test_laser_power_8bit(self):
        """Paper: 12.3 W laser at 8-bit (16x the 4-bit value)."""
        assert laser_power(lt_base(8)) == pytest.approx(12.3, rel=0.25)
        assert laser_power(lt_base(8)) == pytest.approx(
            16 * laser_power(lt_base(4)), rel=1e-9
        )

    def test_all_categories_positive(self):
        assert all(v > 0 for v in power_breakdown(lt_base()).by_category.values())


class TestFig9PowerScaling:
    """Single 4-bit core power vs size (paper: 1.1 W at 8 -> 17 W at 32)."""

    def test_core_size_8(self):
        total = single_core_power_breakdown(single_core(8)).total
        assert total == pytest.approx(1.1, rel=0.20)

    def test_core_size_12(self):
        total = single_core_power_breakdown(single_core(12)).total
        assert total == pytest.approx(2.4, rel=0.15)

    def test_core_size_32(self):
        total = single_core_power_breakdown(single_core(32)).total
        assert total == pytest.approx(17.0, rel=0.12)

    def test_monotone(self):
        powers = [
            single_core_power_breakdown(single_core(n)).total
            for n in (8, 12, 16, 24, 32)
        ]
        assert powers == sorted(powers)

    def test_modulation_and_converters_take_lions_share(self):
        """Paper: 'modulation, ADC, and DAC take the lion's share'."""
        breakdown = single_core_power_breakdown(single_core(16))
        share = (
            breakdown.by_category["modulation"]
            + breakdown.by_category["dac"]
            + breakdown.by_category["adc"]
        ) / breakdown.total
        assert share > 0.4

    def test_excludes_memory_and_digital(self):
        categories = single_core_power_breakdown(single_core(8)).by_category
        assert set(categories) == {"dac", "adc", "modulation", "detection", "laser"}
