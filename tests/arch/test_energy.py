"""Tests for the Eq. 11 energy model and the Table V energy numbers."""

import pytest

from repro.arch import (
    CAT_ADC,
    CAT_DATA_MOVEMENT,
    CAT_OP1_DAC,
    CAT_OP2_DAC,
    CAT_OP2_MOD,
    EnergyReport,
    LTEnergyModel,
    lt_base,
    lt_broadcast_base,
    lt_crossbar_base,
)
from repro.units import MJ
from repro.workloads import (
    MODULE_ATTENTION,
    MODULE_FFN,
    GEMMOp,
    deit_base,
    deit_tiny,
    filter_module,
    gemm_trace,
)


class TestEnergyReport:
    def test_add_and_total(self):
        report = EnergyReport()
        report.add(CAT_ADC, 1.0)
        report.add(CAT_ADC, 0.5)
        assert report.by_category[CAT_ADC] == pytest.approx(1.5)
        assert report.total == pytest.approx(1.5)

    def test_merge(self):
        a = EnergyReport()
        a.add(CAT_ADC, 1.0)
        b = EnergyReport()
        b.add(CAT_OP1_DAC, 2.0)
        merged = a + b
        assert merged.total == pytest.approx(3.0)

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            EnergyReport().add("mystery", 1.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            EnergyReport().add(CAT_ADC, -1.0)

    def test_encoding_aggregate(self):
        report = EnergyReport()
        report.add(CAT_OP1_DAC, 1.0)
        report.add(CAT_OP2_MOD, 2.0)
        report.add(CAT_ADC, 10.0)
        assert report.encoding == pytest.approx(3.0)

    def test_normalized_to(self):
        report = EnergyReport()
        report.add(CAT_ADC, 2.0)
        normalized = report.normalized_to(4.0)
        assert normalized[CAT_ADC] == pytest.approx(0.5)
        with pytest.raises(ValueError):
            report.normalized_to(0.0)


class TestEncodingCounts:
    def test_shared_counts_follow_eq6(self):
        model = LTEnergyModel(lt_crossbar_base())
        op = GEMMOp("t", m=12, k=12, n=12, module=MODULE_ATTENTION, dynamic=True)
        op1, op2 = model.encoding_counts(op)
        assert op1 == 144 and op2 == 144  # Nh*Nl + Nl*Nv for one tile

    def test_broadcast_only_topology_blows_up_op1(self):
        model = LTEnergyModel(lt_broadcast_base())
        op = GEMMOp("t", m=12, k=12, n=12, module=MODULE_ATTENTION, dynamic=True)
        op1, op2 = model.encoding_counts(op)
        assert op1 == 144 * 12  # unshared: one copy per DDot column
        assert op2 == 144

    def test_inter_core_broadcast_divides_op2(self):
        with_bc = LTEnergyModel(lt_base())
        without = LTEnergyModel(lt_crossbar_base())
        op = GEMMOp("big", m=480, k=12, n=12, module=MODULE_FFN)
        _, op2_with = with_bc.encoding_counts(op)
        _, op2_without = without.encoding_counts(op)
        assert op2_without / op2_with == pytest.approx(4.0)  # Nt = 4

    def test_broadcast_capped_by_row_tiles(self):
        """A GEMM with a single M1 row-block cannot share across tiles."""
        model = LTEnergyModel(lt_base())
        op = GEMMOp("small", m=12, k=12, n=12, module=MODULE_FFN)
        _, op2 = model.encoding_counts(op)
        assert op2 == 144  # sharing factor min(Nt, 1) = 1

    def test_weight_operand_is_op1_for_ffn_shapes(self):
        """On the paper's linear layers (wide output dims), the weight
        matrix carries more tile blocks, becomes the spatially-dealt M1
        operand (op1), and the activations are broadcast (op2)."""
        model = LTEnergyModel(lt_base())
        op = GEMMOp("ffn1", m=197, k=192, n=768, module=MODULE_FFN)
        op1, op2 = model.encoding_counts(op)
        # op2 (activations) is shared Nt-fold via the optical broadcast.
        assert op1 == pytest.approx(4 * op2)


class TestTableVEnergy:
    """LT-B 4-bit energy on DeiT matches Table V within model tolerance."""

    @pytest.fixture
    def model(self):
        return LTEnergyModel(lt_base(4))

    def test_deit_tiny_all(self, model):
        trace = gemm_trace(deit_tiny())
        energy = model.workload_energy(trace).total / MJ
        assert energy == pytest.approx(0.38, rel=0.25)

    def test_deit_tiny_mha(self, model):
        mha = filter_module(gemm_trace(deit_tiny()), MODULE_ATTENTION)
        energy = model.workload_energy(mha).total / MJ
        assert energy == pytest.approx(0.04, rel=0.45)

    def test_deit_base_all(self, model):
        trace = gemm_trace(deit_base())
        energy = model.workload_energy(trace).total / MJ
        assert energy == pytest.approx(5.44, rel=0.25)

    def test_8bit_costs_more(self):
        trace = gemm_trace(deit_tiny())
        e4 = LTEnergyModel(lt_base(4)).workload_energy(trace).total
        e8 = LTEnergyModel(lt_base(8)).workload_energy(trace).total
        assert 2.0 < e8 / e4 < 6.0  # paper: 1.21/0.38 = 3.2x

    def test_edp(self, model):
        trace = gemm_trace(deit_tiny())
        edp = model.workload_edp(trace)
        assert edp == pytest.approx(0.38e-3 * 1.94e-5, rel=0.4)


class TestArchOptimizationEffects:
    """Fig. 12: each optimization must reduce the right category."""

    def test_arch_opts_reduce_total(self):
        trace = gemm_trace(deit_tiny())
        full = LTEnergyModel(lt_base(4)).workload_energy(trace).total
        crossbar_only = LTEnergyModel(lt_crossbar_base(4)).workload_energy(trace).total
        assert crossbar_only > full
        # Paper: LT-crossbar-B costs ~1.8x LT-B on DeiT-T.
        assert crossbar_only / full == pytest.approx(1.8, rel=0.35)

    def test_broadcast_variant_worst(self):
        trace = gemm_trace(deit_tiny())
        broadcast = LTEnergyModel(lt_broadcast_base(4)).workload_energy(trace).total
        crossbar = LTEnergyModel(lt_crossbar_base(4)).workload_energy(trace).total
        assert broadcast > crossbar

    def test_temporal_accumulation_cuts_adc(self):
        trace = gemm_trace(deit_tiny())
        with_accum = LTEnergyModel(lt_base(4)).workload_energy(trace)
        without = LTEnergyModel(lt_crossbar_base(4)).workload_energy(trace)
        # ADC events drop by Nc * depth = 6x.
        assert without.by_category[CAT_ADC] / with_accum.by_category[CAT_ADC] == (
            pytest.approx(6.0, rel=0.05)
        )

    def test_inter_core_broadcast_cuts_op2(self):
        trace = gemm_trace(deit_tiny())
        with_bc = LTEnergyModel(lt_base(4)).workload_energy(trace)
        without = LTEnergyModel(lt_crossbar_base(4)).workload_energy(trace)
        assert without.by_category[CAT_OP2_DAC] > 2.5 * (
            with_bc.by_category[CAT_OP2_DAC]
        )

    def test_data_movement_present_but_minor(self):
        trace = gemm_trace(deit_tiny())
        report = LTEnergyModel(lt_base(4)).workload_energy(trace)
        share = report.by_category[CAT_DATA_MOVEMENT] / report.total
        assert 0.0 < share < 0.45


class TestCrossCoreAccumulationEnergy:
    """k_splits > 1 charges the digital partial-sum merge (Sec. IV)."""

    def test_accumulation_adds_property(self):
        assert GEMMOp("x", 4, 12, 5, count=3).accumulation_adds == 0
        op = GEMMOp("x", 4, 12, 5, count=3, k_splits=4)
        assert op.accumulation_adds == 3 * 4 * 5 * 3

    def test_k_splits_validated(self):
        with pytest.raises(ValueError):
            GEMMOp("x", 4, 12, 5, k_splits=0)

    def test_split_op_costs_extra_data_movement(self):
        model = LTEnergyModel(lt_base(4))
        base = GEMMOp("x", 48, 36, 48)
        split = GEMMOp("x", 48, 36, 48, k_splits=4)
        base_dm = model.gemm_energy(base).by_category[CAT_DATA_MOVEMENT]
        split_dm = model.gemm_energy(split).by_category[CAT_DATA_MOVEMENT]
        assert split_dm > base_dm
        # Partial-sum traffic grows with the number of merged slabs.
        more = GEMMOp("x", 48, 36, 48, k_splits=8)
        assert model.gemm_energy(more).by_category[CAT_DATA_MOVEMENT] > split_dm

    def test_contraction_trace_charges_the_merge(self):
        """The per-core contraction trace pays less total energy than
        the whole trace (smaller K slab) but its data movement includes
        the cross-core accumulation term."""
        model = LTEnergyModel(lt_base(4))
        per_core = gemm_trace(deit_tiny(), num_cores=4, shard_axis="contraction")
        stripped = [
            GEMMOp(op.name, op.m, op.k, op.n, op.module, op.dynamic, op.count)
            for op in per_core
        ]
        with_merge = model.workload_energy(per_core)
        without_merge = model.workload_energy(stripped)
        assert (
            with_merge.by_category[CAT_DATA_MOVEMENT]
            > without_merge.by_category[CAT_DATA_MOVEMENT]
        )
