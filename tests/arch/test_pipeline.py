"""Tests for the digital-unit model and the pipelined execution study."""

import pytest

from repro.arch import (
    DigitalUnitModel,
    NonGEMMCounts,
    layer_nongemm_counts,
    lt_base,
    lt_large,
    pipeline_report,
    workload_latency,
)
from repro.workloads import bert_base, deit_base, deit_tiny, gemm_trace


class TestNonGEMMCounts:
    def test_softmax_quadratic_in_sequence(self):
        tiny = layer_nongemm_counts(deit_tiny())
        assert tiny.softmax_elements == 3 * 197 * 197

    def test_gelu_covers_ffn_hidden(self):
        tiny = layer_nongemm_counts(deit_tiny())
        assert tiny.gelu_elements == 197 * 768

    def test_layernorm_and_residual(self):
        tiny = layer_nongemm_counts(deit_tiny())
        assert tiny.layernorm_elements == 2 * 197 * 192
        assert tiny.residual_elements == tiny.layernorm_elements

    def test_total(self):
        counts = NonGEMMCounts(10, 20, 30, 40)
        assert counts.total == 100


class TestDigitalUnitModel:
    def test_layer_time_positive(self):
        model = DigitalUnitModel()
        assert model.layer_time(deit_tiny(), lt_base()) > 0

    def test_more_tiles_faster(self):
        model = DigitalUnitModel()
        assert model.layer_time(deit_tiny(), lt_large()) < model.layer_time(
            deit_tiny(), lt_base()
        )

    def test_workload_scales_with_depth(self):
        model = DigitalUnitModel()
        assert model.workload_time(deit_tiny(), lt_base()) == pytest.approx(
            12 * model.layer_time(deit_tiny(), lt_base())
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DigitalUnitModel(clock=0.0)
        with pytest.raises(ValueError):
            DigitalUnitModel(lanes_per_tile=0)


class TestPipelineReport:
    def test_pipelining_always_helps(self):
        for model in (deit_tiny(), deit_base(), bert_base()):
            report = pipeline_report(model, lt_base(4))
            assert report.pipelined_latency < report.sequential_latency
            assert report.speedup > 1.0

    def test_pipelined_bounded_by_stage_sums(self):
        report = pipeline_report(deit_tiny(), lt_base(4))
        assert report.pipelined_latency >= max(
            report.gemm_time, report.digital_time
        )
        assert report.pipelined_latency <= report.sequential_latency

    def test_default_provisioning_hides_digital_work(self):
        """The Table V latencies assume non-GEMM work is overlapped; the
        default digital provisioning must make that assumption true."""
        for model in (deit_tiny(), deit_base(), bert_base()):
            report = pipeline_report(model, lt_base(4))
            assert report.digital_time < report.gemm_time

    def test_gemm_time_matches_latency_model(self):
        """The per-layer decomposition must reproduce the latency of the
        encoder-layer GEMMs (embedding and head excluded)."""
        from repro.workloads import (
            MODULE_ATTENTION,
            MODULE_FFN,
            MODULE_PROJECTION,
            filter_module,
        )

        model = deit_tiny()
        report = pipeline_report(model, lt_base(4))
        layer_ops = filter_module(
            gemm_trace(model), MODULE_ATTENTION, MODULE_PROJECTION, MODULE_FFN
        )
        trace_time = workload_latency(lt_base(4), layer_ops)
        assert report.gemm_time == pytest.approx(trace_time, rel=0.01)

    def test_underprovisioned_digital_becomes_bottleneck(self):
        weak = DigitalUnitModel(lanes_per_tile=8)
        report = pipeline_report(deit_tiny(), lt_base(4), digital=weak)
        assert report.digital_time > report.gemm_time
        assert not report.digital_hidden
