"""Property-based invariants of the performance models.

These pin down structural properties that must hold for *any* workload,
not just the paper's: energy additivity, monotonicity in problem size,
and that every optimization knob only ever helps.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    ArchOptimizations,
    LTEnergyModel,
    gemm_cycles,
    gemm_tile_count,
    lt_base,
    lt_crossbar_base,
    workload_latency,
)
from repro.workloads import MODULE_ATTENTION, MODULE_FFN, GEMMOp

dims = st.integers(min_value=1, max_value=512)
counts = st.integers(min_value=1, max_value=24)


def make_op(m, k, n, count=1, dynamic=False):
    module = MODULE_ATTENTION if dynamic else MODULE_FFN
    return GEMMOp("op", m, k, n, module=module, dynamic=dynamic, count=count)


class TestCycleInvariants:
    @settings(max_examples=60)
    @given(m=dims, k=dims, n=dims, count=counts)
    def test_tiles_scale_linearly_with_count(self, m, k, n, count):
        config = lt_base()
        single = gemm_tile_count(config, make_op(m, k, n, 1))
        repeated = gemm_tile_count(config, make_op(m, k, n, count))
        assert repeated == count * single

    @settings(max_examples=60)
    @given(m=dims, k=dims, n=dims)
    def test_cycles_cover_all_macs(self, m, k, n):
        """Provisioned MACs can never be fewer than useful MACs."""
        config = lt_base()
        op = make_op(m, k, n)
        provisioned = (
            gemm_cycles(config, op)
            * config.n_cores
            * config.geometry.macs_per_cycle
        )
        assert provisioned >= op.macs

    @settings(max_examples=60)
    @given(m=dims, k=dims, n=dims)
    def test_latency_monotone_in_each_dim(self, m, k, n):
        config = lt_base()
        base = workload_latency(config, [make_op(m, k, n)])
        assert workload_latency(config, [make_op(m + 13, k, n)]) >= base
        assert workload_latency(config, [make_op(m, k + 13, n)]) >= base
        assert workload_latency(config, [make_op(m, k, n + 13)]) >= base


class TestEnergyInvariants:
    @settings(max_examples=40, deadline=None)
    @given(m=dims, k=dims, n=dims, dynamic=st.booleans())
    def test_energy_additive_over_trace(self, m, k, n, dynamic):
        model = LTEnergyModel(lt_base())
        op = make_op(m, k, n, dynamic=dynamic)
        single = model.gemm_energy(op).total
        double = model.workload_energy([op, op]).total
        assert double == pytest.approx(2 * single, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(m=dims, k=dims, n=dims, dynamic=st.booleans())
    def test_all_categories_nonnegative(self, m, k, n, dynamic):
        model = LTEnergyModel(lt_base())
        report = model.gemm_energy(make_op(m, k, n, dynamic=dynamic))
        assert all(v >= 0 for v in report.by_category.values())
        assert report.total > 0

    @settings(max_examples=40, deadline=None)
    @given(m=dims, k=dims, n=dims, dynamic=st.booleans())
    def test_arch_optimizations_never_hurt(self, m, k, n, dynamic):
        """The full LT-B feature set is at most as expensive as the
        crossbar-only variant on every GEMM shape."""
        op = make_op(m, k, n, dynamic=dynamic)
        full = LTEnergyModel(lt_base()).gemm_energy(op).total
        stripped = LTEnergyModel(lt_crossbar_base()).gemm_energy(op).total
        assert full <= stripped * (1 + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(m=dims, k=dims, n=dims)
    def test_8bit_costs_more_than_4bit(self, m, k, n):
        op = make_op(m, k, n)
        e4 = LTEnergyModel(lt_base(4)).gemm_energy(op).total
        e8 = LTEnergyModel(lt_base(8)).gemm_energy(op).total
        assert e8 > e4

    @settings(max_examples=40, deadline=None)
    @given(
        m=dims,
        k=dims,
        n=dims,
        depth=st.integers(min_value=1, max_value=8),
    )
    def test_deeper_accumulation_never_raises_adc_energy(self, m, k, n, depth):
        op = make_op(m, k, n)
        shallow = ArchOptimizations(temporal_accumulation_depth=depth)
        deep = ArchOptimizations(temporal_accumulation_depth=depth + 1)
        e_shallow = (
            LTEnergyModel(lt_base().with_optimizations(shallow))
            .gemm_energy(op)
            .by_category["adc"]
        )
        e_deep = (
            LTEnergyModel(lt_base().with_optimizations(deep))
            .gemm_energy(op)
            .by_category["adc"]
        )
        assert e_deep <= e_shallow * (1 + 1e-9)


class TestEncodingInvariants:
    @settings(max_examples=60)
    @given(m=dims, k=dims, n=dims, dynamic=st.booleans())
    def test_encodings_cover_operand_tiles(self, m, k, n, dynamic):
        """Every tile-MM encodes at least Nh*Nl + Nl*Nv/Nt scalars."""
        model = LTEnergyModel(lt_base())
        op = make_op(m, k, n, dynamic=dynamic)
        op1, op2 = model.encoding_counts(op)
        tiles = gemm_tile_count(lt_base(), op)
        geometry = lt_base().geometry
        per_tile_floor = geometry.n_h * geometry.n_lambda / lt_base().n_tiles
        assert op1 + op2 >= tiles * per_tile_floor

    @settings(max_examples=60)
    @given(m=dims, k=dims, n=dims)
    def test_broadcast_sharing_bounded_by_tiles(self, m, k, n):
        """Inter-core sharing can cut op2 by at most Nt."""
        op = make_op(m, k, n)
        _, op2_shared = LTEnergyModel(lt_base()).encoding_counts(op)
        _, op2_plain = LTEnergyModel(lt_crossbar_base()).encoding_counts(op)
        ratio = op2_plain / op2_shared
        assert 1.0 - 1e-9 <= ratio <= lt_base().n_tiles + 1e-9
