"""Tests for the SRAM/HBM memory models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch import MemorySystem, SRAMMacro, HBMModel, lt_base, lt_large
from repro.units import MM2, PJ


class TestSRAMMacro:
    def test_bank_count(self):
        assert SRAMMacro(2 * 1024 * 1024).n_banks == 64
        assert SRAMMacro(32 * 1024).n_banks == 1
        assert SRAMMacro(33 * 1024).n_banks == 2

    def test_zero_size(self):
        macro = SRAMMacro(0)
        assert macro.area == 0.0
        assert macro.leakage_power == 0.0
        assert macro.access_energy(0) == 0.0

    def test_area_grows_with_size(self):
        assert SRAMMacro(64 * 1024).area > SRAMMacro(32 * 1024).area

    def test_2mb_area_plausible(self):
        """The banked 2 MB global SRAM lands near the paper's memory share."""
        area = SRAMMacro(2 * 1024 * 1024).area
        assert 8 * MM2 < area < 16 * MM2

    def test_leakage_scales_linearly(self):
        assert SRAMMacro(2048).leakage_power == pytest.approx(
            2 * SRAMMacro(1024).leakage_power
        )

    def test_access_energy_per_byte_band(self):
        """32 KB subarray access energy is a few hundred fJ/byte at 14 nm."""
        energy = SRAMMacro(32 * 1024).access_energy_per_byte
        assert 0.1 * PJ < energy < 1.0 * PJ

    def test_larger_banks_cost_more_per_byte(self):
        small = SRAMMacro(4 * 1024, bank_bytes=4 * 1024)
        large = SRAMMacro(64 * 1024, bank_bytes=64 * 1024)
        assert large.access_energy_per_byte > small.access_energy_per_byte

    def test_access_energy_linear_in_bytes(self):
        macro = SRAMMacro(32 * 1024)
        assert macro.access_energy(100) == pytest.approx(
            100 * macro.access_energy_per_byte
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SRAMMacro(-1)
        with pytest.raises(ValueError):
            SRAMMacro(1024).access_energy(-5)

    @given(size=st.integers(min_value=1, max_value=int(1e8)))
    def test_area_positive_and_monotone_floor(self, size):
        macro = SRAMMacro(size)
        assert macro.area > 0
        assert macro.n_banks >= 1


class TestHBM:
    def test_defaults(self):
        hbm = HBMModel()
        assert hbm.bandwidth == pytest.approx(1e12)

    def test_transfer_time(self):
        hbm = HBMModel()
        assert hbm.transfer_time(1e12) == pytest.approx(1.0)

    def test_access_energy(self):
        hbm = HBMModel()
        # ~3.9 pJ/bit -> ~31 pJ/byte
        assert hbm.access_energy(1) == pytest.approx(31.2 * PJ)

    def test_validation(self):
        with pytest.raises(ValueError):
            HBMModel().access_energy(-1)
        with pytest.raises(ValueError):
            HBMModel().transfer_time(-1)


class TestMemorySystem:
    def test_lt_base_total_area_band(self):
        """Fig. 7: memory is ~25 % of the 60.3 mm^2 LT-B chip."""
        system = MemorySystem(lt_base())
        assert 12 * MM2 < system.total_area < 18 * MM2

    def test_lt_large_roughly_doubles(self):
        base = MemorySystem(lt_base()).total_area
        large = MemorySystem(lt_large()).total_area
        assert 1.7 < large / base < 2.3

    def test_leakage_small_vs_chip_power(self):
        """Memory static power is in the 'others' sliver of Fig. 8."""
        assert MemorySystem(lt_base()).total_leakage < 0.2

    def test_energy_rate_accessors_positive(self):
        system = MemorySystem(lt_base())
        assert system.operand_feed_energy_per_byte > 0
        assert system.staging_energy_per_byte > 0
        assert system.output_store_energy_per_byte > 0

    def test_staging_costs_more_than_feeding(self):
        """Global+tile staging moves through bigger arrays than the
        core-local DAC feed buffers."""
        system = MemorySystem(lt_base())
        assert system.staging_energy_per_byte > system.operand_feed_energy_per_byte
