"""Tests for the heterogeneous DPTC core-shape search (Sec. VI-A)."""

import pytest

from repro.arch.heterogeneous import (
    candidate_shapes,
    evaluate_shape,
    mvm_engine,
    search_core_shape,
)
from repro.core import DPTCGeometry
from repro.workloads import MODULE_ATTENTION, MODULE_FFN, GEMMOp


class TestCandidateShapes:
    def test_within_budget(self):
        for geometry in candidate_shapes(1728):
            assert geometry.macs_per_cycle <= 1728

    def test_not_wastefully_small(self):
        for geometry in candidate_shapes(1728):
            assert geometry.macs_per_cycle >= 864

    def test_default_core_is_a_candidate(self):
        shapes = {
            (g.n_h, g.n_lambda, g.n_v) for g in candidate_shapes(1728)
        }
        assert (12, 12, 12) in shapes

    def test_mvm_shapes_included(self):
        shapes = {
            (g.n_h, g.n_lambda, g.n_v) for g in candidate_shapes(1728)
        }
        assert any(shape[0] == 1 for shape in shapes)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(candidate_shapes(0))


class TestEvaluateShape:
    def test_perfect_fit(self):
        geometry = DPTCGeometry(12, 12, 12)
        op = GEMMOp("fit", 12, 12, 12, module=MODULE_FFN)
        evaluation = evaluate_shape(geometry, [op])
        assert evaluation.cycles == 1
        assert evaluation.utilization == pytest.approx(1.0)

    def test_row_vector_on_square_core_wastes(self):
        """A 1 x k x n workload on a 12-row core uses 1/12 of the MACs."""
        geometry = DPTCGeometry(12, 12, 12)
        op = GEMMOp("row", 1, 12, 12, module=MODULE_ATTENTION, dynamic=True)
        evaluation = evaluate_shape(geometry, [op])
        assert evaluation.utilization == pytest.approx(1 / 12)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            evaluate_shape(DPTCGeometry(), [])

    def test_shape_property(self):
        evaluation = evaluate_shape(
            DPTCGeometry(n_h=4, n_v=8, n_lambda=6),
            [GEMMOp("x", 4, 6, 8, module=MODULE_FFN)],
        )
        assert evaluation.shape == (4, 6, 8)  # (Nh, Nlambda, Nv)


class TestSearch:
    def test_square_workload_prefers_balanced_core(self):
        ops = [GEMMOp("sq", 96, 96, 96, module=MODULE_FFN)]
        best = search_core_shape(ops, mac_budget=1728)
        n_h, n_lambda, n_v = best.shape
        # No dimension collapses to a vector engine for square GEMMs.
        assert min(n_h, n_lambda, n_v) >= 8

    def test_vector_workload_prefers_flat_core(self):
        """The paper's example: non-block-wise sparse AV rows are
        vector-matrix products, best served by an Nh = 1 engine."""
        ops = [
            GEMMOp(
                "vm", 1, 48, 192, module=MODULE_ATTENTION, dynamic=True, count=64
            )
        ]
        best = search_core_shape(ops, mac_budget=1728)
        assert best.shape[0] <= 2
        balanced = evaluate_shape(DPTCGeometry(12, 12, 12), ops)
        assert best.cycles < balanced.cycles

    def test_search_beats_or_matches_default_everywhere(self):
        workloads = [
            [GEMMOp("a", 197, 64, 197, module=MODULE_ATTENTION, dynamic=True)],
            [GEMMOp("b", 197, 192, 768, module=MODULE_FFN)],
            [GEMMOp("c", 1, 768, 768, module=MODULE_FFN)],
        ]
        for ops in workloads:
            best = search_core_shape(ops, mac_budget=1728)
            default = evaluate_shape(DPTCGeometry(12, 12, 12), ops)
            assert best.cycles <= default.cycles

    def test_budget_too_small_raises(self):
        with pytest.raises(ValueError):
            search_core_shape(
                [GEMMOp("x", 4, 4, 4, module=MODULE_FFN)], mac_budget=1728,
                min_dim=63, max_dim=64,
            )


class TestMVMEngine:
    def test_single_row(self):
        engine = mvm_engine(mac_budget=1728, contraction=48)
        assert engine.n_h == 1
        assert engine.macs_per_cycle <= 1728

    def test_serves_decode_shaped_ops_well(self):
        engine = mvm_engine(mac_budget=1728, contraction=48)
        op = GEMMOp("dec", 1, 48, engine.n_v, module=MODULE_ATTENTION, dynamic=True)
        evaluation = evaluate_shape(engine, [op])
        assert evaluation.utilization == pytest.approx(1.0)
