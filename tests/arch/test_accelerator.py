"""Tests for the top-level accelerator facade."""

import numpy as np
import pytest

from repro.arch import LighteningTransformer, lt_base, lt_large
from repro.core import NoiseModel
from repro.units import MJ, MS
from repro.workloads import GEMMOp, deit_tiny, gemm_trace


class TestFacade:
    @pytest.fixture
    def accelerator(self):
        return LighteningTransformer(lt_base(4))

    def test_defaults_to_lt_base(self):
        assert LighteningTransformer().config.name == "LT-B"

    def test_peak_tops(self, accelerator):
        assert accelerator.peak_tops == pytest.approx(138.24)

    def test_area_and_power_accessible(self, accelerator):
        assert accelerator.area().total_mm2 == pytest.approx(60.3, rel=0.05)
        assert accelerator.power().total == pytest.approx(14.75, rel=0.05)

    def test_run_transformer_config(self, accelerator):
        result = accelerator.run(deit_tiny())
        assert result.workload == "deit-tiny"
        assert result.latency / MS == pytest.approx(1.94e-2, rel=0.03)
        assert result.energy_joules / MJ == pytest.approx(0.38, rel=0.3)

    def test_run_gemm_trace(self, accelerator):
        result = accelerator.run(gemm_trace(deit_tiny()))
        assert result.cycles > 0
        assert result.fps == pytest.approx(1.0 / result.latency)

    def test_run_single_op(self, accelerator):
        result = accelerator.run([GEMMOp("probe", 12, 12, 12)])
        assert result.workload == "probe"
        assert result.cycles == 1

    def test_edp_consistency(self, accelerator):
        result = accelerator.run(deit_tiny())
        assert result.edp == pytest.approx(result.energy_joules * result.latency)

    def test_lt_large_faster(self):
        base = LighteningTransformer(lt_base()).run(deit_tiny())
        large = LighteningTransformer(lt_large()).run(deit_tiny())
        assert large.latency < base.latency


class TestFunctionalExecution:
    def test_ideal_matmul_exact(self):
        acc = LighteningTransformer(lt_base(), noise=NoiseModel.ideal())
        rng = np.random.default_rng(0)
        a = rng.normal(size=(20, 30))
        b = rng.normal(size=(30, 10))
        assert np.allclose(acc.matmul(a, b), a @ b)

    def test_noisy_matmul_close(self):
        acc = LighteningTransformer(lt_base(), noise=NoiseModel.paper_default())
        rng = np.random.default_rng(1)
        a = rng.normal(size=(24, 36))
        b = rng.normal(size=(36, 24))
        out = acc.matmul(a, b, rng=rng)
        rel = np.linalg.norm(out - a @ b) / np.linalg.norm(a @ b)
        assert 0.0 < rel < 0.2

    def test_dataflow_path_ideal(self):
        acc = LighteningTransformer(lt_base())
        rng = np.random.default_rng(2)
        a = rng.normal(size=(13, 25))
        b = rng.normal(size=(25, 17))
        assert np.allclose(acc.matmul_through_dataflow(a, b), a @ b)

    def test_dataflow_path_noisy(self):
        acc = LighteningTransformer(lt_base(), noise=NoiseModel.paper_default())
        rng = np.random.default_rng(3)
        a = rng.normal(size=(24, 24))
        b = rng.normal(size=(24, 24))
        out = acc.matmul_through_dataflow(a, b, rng=rng)
        rel = np.linalg.norm(out - a @ b) / np.linalg.norm(a @ b)
        assert 0.0 < rel < 0.4


class TestMultiCoreExecution:
    def test_full_grid_ideal_bit_exact(self):
        """Sharding over config.n_cores leaves ideal results bit-identical."""
        config = lt_base()
        single = LighteningTransformer(config)
        grid = LighteningTransformer(config, num_cores=config.n_cores)
        assert grid.num_cores == 8
        rng = np.random.default_rng(4)
        a = rng.normal(size=(12, 20, 30))
        b = rng.normal(size=(12, 30, 10))
        assert np.array_equal(grid.matmul(a, b), single.matmul(a, b))

    def test_noisy_grid_reproducible(self):
        acc = LighteningTransformer(
            lt_base(), noise=NoiseModel.paper_default(), num_cores=4
        )
        rng = np.random.default_rng(5)
        a = rng.normal(size=(6, 24, 36))
        b = rng.normal(size=(6, 36, 24))
        first = acc.matmul(a, b, rng=np.random.default_rng(13))
        second = acc.matmul(a, b, rng=np.random.default_rng(13))
        assert np.array_equal(first, second)

    def test_dataflow_path_still_works_with_grid(self):
        acc = LighteningTransformer(lt_base(), num_cores=4)
        rng = np.random.default_rng(6)
        a = rng.normal(size=(13, 25))
        b = rng.normal(size=(25, 17))
        assert np.allclose(acc.matmul_through_dataflow(a, b), a @ b)

    def test_validation(self):
        with pytest.raises(ValueError):
            LighteningTransformer(lt_base(), num_cores=0)


class TestContractionShardedExecution:
    def test_contraction_grid_ideal_bit_exact(self):
        """K-axis sharding with digital accumulation stays bit-identical
        to the single logical core on the ideal path (exact digital
        partial-sum accumulation), non-divisible split included."""
        from repro.core import ShardedDPTC

        config = lt_base()
        grid = LighteningTransformer(
            config, num_cores=config.n_cores, shard_axis="contraction"
        )
        assert isinstance(grid._dptc, ShardedDPTC)
        assert grid._dptc.shard_axis == "contraction"
        rng = np.random.default_rng(7)
        a = rng.normal(size=(5, 12, 29))  # 29 not divisible by 8 cores
        b = rng.normal(size=(5, 29, 10))
        assert np.array_equal(grid.matmul(a, b), np.matmul(a, b))

    def test_noisy_contraction_grid_reproducible(self):
        acc = LighteningTransformer(
            lt_base(),
            noise=NoiseModel.paper_default(),
            num_cores=4,
            shard_axis="contraction",
        )
        rng = np.random.default_rng(8)
        a = rng.normal(size=(4, 10, 25))
        b = rng.normal(size=(4, 25, 10))
        first = acc.matmul(a, b, rng=np.random.default_rng(17))
        second = acc.matmul(a, b, rng=np.random.default_rng(17))
        assert np.array_equal(first, second)

    def test_backend_knob_threads_through(self):
        from repro.core import ShardedDPTC

        acc = LighteningTransformer(lt_base(), num_cores=2, backend="process")
        assert isinstance(acc._dptc, ShardedDPTC)
        assert acc._dptc.backend == "process"
        # Performance models are unaffected by the functional knobs.
        assert acc.run(deit_tiny()).cycles == LighteningTransformer(
            lt_base()
        ).run(deit_tiny()).cycles

    def test_single_core_with_knobs_degenerates(self):
        """num_cores=1 + non-default knobs: sharded front-end, plain
        batched engine semantics."""
        acc = LighteningTransformer(lt_base(), shard_axis="contraction")
        rng = np.random.default_rng(9)
        a = rng.normal(size=(3, 8, 16))
        b = rng.normal(size=(3, 16, 8))
        assert np.array_equal(acc.matmul(a, b), np.matmul(a, b))

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            LighteningTransformer(lt_base(), num_cores=2, shard_axis="tile")
        with pytest.raises(ValueError):
            LighteningTransformer(lt_base(), num_cores=2, backend="mpi")

    def test_close_releases_grid_pool(self):
        acc = LighteningTransformer(
            lt_base(), noise=NoiseModel.paper_default(), num_cores=2
        )
        rng = np.random.default_rng(10)
        a = rng.normal(size=(4, 8, 16))
        b = rng.normal(size=(4, 16, 8))
        acc.matmul(a, b, rng=np.random.default_rng(0))
        assert acc._dptc._pool is not None
        acc.close()
        assert acc._dptc._pool is None
        # Single-core facade: close is a safe no-op.
        LighteningTransformer(lt_base()).close()


class TestContextManager:
    def test_with_block_returns_the_accelerator(self):
        with LighteningTransformer() as accelerator:
            assert accelerator.config.name == "LT-B"

    def test_exit_closes_the_sharded_pool(self):
        with LighteningTransformer(num_cores=2) as accelerator:
            a = np.ones((4, 2, 3))
            b = np.ones((4, 3, 2))
            assert np.array_equal(accelerator.matmul(a, b), a @ b)
        accelerator.close()  # already closed by __exit__; stays a no-op
