"""Tests for the area model: Table IV totals and Fig. 7 breakdowns."""

import pytest

from repro.arch import (
    area_breakdown,
    ddot_cell_area,
    lt_base,
    lt_large,
    single_core,
    single_core_area_breakdown,
)
from repro.units import UM2


class TestTableIVTotals:
    def test_lt_base_total(self):
        """Paper: 60.3 mm^2 for LT-B."""
        total = area_breakdown(lt_base()).total_mm2
        assert total == pytest.approx(60.3, rel=0.05)

    def test_lt_large_total(self):
        """Paper: 112.82 mm^2 for LT-L."""
        total = area_breakdown(lt_large()).total_mm2
        assert total == pytest.approx(112.82, rel=0.05)

    def test_lt_large_about_twice_base(self):
        ratio = area_breakdown(lt_large()).total / area_breakdown(lt_base()).total
        assert 1.7 < ratio < 2.1


class TestFig7Breakdown:
    @pytest.fixture
    def breakdown(self):
        return area_breakdown(lt_base())

    def test_dac_share_about_quarter(self, breakdown):
        assert breakdown.fraction("dac") == pytest.approx(0.25, abs=0.05)

    def test_memory_share_about_quarter(self, breakdown):
        assert breakdown.fraction("memory") == pytest.approx(0.25, abs=0.05)

    def test_photonic_core_share_about_fifth(self, breakdown):
        assert breakdown.fraction("photonic_core") == pytest.approx(0.20, abs=0.05)

    def test_remaining_components_under_30_percent(self, breakdown):
        rest = (
            breakdown.fraction("laser")
            + breakdown.fraction("adc")
            + breakdown.fraction("modulation")
            + breakdown.fraction("digital")
        )
        assert rest < 0.35

    def test_all_categories_positive(self, breakdown):
        assert all(v > 0 for v in breakdown.by_category.values())

    def test_as_mm2_consistent(self, breakdown):
        assert sum(breakdown.as_mm2().values()) == pytest.approx(
            breakdown.total_mm2
        )


class TestDDotCell:
    def test_cell_area_dominated_by_phase_shifter(self):
        cell = ddot_cell_area(lt_base())
        ps = lt_base().library.phase_shifter.area
        assert ps / cell > 0.9

    def test_cell_area_value(self):
        # PS 4500 + DC 12.6 + 2 PD 80 + crossing 64 ~ 4657 um^2
        assert ddot_cell_area(lt_base()) == pytest.approx(4656.6 * UM2, rel=0.01)


class TestFig9AreaScaling:
    """Single 4-bit DPTC core area vs core size (paper: 5.9 -> 49.3 mm^2)."""

    def test_core_size_32_matches_paper(self):
        total = single_core_area_breakdown(single_core(32)).total_mm2
        assert total == pytest.approx(49.3, rel=0.08)

    def test_core_size_8_in_band(self):
        total = single_core_area_breakdown(single_core(8)).total_mm2
        assert total == pytest.approx(5.9, rel=0.30)

    def test_monotone_in_core_size(self):
        sizes = [8, 12, 16, 24, 32]
        areas = [
            single_core_area_breakdown(single_core(n)).total for n in sizes
        ]
        assert areas == sorted(areas)

    def test_growth_is_superlinear(self):
        a8 = single_core_area_breakdown(single_core(8)).total
        a32 = single_core_area_breakdown(single_core(32)).total
        assert a32 / a8 > 8  # quadratic-dominated growth

    def test_excludes_memory(self):
        categories = single_core_area_breakdown(single_core(8)).by_category
        assert "memory" not in categories
        assert set(categories) == {
            "dac",
            "adc",
            "modulation",
            "photonic_core",
            "laser",
        }
