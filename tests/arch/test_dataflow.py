"""Tests for the output-stationary tiled dataflow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import OutputStationarySchedule, lt_base, os_dataflow_matmul
from repro.core import DPTC, NoiseModel


class TestSchedule:
    @pytest.fixture
    def cfg(self):
        return lt_base()

    def test_tile_grid(self, cfg):
        schedule = OutputStationarySchedule(cfg, 24, 36, 48)
        assert (schedule.row_tiles, schedule.inner_tiles, schedule.col_tiles) == (
            2,
            3,
            4,
        )
        assert schedule.total_tiles == 24

    def test_cycles_round_up_over_cores(self, cfg):
        schedule = OutputStationarySchedule(cfg, 24, 36, 48)
        assert schedule.total_cycles == 3  # 24 tiles / 8 cores

    def test_assignments_cover_all_tiles(self, cfg):
        schedule = OutputStationarySchedule(cfg, 25, 13, 30)
        seen = {
            (a.row_tile, a.inner_tile, a.col_tile) for a in schedule.assignments()
        }
        assert len(seen) == schedule.total_tiles

    def test_cores_in_range(self, cfg):
        schedule = OutputStationarySchedule(cfg, 24, 24, 24)
        assert all(0 <= a.core < cfg.n_cores for a in schedule.assignments())

    def test_contraction_sequential_per_output_block(self, cfg):
        """Output-stationarity: a core finishes one output block's
        contraction before starting the next (enables analog temporal
        accumulation)."""
        schedule = OutputStationarySchedule(cfg, 24, 48, 24)
        per_core: dict[int, list] = {}
        for a in schedule.assignments():
            per_core.setdefault(a.core, []).append(a)
        for assignments in per_core.values():
            assignments.sort(key=lambda a: a.cycle)
            previous_block = None
            inner_seen = -1
            for a in assignments:
                block = (a.row_tile, a.col_tile)
                if block != previous_block:
                    previous_block = block
                    inner_seen = -1
                assert a.inner_tile == inner_seen + 1
                inner_seen = a.inner_tile

    def test_validation(self, cfg):
        with pytest.raises(ValueError):
            OutputStationarySchedule(cfg, 0, 4, 4)


class TestExecution:
    @pytest.fixture
    def cfg(self):
        return lt_base()

    def test_exact_matmul(self, cfg):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(25, 37))
        b = rng.normal(size=(37, 29))
        assert np.allclose(os_dataflow_matmul(cfg, a, b), a @ b)

    def test_exact_with_awkward_shapes(self, cfg):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(1, 13))
        b = rng.normal(size=(13, 1))
        assert np.allclose(os_dataflow_matmul(cfg, a, b), a @ b)

    @settings(max_examples=15, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=30),
        d=st.integers(min_value=1, max_value=30),
        n=st.integers(min_value=1, max_value=30),
    )
    def test_exact_matmul_property(self, m, d, n):
        cfg = lt_base()
        rng = np.random.default_rng(m * 900 + d * 30 + n)
        a = rng.normal(size=(m, d))
        b = rng.normal(size=(d, n))
        assert np.allclose(os_dataflow_matmul(cfg, a, b), a @ b, atol=1e-9)

    def test_noisy_tile_executor(self, cfg):
        """Running the schedule on a noisy DPTC stays near the ideal."""
        dptc = DPTC(cfg.geometry, NoiseModel.paper_default())
        rng = np.random.default_rng(2)
        a = rng.normal(size=(24, 36))
        b = rng.normal(size=(36, 24))
        result = os_dataflow_matmul(
            cfg, a, b, lambda x, y: dptc.tile_matmul(x, y, rng=rng)
        )
        rel = np.linalg.norm(result - a @ b) / np.linalg.norm(a @ b)
        assert 0.0 < rel < 0.3

    def test_shape_validation(self, cfg):
        with pytest.raises(ValueError):
            os_dataflow_matmul(cfg, np.ones((3, 4)), np.ones((5, 3)))
        schedule = OutputStationarySchedule(cfg, 4, 4, 4)
        with pytest.raises(ValueError):
            schedule.execute(np.ones((4, 5)), np.ones((4, 4)))
