"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAreaCommand:
    def test_default(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "Area breakdown" in out
        assert "TOTAL" in out
        assert "60" in out  # LT-B ~60.3 mm^2

    def test_lt_large(self, capsys):
        assert main(["area", "--config", "lt-l"]) == 0
        assert "lt-l" in capsys.readouterr().out


class TestPowerCommand:
    def test_4bit(self, capsys):
        assert main(["power", "--bits", "4"]) == 0
        out = capsys.readouterr().out
        assert "laser" in out and "dac" in out

    def test_8bit_has_higher_total(self, capsys):
        main(["power", "--bits", "4"])
        out4 = capsys.readouterr().out
        main(["power", "--bits", "8"])
        out8 = capsys.readouterr().out

        def total(text):
            for line in text.splitlines():
                if line.startswith("TOTAL"):
                    return float(line.split()[1])
            raise AssertionError("no TOTAL line")

        assert total(out8) > 3 * total(out4)


class TestRunCommand:
    def test_deit_t(self, capsys):
        assert main(["run", "--model", "deit-t"]) == 0
        out = capsys.readouterr().out
        assert "deit-tiny" in out
        assert "energy_mJ" in out

    def test_bert(self, capsys):
        assert main(["run", "--model", "bert-base"]) == 0
        assert "bert-base" in capsys.readouterr().out


class TestCompareCommand:
    def test_contains_all_designs(self, capsys):
        assert main(["compare", "--model", "deit-t"]) == 0
        out = capsys.readouterr().out
        for design in ("LT-B", "MRR bank", "MZI array", "CPU", "GPU"):
            assert design in out


class TestReportCommand:
    def test_writes_file(self, tmp_path, capsys):
        output = tmp_path / "EXP.md"
        assert main(["report", "--skip-accuracy", "--output", str(output)]) == 0
        text = output.read_text()
        assert "Table IV" in text
        assert "Fig. 13" in text


class TestParsing:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_bits_rejected(self):
        with pytest.raises(SystemExit):
            main(["area", "--bits", "5"])

    def test_bad_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--model", "gpt-17"])


class TestServeBenchCommand:
    def test_tiny_vit_load(self, capsys):
        assert main([
            "serve-bench", "--model", "tiny-vit", "--requests", "6",
            "--max-batch-size", "4", "--users", "2", "--rounds", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "open-loop-poisson" in out
        assert "closed-loop" in out
        assert "batch occupancy" in out

    def test_tiny_bert_ragged_prompts(self, capsys):
        assert main([
            "serve-bench", "--model", "tiny-bert", "--requests", "5",
            "--max-batch-size", "8", "--users", "2", "--rounds", "1",
        ]) == 0
        assert "serve-bench tiny-bert" in capsys.readouterr().out

    def test_bad_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--model", "gpt-17"])


class TestClusterBenchCommand:
    def test_vision_fleet(self, capsys):
        assert main([
            "cluster-bench", "--model", "tiny-vit", "--replicas", "2",
            "--requests", "8", "--max-batch-size", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "virtual-open-loop" in out
        assert "replica-0" in out and "replica-1" in out

    def test_decode_affinity_stats(self, capsys):
        assert main([
            "cluster-bench", "--model", "decode", "--replicas", "3",
            "--policy", "session_affinity", "--requests", "12",
        ]) == 0
        out = capsys.readouterr().out
        assert "affinity: hit rate" in out
        assert "KV migrations" in out

    def test_autoscale_emits_events(self, capsys):
        assert main([
            "cluster-bench", "--autoscale", "--replicas", "3",
            "--requests", "24", "--rate", "20000", "--max-batch-size", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "(autoscaled)" in out
        assert "scale_up" in out

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["cluster-bench", "--policy", "random"])

    def test_bad_replicas_rejected(self):
        with pytest.raises(SystemExit):
            main(["cluster-bench", "--replicas", "0"])


class TestSchedulerFlag:
    def test_serve_bench_continuous(self, capsys):
        assert main([
            "serve-bench", "--model", "tiny-vit", "--requests", "6",
            "--max-batch-size", "4", "--users", "2", "--rounds", "1",
            "--scheduler", "continuous",
        ]) == 0
        out = capsys.readouterr().out
        assert "scheduler=continuous" in out
        assert "iteration occupancy" in out

    def test_serve_bench_request_is_default(self, capsys):
        assert main([
            "serve-bench", "--model", "tiny-vit", "--requests", "4",
            "--max-batch-size", "4", "--users", "2", "--rounds", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "scheduler=request" in out
        assert "iteration occupancy" not in out

    def test_cluster_bench_continuous_decode(self, capsys):
        assert main([
            "cluster-bench", "--model", "decode", "--replicas", "3",
            "--policy", "session_affinity", "--requests", "12",
            "--scheduler", "continuous",
        ]) == 0
        out = capsys.readouterr().out
        assert "scheduler=continuous" in out
        assert "KV migrations" in out

    def test_bad_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--scheduler", "sorcery"])
        with pytest.raises(SystemExit):
            main(["cluster-bench", "--scheduler", "sorcery"])


class TestHotpathBenchCommand:
    def test_stage_table_and_summary(self, capsys):
        assert main([
            "hotpath-bench", "--batch", "8", "--m", "4", "--d", "12",
            "--n", "4", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        for stage in ("sample", "encode", "compute", "detect"):
            assert stage in out
        assert "bit-identical" in out
        assert "GFLOP/s" in out

    def test_writes_json_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "BENCH_hotpath.json"
        assert main([
            "hotpath-bench", "--batch", "8", "--m", "4", "--d", "12",
            "--n", "4", "--repeats", "1", "--chunk-size", "2",
            "--pipeline-depth", "2", "--out", str(artifact),
        ]) == 0
        import json

        report = json.loads(artifact.read_text())
        assert report["bit_identical"] is True
        assert report["chunk_size"] == 2
        assert report["pipeline_depth"] == 2
        assert set(report["stage_seconds"]) >= {
            "sample", "encode", "compute", "detect", "total"
        }

    def test_bad_shape_rejected(self):
        with pytest.raises(SystemExit):
            main(["hotpath-bench", "--batch", "0"])

    def test_noise_off_profiles_compute_and_detect_only(self, capsys):
        assert main([
            "hotpath-bench", "--batch", "8", "--m", "4", "--d", "12",
            "--n", "4", "--repeats", "1", "--noise", "off",
        ]) == 0
        out = capsys.readouterr().out
        assert "noise=off" in out
        assert "compute" in out and "detect" in out
        assert "sample" not in out and "encode" not in out

    def test_trace_flag_writes_spans(self, tmp_path, capsys):
        trace = tmp_path / "hotpath.jsonl"
        assert main([
            "hotpath-bench", "--batch", "8", "--m", "4", "--d", "12",
            "--n", "4", "--repeats", "1", "--trace", str(trace),
        ]) == 0
        import json

        lines = trace.read_text().splitlines()
        names = {json.loads(line)["name"] for line in lines}
        assert "hotpath.matmul" in names
        assert "stage.compute" in names
        assert "wrote" in capsys.readouterr().out


class TestTraceCommand:
    def test_stdout_jsonl_is_deterministic(self, capsys):
        assert main(["trace", "--seed", "1", "--requests", "8"]) == 0
        first = capsys.readouterr().out
        assert main(["trace", "--seed", "1", "--requests", "8"]) == 0
        second = capsys.readouterr().out
        assert first == second
        import json

        names = {json.loads(line)["name"] for line in first.splitlines()}
        assert "request" in names
        assert "stage.detect" in names

    def test_out_extension_selects_format(self, tmp_path, capsys):
        import json

        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        assert main(["trace", "--requests", "4", "--out", str(jsonl)]) == 0
        assert main(["trace", "--requests", "4", "--out", str(chrome)]) == 0
        assert json.loads(jsonl.read_text().splitlines()[0])["span_id"] == 0
        assert "traceEvents" in json.loads(chrome.read_text())
        assert "wrote" in capsys.readouterr().out

    def test_bad_requests_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "--requests", "0"])

    def test_serve_bench_trace_flag(self, tmp_path, capsys):
        import json

        trace = tmp_path / "serve.jsonl"
        assert main([
            "serve-bench", "--requests", "6", "--trace", str(trace),
        ]) == 0
        names = {
            json.loads(line)["name"]
            for line in trace.read_text().splitlines()
        }
        assert "request" in names

    def test_cluster_bench_trace_flag(self, tmp_path, capsys):
        import json

        trace = tmp_path / "cluster.jsonl"
        assert main([
            "cluster-bench", "--requests", "8", "--trace", str(trace),
        ]) == 0
        names = {
            json.loads(line)["name"]
            for line in trace.read_text().splitlines()
        }
        assert "cluster" in names
        assert "cluster.request" in names


class TestHotpathKnobFlags:
    def test_serve_bench_accepts_hotpath_knobs(self, capsys):
        assert main([
            "serve-bench", "--model", "tiny-vit", "--requests", "4",
            "--max-batch-size", "4", "--users", "2", "--rounds", "1",
            "--chunk-size", "2", "--pipeline-depth", "2",
        ]) == 0
        assert "requests" in capsys.readouterr().out


class TestTraceSamplingFlags:
    def run_trace(self, capsys, *extra):
        assert main(["trace", "--seed", "1", "--requests", "8", *extra]) == 0
        return capsys.readouterr().out

    def test_sampled_stdout_is_deterministic_subset(self, capsys):
        full = self.run_trace(capsys)
        sampled = self.run_trace(capsys, "--sample", "2")
        again = self.run_trace(capsys, "--sample", "2")
        assert sampled == again
        assert 0 < len(sampled.splitlines()) < len(full.splitlines())
        assert set(sampled.splitlines()) < set(full.splitlines())

    def test_sampled_out_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "sampled.jsonl"
        assert main([
            "trace", "--seed", "1", "--requests", "8",
            "--sample", "2", "--out", str(out),
        ]) == 0
        assert "sampled spans" in capsys.readouterr().out
        stdout_lines = self.run_trace(capsys, "--sample", "2").splitlines()
        assert out.read_text().splitlines() == stdout_lines

    def test_sample_validation(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--sample", "0"])
        with pytest.raises(SystemExit):
            main([
                "trace", "--sample", "2",
                "--out", str(tmp_path / "trace.json"),
            ])

    def test_stream_round_trips_the_batch_dump(self, tmp_path, capsys):
        out = tmp_path / "stream.jsonl"
        assert main([
            "trace", "--seed", "1", "--requests", "8",
            "--stream", "--out", str(out),
        ]) == 0
        message = capsys.readouterr().out
        assert "streamed" in message and "peak" in message
        batch = self.run_trace(capsys)
        assert sorted(out.read_text().splitlines()) == sorted(
            batch.splitlines()
        )

    def test_stream_with_sampler_matches_batch_sampling(self, tmp_path, capsys):
        out = tmp_path / "stream.jsonl"
        assert main([
            "trace", "--seed", "1", "--requests", "8",
            "--stream", "--sample", "2", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        sampled = self.run_trace(capsys, "--sample", "2")
        assert sorted(out.read_text().splitlines()) == sorted(
            sampled.splitlines()
        )

    def test_stream_validation(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--stream"])  # no --out
        with pytest.raises(SystemExit):
            main([
                "trace", "--stream", "--out", str(tmp_path / "trace.json"),
            ])


class TestTopCommand:
    def test_renders_frames_without_color(self, capsys):
        assert main([
            "top", "--no-color", "--replicas", "2",
            "--requests", "12", "--frames", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet of 2" in out
        assert "frames rendered" in out
        assert "\x1b[" not in out

    def test_color_frames_home_the_cursor(self, capsys):
        assert main([
            "top", "--replicas", "2", "--requests", "8", "--frames", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "\x1b[H\x1b[2J" in out

    def test_fail_replica_prints_postmortem(self, capsys):
        assert main([
            "top", "--no-color", "--replicas", "2",
            "--requests", "12", "--frames", "2", "--fail-replica", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "postmortem: replica_failed" in out
        assert "spans" in out

    def test_unknown_replica_rejected(self):
        with pytest.raises(SystemExit):
            main([
                "top", "--no-color", "--replicas", "2",
                "--requests", "8", "--fail-replica", "9",
            ])

    def test_bad_args_rejected(self):
        with pytest.raises(SystemExit):
            main(["top", "--replicas", "0"])
        with pytest.raises(SystemExit):
            main(["top", "--requests", "0"])
        with pytest.raises(SystemExit):
            main(["top", "--rate", "0"])


class TestMetricsCommand:
    def test_prometheus_dump(self, capsys):
        assert main(["metrics", "--requests", "8"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out
        assert "_total" in out
        assert out.endswith("\n")

    def test_dump_is_deterministic(self, capsys):
        assert main(["metrics", "--requests", "8"]) == 0
        first = capsys.readouterr().out
        assert main(["metrics", "--requests", "8"]) == 0
        assert capsys.readouterr().out == first

    def test_one_shot_http_self_scrape(self, capsys):
        assert main([
            "metrics", "--requests", "6", "--port", "0", "--self-scrape",
        ]) == 0
        out = capsys.readouterr().out
        assert "serving one scrape at http://127.0.0.1:" in out
        assert "served 1 scrape" in out

    def test_bad_requests_rejected(self):
        with pytest.raises(SystemExit):
            main(["metrics", "--requests", "0"])
