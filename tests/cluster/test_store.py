"""KVStore conformance suite (all backends) and SharedCacheTier units:
namespacing, TTL under a simulated clock, scan ordering, memo LRU, and
prefix-chain refcount/holder custody."""

import numpy as np
import pytest

from repro.cluster import LocalKVStore, ShardedKVStore, SharedCacheTier
from repro.cluster.store import NS_MEMO, NS_PREFIX
from repro.serving import SimulatedClock
from repro.serving.cache import MISS, PrefixChain
from repro.workloads.llm import DecoderConfig, kv_cache_bytes

BACKENDS = {
    "local": lambda clock: LocalKVStore(clock=clock),
    "sharded": lambda clock: ShardedKVStore(shards=3, clock=clock),
}


@pytest.fixture(params=sorted(BACKENDS))
def backend(request):
    clock = SimulatedClock()
    return BACKENDS[request.param](clock), clock


def toy_decoder() -> DecoderConfig:
    return DecoderConfig("store-test", depth=2, dim=16, heads=2, mlp_ratio=2.0)


class TestKVStoreConformance:
    def test_put_get_roundtrip(self, backend):
        store, _ = backend
        store.put("ns", "k", {"a": 1})
        assert store.get("ns", "k") == {"a": 1}

    def test_miss_returns_default(self, backend):
        store, _ = backend
        assert store.get("ns", "absent") is None
        assert store.get("ns", "absent", default=7) == 7

    def test_namespaces_isolate_keys(self, backend):
        store, _ = backend
        store.put("alpha", "k", 1)
        store.put("beta", "k", 2)
        assert store.get("alpha", "k") == 1
        assert store.get("beta", "k") == 2
        assert store.delete("alpha", "k")
        assert store.get("alpha", "k") is None
        assert store.get("beta", "k") == 2

    def test_delete_reports_presence(self, backend):
        store, _ = backend
        store.put("ns", "k", 1)
        assert store.delete("ns", "k") is True
        assert store.delete("ns", "k") is False

    def test_scan_is_sorted_and_prefix_filtered(self, backend):
        store, _ = backend
        for key in ("b/2", "a", "b/1", "c"):
            store.put("ns", key, key)
        assert store.scan("ns") == ["a", "b/1", "b/2", "c"]
        assert store.scan("ns", prefix="b/") == ["b/1", "b/2"]
        assert store.scan("other") == []

    def test_size_counts_live_entries(self, backend):
        store, _ = backend
        for i in range(5):
            store.put("ns", f"k{i}", i)
        assert store.size("ns") == 5
        store.delete("ns", "k0")
        assert store.size("ns") == 4

    def test_ttl_expires_at_exact_boundary(self, backend):
        store, clock = backend
        store.put("ns", "k", 1, ttl_s=2.0)
        clock.advance(1.999)
        assert store.get("ns", "k") == 1
        clock.advance(0.001)  # now == expires_at: expired
        assert store.get("ns", "k") is None
        assert store.scan("ns") == []
        assert store.size("ns") == 0

    def test_rewrite_without_ttl_unpins_expiry(self, backend):
        store, clock = backend
        store.put("ns", "k", 1, ttl_s=1.0)
        store.put("ns", "k", 2)  # no TTL: pinned
        clock.advance(10.0)
        assert store.get("ns", "k") == 2

    def test_negative_ttl_rejected(self, backend):
        store, _ = backend
        with pytest.raises(ValueError):
            store.put("ns", "k", 1, ttl_s=-0.5)


class TestShardedStore:
    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            ShardedKVStore(shards=0)

    def test_scan_merges_across_shards_sorted(self):
        store = ShardedKVStore(shards=4)
        keys = [f"key-{i:03d}" for i in range(20)]
        for key in reversed(keys):
            store.put("ns", key, key)
        assert store.scan("ns") == keys
        assert store.size("ns") == 20


class TestTierMemo:
    def test_miss_then_hit_with_counters(self):
        tier = SharedCacheTier()
        assert tier.get_memo("k") is MISS
        tier.put_memo("k", np.arange(4.0))
        np.testing.assert_array_equal(tier.get_memo("k"), np.arange(4.0))
        assert tier.hits == 1 and tier.misses == 1

    def test_values_are_isolated_copies(self):
        tier = SharedCacheTier()
        value = np.ones(3)
        tier.put_memo("k", value)
        value[:] = 0  # caller mutation must not corrupt the store
        out = tier.get_memo("k")
        np.testing.assert_array_equal(out, np.ones(3))
        out[:] = 5
        np.testing.assert_array_equal(tier.get_memo("k"), np.ones(3))

    def test_lru_eviction_under_byte_budget(self):
        entry = np.zeros(16)  # 128 bytes
        tier = SharedCacheTier(memo_capacity_bytes=3 * entry.nbytes)
        for i in range(3):
            tier.put_memo(f"k{i}", entry)
        assert tier.get_memo("k0") is not MISS  # refresh k0
        tier.put_memo("k3", entry)  # evicts k1, the LRU
        assert tier.get_memo("k1") is MISS
        assert tier.get_memo("k0") is not MISS
        assert tier.evictions == 1
        assert tier.memo_entries == 3
        assert tier.memo_bytes == 3 * entry.nbytes

    def test_overwrite_replaces_bytes_not_duplicates(self):
        tier = SharedCacheTier(memo_capacity_bytes=1 << 10)
        tier.put_memo("k", np.zeros(8))
        tier.put_memo("k", np.zeros(16))  # same key, larger value
        assert tier.memo_entries == 1
        assert tier.memo_bytes == 128
        np.testing.assert_array_equal(tier.get_memo("k"), np.zeros(16))

    def test_oversized_entry_never_admitted(self):
        tier = SharedCacheTier(memo_capacity_bytes=8)
        tier.put_memo("big", np.zeros(100))
        assert tier.memo_entries == 0 and tier.get_memo("big") is MISS

    def test_ttl_expiry_reconciles_byte_ledger(self):
        clock = SimulatedClock()
        tier = SharedCacheTier(clock=clock, memo_ttl_s=1.0)
        tier.put_memo("k", np.zeros(8))
        assert tier.memo_bytes == 64
        clock.advance(2.0)
        assert tier.get_memo("k") is MISS
        assert tier.memo_bytes == 0 and tier.memo_entries == 0

    def test_non_string_keys(self):
        tier = SharedCacheTier()
        tier.put_memo((1, "a"), np.ones(2))
        assert tier.get_memo((1, "a")) is not MISS
        assert tier.get_memo((1, "b")) is MISS

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SharedCacheTier(memo_capacity_bytes=-1)


class TestTierPrefixChains:
    def test_ensure_prefix_pages_and_bytes(self):
        config = toy_decoder()
        tier = SharedCacheTier()
        chain = tier.ensure_prefix("sys", 5, config=config, block_size=2)
        assert chain.n_blocks == 3  # ceil(5 / 2) pages
        assert [b.fill for b in chain.blocks] == [2, 2, 1]
        assert chain.nbytes == kv_cache_bytes(config, 6)  # page-rounded
        assert tier.prefix_ids == ["sys"]
        assert tier.shared_bytes == chain.nbytes

    def test_ensure_prefix_idempotent_and_strict(self):
        config = toy_decoder()
        tier = SharedCacheTier()
        chain = tier.ensure_prefix("sys", 4, config=config, block_size=2)
        assert tier.ensure_prefix("sys", 4, config=config, block_size=2) is chain
        with pytest.raises(ValueError, match="already registered with"):
            tier.ensure_prefix("sys", 6, config=config, block_size=2)
        with pytest.raises(ValueError):
            tier.ensure_prefix("other", 0, config=config)

    def test_register_rejects_slash_and_duplicates(self):
        config = toy_decoder()
        tier = SharedCacheTier()
        tier.ensure_prefix("sys", 2, config=config)
        bad = PrefixChain(
            prefix_id="a/b", tokens=1, blocks=(), block_size=1, nbytes=0
        )
        with pytest.raises(ValueError, match="must not contain"):
            tier.register_prefix(bad)
        dup = PrefixChain(
            prefix_id="sys", tokens=1, blocks=(), block_size=1, nbytes=0
        )
        with pytest.raises(ValueError, match="already registered"):
            tier.register_prefix(dup)

    def test_refcount_and_holder_custody(self):
        tier = SharedCacheTier()
        tier.ensure_prefix("sys", 2, config=toy_decoder())
        assert tier.refcount("sys") == 0
        tier.acquire_prefix("sys", replica_id=1)
        tier.acquire_prefix("sys", replica_id=0)
        tier.acquire_prefix("sys", replica_id=1)
        assert tier.refcount("sys") == 3
        assert tier.replicas_holding("sys") == [0, 1]
        assert tier.release_prefix("sys", replica_id=1) == 2
        assert tier.replicas_holding("sys") == [0, 1]  # 1 still holds one
        assert tier.release_prefix("sys", replica_id=1) == 1
        assert tier.replicas_holding("sys") == [0]
        assert tier.release_prefix("sys", replica_id=0) == 0
        assert tier.replicas_holding("sys") == []

    def test_acquire_unregistered_raises(self):
        tier = SharedCacheTier()
        with pytest.raises(KeyError):
            tier.acquire_prefix("ghost", replica_id=0)

    def test_release_guards(self):
        tier = SharedCacheTier()
        tier.ensure_prefix("sys", 2, config=toy_decoder())
        with pytest.raises(ValueError, match="not referenced"):
            tier.release_prefix("sys", replica_id=0)
        tier.acquire_prefix("sys", replica_id=0)
        with pytest.raises(ValueError):
            tier.release_prefix("sys", replica_id=3)  # holds none

    def test_referenced_chain_is_pinned_against_ttl(self):
        clock = SimulatedClock()
        tier = SharedCacheTier(clock=clock, prefix_ttl_s=1.0)
        tier.ensure_prefix("sys", 2, config=toy_decoder())
        tier.acquire_prefix("sys", replica_id=0)
        clock.advance(100.0)
        assert tier.prefix("sys") is not None  # pinned while referenced
        tier.release_prefix("sys", replica_id=0)
        assert tier.prefix("sys") is not None  # cached, now evictable
        clock.advance(100.0)
        assert tier.prefix("sys") is None  # TTL finally applies

    def test_move_holder_follows_migration(self):
        tier = SharedCacheTier()
        tier.ensure_prefix("sys", 2, config=toy_decoder())
        tier.acquire_prefix("sys", replica_id=0)
        tier.move_holder("sys", 0, 2)
        assert tier.replicas_holding("sys") == [2]
        assert tier.refcount("sys") == 1
        tier.move_holder("sys", 2, 2)  # same-replica move is a no-op
        assert tier.replicas_holding("sys") == [2]
        with pytest.raises(ValueError):
            tier.move_holder("sys", 0, 1)  # source holds none

    def test_drop_prefix_guard(self):
        tier = SharedCacheTier()
        tier.ensure_prefix("sys", 2, config=toy_decoder())
        tier.acquire_prefix("sys", replica_id=0)
        with pytest.raises(ValueError, match="referenced"):
            tier.drop_prefix("sys")
        tier.release_prefix("sys", replica_id=0)
        assert tier.drop_prefix("sys") is True
        assert tier.drop_prefix("sys") is False

    def test_stats_sections(self):
        tier = SharedCacheTier()
        tier.put_memo("k", np.zeros(4))
        tier.get_memo("k")
        tier.get_memo("absent")
        tier.ensure_prefix("sys", 3, config=toy_decoder(), block_size=2)
        tier.acquire_prefix("sys", replica_id=0)
        stats = tier.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["memo_entries"] == 1 and stats["memo_bytes"] == 32
        assert stats["prefixes"] == 1
        assert stats["shared_bytes"] == tier.shared_bytes
        assert stats["referenced_prefixes"] == 1

    def test_sharded_backend_supports_prefix_custody(self):
        tier = SharedCacheTier(ShardedKVStore(shards=3))
        tier.ensure_prefix("sys", 2, config=toy_decoder())
        tier.acquire_prefix("sys", replica_id=4)
        tier.acquire_prefix("sys", replica_id=2)
        assert tier.replicas_holding("sys") == [2, 4]
        assert tier.refcount("sys") == 2


class TestStoreNamespaceLayout:
    def test_tier_uses_documented_namespaces(self):
        store = LocalKVStore()
        tier = SharedCacheTier(store)
        tier.put_memo("k", np.zeros(2))
        tier.ensure_prefix("sys", 2, config=toy_decoder())
        assert store.scan(NS_MEMO) == ["k"]
        assert store.scan(NS_PREFIX) == ["sys"]
