"""Cluster tests for continuous scheduling: every routing policy stays
bit-identical to a single sequential engine, paged KV state migrates
and fails over intact, and sessions retire fleet-wide."""

import numpy as np
import pytest

from repro.cluster import ServiceModel, ServingCluster
from repro.serving import (
    DecodeServable,
    IterationCost,
    ServingEngine,
    SimulatedClock,
    decode_payload,
    mixed_decode_trace,
    run_decode_trace,
)
from repro.workloads.llm import DecoderConfig

DECODER = DecoderConfig("cluster-cont", depth=2, dim=16, heads=2, mlp_ratio=2.0)
COST = IterationCost(base_s=2e-4, per_request_s=5e-5)


def payload_fn(i, t):
    return decode_payload(9, i, t, DECODER.dim)


def trace_specs(sessions=8, seed=17):
    return mixed_decode_trace(
        sessions, seed=seed, max_steps=8, horizon_s=4e-3
    )


def sequential_reference(specs):
    outputs = {}
    for i, spec in enumerate(specs):
        engine = ServingEngine(
            DecodeServable(DECODER, seed=0, block_size=2),
            max_batch_size=1,
            max_wait_us=0.0,
            clock=SimulatedClock(),
        )
        with engine:
            outs = []
            for t in range(spec.steps):
                handle = engine.submit(payload_fn(i, t), session_id=spec.session_id)
                engine.step()
                outs.append(handle.result(timeout=0))
            outputs[spec.session_id] = outs
    return outputs


def continuous_cluster(replicas=3, **kwargs):
    kwargs.setdefault("clock", SimulatedClock())
    kwargs.setdefault("max_wait_us", 0.0)
    kwargs.setdefault("max_batch_size", 4)
    kwargs.setdefault("queue_depth", 256)
    kwargs.setdefault("close_executors", False)
    kwargs.setdefault("scheduler", "continuous")
    kwargs.setdefault("iteration_cost", COST)
    return ServingCluster(
        lambda rid: DecodeServable(DECODER, seed=0, block_size=2),
        replicas=replicas,
        **kwargs,
    )


def assert_bit_equal(outputs, reference, specs):
    for spec in specs:
        got, want = outputs[spec.session_id], reference[spec.session_id]
        assert len(got) == len(want)
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)


class TestPolicyEquivalence:
    @pytest.mark.parametrize(
        "policy", ["round_robin", "least_outstanding", "session_affinity"]
    )
    def test_bit_identical_to_single_engine(self, policy):
        specs = trace_specs()
        reference = sequential_reference(specs)
        with continuous_cluster(policy=policy) as cluster:
            result = run_decode_trace(cluster, specs, payload_fn=payload_fn)
        assert_bit_equal(result["outputs"], reference, specs)

    def test_migration_moves_paged_blocks_wholesale(self):
        specs = trace_specs()
        reference = sequential_reference(specs)
        with continuous_cluster(policy="round_robin") as cluster:
            result = run_decode_trace(
                cluster, specs, payload_fn=payload_fn, release=False
            )
            snapshot = cluster.snapshot()
            # Round-robin ping-pongs sessions between replicas: paged KV
            # state must move with them, page-rounded bytes and all.
            assert snapshot["migrations"]["count"] > 0
            assert snapshot["migrations"]["bytes"] > 0
            for replica in cluster._replicas.values():
                cache = replica.session_cache
                if cache is None or cache.pool is None:
                    continue
                assert cache.resident_kv_bytes() == cache.pool.in_use_bytes
        assert_bit_equal(result["outputs"], reference, specs)


class TestFailover:
    def test_mid_trace_failover_stays_bit_identical(self):
        specs = trace_specs()
        reference = sequential_reference(specs)
        cluster = continuous_cluster(policy="session_affinity")
        state = {"executed": 0, "failed": False}
        original_step = cluster.step

        def failing_step(*, force=True):
            executed = original_step(force=force)
            state["executed"] += executed
            if not state["failed"] and state["executed"] >= 20:
                state["failed"] = True
                cluster.fail_replica(0)
            return executed

        cluster.step = failing_step
        with cluster:
            result = run_decode_trace(cluster, specs, payload_fn=payload_fn)
            snapshot = cluster.snapshot()
        assert state["failed"]
        assert snapshot["migrations"]["sessions_rehomed"] > 0
        assert_bit_equal(result["outputs"], reference, specs)


class TestReleaseSession:
    def test_release_frees_owner_pages_and_directory(self):
        with continuous_cluster(policy="session_affinity") as cluster:
            specs = trace_specs(sessions=3)
            run_decode_trace(
                cluster, specs, payload_fn=payload_fn, release=False
            )
            sid = specs[0].session_id
            owner_id = cluster.router.directory[sid]
            cache = cluster._replicas[owner_id].session_cache
            before = cache.pool.in_use
            freed = cluster.release_session(sid)
            assert freed > 0
            assert cache.pool.in_use < before
            assert sid not in cluster.router.directory
            # Idempotent: a second release finds nothing.
            assert cluster.release_session(sid) == 0

    def test_release_unknown_session_is_zero(self):
        with continuous_cluster(replicas=2) as cluster:
            assert cluster.release_session("ghost") == 0


class TestValidation:
    def test_service_model_and_iteration_cost_conflict(self):
        with pytest.raises(ValueError):
            ServingCluster(
                lambda rid: DecodeServable(DECODER, seed=0),
                replicas=2,
                clock=SimulatedClock(),
                close_executors=False,
                service_model=ServiceModel(),
                iteration_cost=COST,
            )

    def test_scheduler_knob_reaches_replicas(self):
        with continuous_cluster(replicas=2) as cluster:
            for replica in cluster._replicas.values():
                assert replica.engine.scheduler == "continuous"
                assert replica.engine.iteration_cost is COST
