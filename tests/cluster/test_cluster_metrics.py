"""Tests for fleet metrics aggregation and the cluster event log."""

import json

import pytest

from repro.cluster import ClusterEvent, ClusterMetrics, ClusterRecord
from repro.serving import Metrics, RequestHandle


def record(arrival, started, finished, replica_id=0, tenant=None, cache_hit=False):
    return ClusterRecord(
        arrival=arrival,
        started=started,
        finished=finished,
        replica_id=replica_id,
        batch_size=1,
        cache_hit=cache_hit,
        tenant=tenant,
    )


def engine_metrics(waits):
    """A per-engine recorder with the given queue waits (1 ms service)."""
    metrics = Metrics()
    for i, wait in enumerate(waits):
        handle = RequestHandle(i, float(i))
        handle._resolve(
            None, started=i + wait, finished=i + wait + 1e-3, batch_size=2
        )
        metrics.record_request(handle)
        metrics.record_batch(2)
    return metrics


class TestCounters:
    def test_affinity_hit_rate(self):
        metrics = ClusterMetrics()
        assert metrics.affinity_hit_rate() == 0.0
        metrics.record_dispatch(0, affinity_hit=True)
        metrics.record_dispatch(1, affinity_hit=False)
        metrics.record_dispatch(0, affinity_hit=True)
        metrics.record_dispatch(2, new_session=True)  # not a hit/miss
        assert metrics.affinity_hit_rate() == pytest.approx(2 / 3)
        assert metrics.sessions_placed == 1

    def test_dispatch_and_tenant_counts_sorted(self):
        metrics = ClusterMetrics()
        metrics.record_dispatch(2, tenant="b")
        metrics.record_dispatch(0, tenant="a")
        metrics.record_dispatch(2, tenant="a")
        assert metrics.dispatch_counts() == {0: 1, 2: 2}
        assert metrics.tenant_counts() == {"a": 2, "b": 1}

    def test_migration_and_failover_ledgers(self):
        metrics = ClusterMetrics()
        metrics.record_migration(128)
        metrics.record_migration(64)
        metrics.record_rehome(3)
        metrics.record_failover(2)
        metrics.record_retry()
        assert metrics.migrations == 2
        assert metrics.migrated_bytes == 192
        assert metrics.sessions_rehomed == 3
        assert metrics.failovers == 2
        assert metrics.retries == 1


class TestFleetSummaries:
    def test_throughput_spans_fleet_records(self):
        metrics = ClusterMetrics()
        metrics.record_request(record(0.0, 0.0, 1.0, replica_id=0))
        metrics.record_request(record(1.0, 1.5, 2.0, replica_id=1))
        assert metrics.throughput() == 1.0
        assert metrics.completed == 2

    def test_latency_and_wait_percentiles(self):
        metrics = ClusterMetrics()
        for i, wait in enumerate((1e-3, 2e-3, 3e-3)):
            metrics.record_request(record(i, i + wait, i + wait + 1e-3))
        assert metrics.latency_summary()["p50"] == pytest.approx(3e-3)
        assert metrics.queue_wait_summary()["p50"] == pytest.approx(2e-3)

    def test_latencies_since_windows(self):
        metrics = ClusterMetrics()
        metrics.record_request(record(0.0, 0.0, 1.0))
        window, index = metrics.latencies_since(0)
        assert window == [1.0] and index == 1
        window, index = metrics.latencies_since(index)
        assert window == [] and index == 1
        metrics.record_request(record(0.0, 0.0, 2.0))
        window, index = metrics.latencies_since(index)
        assert window == [2.0] and index == 2


class TestEventsAndSnapshot:
    def test_cluster_event_as_dict_round_trips(self):
        event = ClusterEvent(0.5, "replica_failed", 2, 1, "fault injection")
        payload = json.loads(json.dumps(event.as_dict()))
        assert payload == {
            "time": 0.5,
            "kind": "replica_failed",
            "replica_id": 2,
            "fleet_size": 1,
            "reason": "fault injection",
        }
        assert ClusterEvent(**payload) == event

    def test_prometheus_exposition(self):
        metrics = ClusterMetrics()
        metrics.record_dispatch(0, tenant="chat-a", affinity_hit=True)
        metrics.record_failover()
        text = metrics.to_prometheus()
        assert 'cluster_dispatches_total{replica="0"} 1' in text
        assert 'cluster_affinity_total{outcome="hit"} 1' in text
        assert "cluster_failovers_total 1" in text

    def test_event_log_round_trips_to_json(self):
        metrics = ClusterMetrics()
        metrics.record_event(ClusterEvent(1.0, "scale_up", 1, 2, "backlog"))
        metrics.record_event(ClusterEvent(2.0, "drain", 1, 1, "idle"))
        snapshot = metrics.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert [e["kind"] for e in snapshot["events"]] == ["scale_up", "drain"]

    def test_snapshot_merges_replica_engine_metrics(self):
        metrics = ClusterMetrics()
        per_replica = {
            0: engine_metrics([1e-3, 3e-3]),
            1: engine_metrics([2e-3, 4e-3]),
        }
        snapshot = metrics.snapshot(per_replica)
        engines = snapshot["engines"]
        # Occupancy histograms sum across replicas.
        assert engines["batch_occupancy"] == {"2": 4}
        # Queue-wait percentiles come from the merged raw records:
        # waits are 1/2/3/4 ms pooled, not averaged per replica.
        assert engines["queue_wait_s"]["p50"] == pytest.approx(2.5e-3)
        assert set(engines["per_replica"]) == {"0", "1"}
        assert json.loads(json.dumps(snapshot)) == snapshot
