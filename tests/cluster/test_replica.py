"""Tests for replica lifecycle, health states, and the service model."""

import pytest

from repro.cluster import DRAINING, FAILED, HEALTHY, STOPPED, Replica, ServiceModel
from repro.serving import EngineClosed, SimulatedClock


class EchoServable:
    name = "echo"

    def prepare(self, payload):
        return payload

    def execute(self, requests):
        return [2 * request.payload for request in requests]


def replica(**kwargs):
    kwargs.setdefault("clock", SimulatedClock())
    kwargs.setdefault("close_executor", False)
    return Replica(0, EchoServable(), **kwargs)


class TestLifecycle:
    def test_initial_state(self):
        r = replica()
        assert r.state == HEALTHY
        assert r.alive and r.accepts_new
        assert r.name == "replica-0"

    def test_drain_then_stop(self):
        r = replica()
        r.start_drain()
        assert r.state == DRAINING
        assert r.alive and not r.accepts_new
        r.stop()
        assert r.state == STOPPED
        assert not r.alive
        assert r.engine.closed

    def test_fail_evicts_pending_without_failing_handles(self):
        r = replica()
        handle = r.engine.submit(21)
        evicted = r.fail()
        assert r.state == FAILED
        assert len(evicted) == 1
        assert not handle.done()  # evicted, not failed
        r.shutdown()
        assert r.engine.closed
        with pytest.raises(EngineClosed):
            r.engine.submit(1)

    def test_invalid_transitions_raise(self):
        r = replica()
        r.start_drain()
        with pytest.raises(ValueError, match="cannot drain"):
            r.start_drain()
        r.stop()
        with pytest.raises(ValueError, match="cannot fail"):
            r.fail()
        with pytest.raises(ValueError, match="cannot stop"):
            r.stop()


class TestServiceModel:
    def test_batch_seconds_is_affine(self):
        model = ServiceModel(base_s=1e-3, per_request_s=0.25e-3)
        assert model.batch_seconds(1) == pytest.approx(1.25e-3)
        assert model.batch_seconds(8) == pytest.approx(3e-3)

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 0"):
            ServiceModel(base_s=-1.0)
        with pytest.raises(ValueError, match="batch_size"):
            ServiceModel().batch_seconds(0)

    def test_virtual_stamp_groups_a_batch(self):
        model = ServiceModel(base_s=1e-3, per_request_s=1e-3)
        r = replica()
        # A batch of 2 resolving at t=0: both members share [0, 3ms).
        assert r.virtual_stamp(2, 0.0, model) == (0.0, 3e-3)
        assert r.virtual_stamp(2, 0.0, model) == (0.0, 3e-3)
        # Next batch chains off busy_until, not the clock.
        assert r.virtual_stamp(1, 0.0, model) == (3e-3, 5e-3)
        assert r.busy_until == pytest.approx(5e-3)

    def test_load_counts_outstanding_and_virtual_busyness(self):
        r = replica()
        assert r.load(now=0.0) == 0.0
        r.outstanding = 2
        r.busy_until = 1.0
        assert r.load(now=0.5) == 3.0
        assert r.load(now=2.0) == 2.0
