"""Tests for the virtual-time cluster load drivers (zero sleeps)."""

import numpy as np
import pytest

from repro.cluster import ServiceModel, ServingCluster, run_virtual_open_loop
from repro.cluster.loadgen import run_virtual_schedule
from repro.serving import SimulatedClock, TenantSpec, multi_tenant_arrivals


class EchoServable:
    name = "echo"

    def prepare(self, payload):
        return payload

    def execute(self, requests):
        return [2 * request.payload for request in requests]


def virtual_cluster(replicas=2, **kwargs):
    kwargs.setdefault("clock", SimulatedClock())
    kwargs.setdefault("service_model", ServiceModel(base_s=1e-3, per_request_s=0.0))
    kwargs.setdefault("max_batch_size", 4)
    kwargs.setdefault("max_wait_us", 500.0)
    return ServingCluster(
        lambda rid: EchoServable(), replicas=replicas, close_executors=False, **kwargs
    )


class TestRunVirtualOpenLoop:
    def test_requires_manual_mode(self):
        cluster = ServingCluster(
            lambda rid: EchoServable(), replicas=1, close_executors=False
        )
        with pytest.raises(ValueError, match="SimulatedClock"):
            run_virtual_open_loop(cluster, [1], [0.0])
        cluster.close()

    def test_mismatched_lengths_raise(self):
        with virtual_cluster() as cluster:
            with pytest.raises(ValueError, match="arrival gaps"):
                run_virtual_open_loop(cluster, [1, 2], [0.0])

    def test_report_shape_and_determinism(self):
        def run():
            rng = np.random.default_rng(0)
            gaps = rng.exponential(0.5e-3, size=16)
            with virtual_cluster() as cluster:
                report = run_virtual_open_loop(cluster, list(range(16)), gaps)
            handles = report.pop("handles")
            assert [h.result(timeout=0) for h in handles] == [
                2 * i for i in range(16)
            ]
            return report

        first, second = run(), run()
        assert first == second  # bit-deterministic, virtual time
        assert first["requests"] == first["completed"] == 16
        assert first["failed"] == 0
        assert first["throughput_rps"] > 0
        assert first["latency_p99_ms"] >= first["latency_p50_ms"]

    def test_more_replicas_raise_virtual_throughput(self):
        def throughput(replicas):
            rng = np.random.default_rng(1)
            gaps = rng.exponential(0.1e-3, size=32)
            with virtual_cluster(replicas=replicas) as cluster:
                return run_virtual_open_loop(
                    cluster, list(range(32)), gaps
                )["throughput_rps"]

        assert throughput(1) < throughput(2) < throughput(4)


class TestRunVirtualSchedule:
    def test_multi_tenant_mix_drives_sessions_and_tenants(self):
        tenants = (
            TenantSpec("batch", rate_rps=2000.0),
            TenantSpec("chat", rate_rps=2000.0, sessions=3),
        )
        arrivals = multi_tenant_arrivals(
            tenants, horizon_s=10e-3, rng=np.random.default_rng(0)
        )
        with virtual_cluster() as cluster:
            report = run_virtual_schedule(
                cluster, arrivals, lambda arrival: arrival.index
            )
        assert report["completed"] == len(arrivals)
        counts = cluster.metrics.tenant_counts()
        assert set(counts) == {"batch", "chat"}
        assert sum(counts.values()) == len(arrivals)
        # Session-shaped arrivals registered in the directory.
        assert set(cluster.router.directory) == {
            a.session for a in arrivals if a.session is not None
        }
