"""Tests for routing policies and the session directory."""

import pytest

from repro.cluster import (
    FAILED,
    LeastOutstandingPolicy,
    NoHealthyReplica,
    Replica,
    RoundRobinPolicy,
    Router,
    SessionAffinityPolicy,
    make_policy,
)
from repro.serving import SimulatedClock


class NullServable:
    name = "null"

    def prepare(self, payload):
        return payload

    def execute(self, requests):
        return [request.payload for request in requests]


def fleet(n=3):
    replicas = {
        rid: Replica(
            rid, NullServable(), clock=SimulatedClock(), close_executor=False
        )
        for rid in range(n)
    }
    return replicas


class TestMakePolicy:
    def test_by_name(self):
        assert isinstance(make_policy("round_robin"), RoundRobinPolicy)
        assert isinstance(make_policy("least_outstanding"), LeastOutstandingPolicy)
        assert isinstance(make_policy("session_affinity"), SessionAffinityPolicy)

    def test_instance_passes_through(self):
        policy = RoundRobinPolicy()
        assert make_policy(policy) is policy

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_policy("random")


class TestPolicies:
    def test_round_robin_cycles_in_id_order(self):
        replicas = fleet(3)
        policy = RoundRobinPolicy()
        candidates = sorted(replicas.values(), key=lambda r: r.replica_id)
        picks = [policy.choose(candidates).replica_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_breaks_ties_by_id(self):
        replicas = fleet(3)
        candidates = sorted(replicas.values(), key=lambda r: r.replica_id)
        policy = LeastOutstandingPolicy()
        assert policy.choose(candidates).replica_id == 0
        replicas[0].outstanding = 2
        replicas[1].outstanding = 1
        assert policy.choose(candidates).replica_id == 2
        replicas[2].outstanding = 3
        assert policy.choose(candidates).replica_id == 1

    def test_affinity_falls_back_to_least_outstanding(self):
        replicas = fleet(2)
        replicas[0].outstanding = 5
        candidates = sorted(replicas.values(), key=lambda r: r.replica_id)
        assert SessionAffinityPolicy().choose(candidates).replica_id == 1


class TestRouterSessions:
    def test_sessionless_requests_use_the_policy(self):
        replicas = fleet(3)
        router = Router("round_robin")
        picks = [
            router.route(replicas, None).replica.replica_id for _ in range(4)
        ]
        assert picks == [0, 1, 2, 0]
        assert router.directory == {}

    def test_new_session_is_placed_and_recorded(self):
        replicas = fleet(3)
        router = Router("session_affinity")
        decision = router.route(replicas, "s0")
        assert decision.new_session
        assert decision.affinity_hit is None
        assert router.directory["s0"] == decision.replica.replica_id

    def test_sticky_policy_pins_to_owner(self):
        replicas = fleet(3)
        router = Router("session_affinity")
        first = router.route(replicas, "s0").replica
        # Load the owner heavily: the fallback would pick someone else.
        first.outstanding = 10
        decision = router.route(replicas, "s0")
        assert decision.replica is first
        assert decision.affinity_hit is True
        assert decision.migrate_from is None

    def test_non_sticky_policy_migrates_quiescent_session(self):
        replicas = fleet(2)
        router = Router("round_robin")
        owner = router.route(replicas, "s0").replica
        assert owner.replica_id == 0
        decision = router.route(replicas, "s0")  # round robin moves on
        assert decision.replica.replica_id == 1
        assert decision.affinity_hit is False
        assert decision.migrate_from is owner
        assert router.directory["s0"] == 1

    def test_inflight_session_pins_even_for_round_robin(self):
        replicas = fleet(2)
        router = Router("round_robin")
        owner = router.route(replicas, "s0").replica
        router.begin("s0")
        decision = router.route(replicas, "s0")
        assert decision.replica is owner
        assert decision.affinity_hit is True
        router.finish("s0")
        assert router.inflight("s0") == 0

    def test_dead_owner_is_replaced(self):
        replicas = fleet(2)
        router = Router("session_affinity")
        owner = router.route(replicas, "s0").replica
        owner.state = FAILED
        decision = router.route(replicas, "s0")
        assert decision.replica is not owner
        assert decision.new_session
        assert router.directory["s0"] == decision.replica.replica_id

    def test_no_healthy_replica_raises(self):
        replicas = fleet(1)
        replicas[0].state = FAILED
        router = Router("round_robin")
        with pytest.raises(NoHealthyReplica):
            router.route(replicas, None)
        with pytest.raises(NoHealthyReplica):
            router.route(replicas, "s0")

    def test_sessions_owned_by_and_rehome(self):
        replicas = fleet(3)
        router = Router("session_affinity")
        for sid in ("b", "a", "c"):
            router.directory[sid] = 1
        assert router.sessions_owned_by(1) == ["a", "b", "c"]
        replicas[1].state = FAILED
        target = router.rehome("a", replicas)
        assert target.replica_id in (0, 2)
        assert router.directory["a"] == target.replica_id
        router.forget_owner("b")
        assert "b" not in router.directory
