"""Wall-clock cluster tests: worker threads + callback propagation."""

import numpy as np

from repro.cluster import STOPPED, ServingCluster
from repro.serving import DecodeServable
from repro.workloads.llm import DecoderConfig


class EchoServable:
    name = "echo"

    def prepare(self, payload):
        return payload

    def execute(self, requests):
        return [2 * request.payload for request in requests]


class TestWallClock:
    def test_results_propagate_through_callbacks(self):
        cluster = ServingCluster(
            lambda rid: EchoServable(),
            replicas=2,
            policy="least_outstanding",
            max_batch_size=4,
            max_wait_us=200.0,
            close_executors=False,
        )
        with cluster:
            handles = [cluster.submit(i) for i in range(16)]
            results = [handle.result(timeout=10.0) for handle in handles]
        assert results == [2 * i for i in range(16)]
        assert cluster.metrics.completed == 16
        assert sum(cluster.metrics.dispatch_counts().values()) == 16
        # Engine-side timing reached the cluster records.
        assert all(r.finished >= r.arrival for r in cluster.metrics.records())

    def test_decode_sessions_work_across_wall_clock_replicas(self):
        decoder = DecoderConfig("wall-decode", depth=1, dim=8, heads=2, mlp_ratio=2.0)
        rng = np.random.default_rng(0)
        cluster = ServingCluster(
            lambda rid: DecodeServable(decoder, seed=0),
            replicas=2,
            policy="session_affinity",
            max_batch_size=4,
            max_wait_us=200.0,
            close_executors=False,
        )
        with cluster:
            for _ in range(3):
                handles = [
                    cluster.submit(rng.normal(size=8), session_id=f"s{s}")
                    for s in range(3)
                ]
                for handle in handles:
                    handle.result(timeout=10.0)
        # Every session's steps all landed on its owning replica.
        assert cluster.metrics.affinity_hit_rate() == 1.0
        for sid, owner in cluster.router.directory.items():
            cache = cluster.replicas[owner].session_cache
            assert cache.has_session(sid)
            assert cache.session(sid).context_len == 3

    def test_drain_finalizes_via_maintain(self):
        cluster = ServingCluster(
            lambda rid: EchoServable(),
            replicas=2,
            max_batch_size=4,
            max_wait_us=100.0,
            close_executors=False,
        )
        with cluster:
            handles = [cluster.submit(i) for i in range(8)]
            for handle in handles:
                handle.result(timeout=10.0)
            cluster.drain_replica(1)
            cluster.maintain()
            assert cluster.replicas[1].state == STOPPED
            assert [e.kind for e in cluster.metrics.events] == ["drain", "retire"]
            late = cluster.submit(99)
            assert late.result(timeout=10.0) == 198
            assert late.replica_id == 0
