"""Tests for the cluster front-end: manual (simulated-clock) regime."""

import numpy as np
import pytest

from repro.cluster import (
    FAILED,
    STOPPED,
    NoHealthyReplica,
    ServiceModel,
    ServingCluster,
)
from repro.serving import (
    DecodeServable,
    EngineClosed,
    QueueFull,
    ServingEngine,
    SimulatedClock,
)
from repro.workloads.llm import DecoderConfig


class EchoServable:
    """Doubles payloads; optionally fails for the retry paths."""

    name = "echo"

    def __init__(self, fail_times=0):
        self.fail_times = fail_times
        self.executed = 0

    def prepare(self, payload):
        return payload

    def execute(self, requests):
        self.executed += len(requests)
        if self.fail_times > 0:
            self.fail_times -= 1
            raise RuntimeError("photonic core fell over")
        return [2 * request.payload for request in requests]


def echo_cluster(replicas=2, **kwargs):
    kwargs.setdefault("clock", SimulatedClock())
    kwargs.setdefault("max_wait_us", 0.0)
    kwargs.setdefault("close_executors", False)
    return ServingCluster(lambda rid: EchoServable(), replicas=replicas, **kwargs)


DECODER = DecoderConfig("cluster-test", depth=2, dim=16, heads=2, mlp_ratio=2.0)


def decode_cluster(replicas=3, **kwargs):
    kwargs.setdefault("clock", SimulatedClock())
    kwargs.setdefault("max_wait_us", 0.0)
    kwargs.setdefault("close_executors", False)
    return ServingCluster(
        lambda rid: DecodeServable(DECODER, seed=0), replicas=replicas, **kwargs
    )


def decode_steps(sessions=4, rounds=3, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (f"s{s}", rng.normal(size=DECODER.dim))
        for _ in range(rounds)
        for s in range(sessions)
    ]


def sequential_decode(steps):
    engine = ServingEngine(
        DecodeServable(DECODER, seed=0),
        max_batch_size=1,
        max_wait_us=0.0,
        clock=SimulatedClock(),
    )
    with engine:
        handles = [engine.submit(x, session_id=sid) for sid, x in steps]
        engine.run_until_idle()
        return [handle.result(timeout=0) for handle in handles]


class TestSubmitAndStep:
    def test_results_resolve_across_replicas(self):
        with echo_cluster(replicas=3, max_batch_size=4) as cluster:
            handles = [cluster.submit(i) for i in range(10)]
            assert cluster.run_until_idle() == 10
            assert [h.result(timeout=0) for h in handles] == [2 * i for i in range(10)]
        assert cluster.metrics.completed == 10
        assert sum(cluster.metrics.dispatch_counts().values()) == 10
        assert all(h.replica_id is not None for h in handles)

    def test_round_robin_spreads_evenly(self):
        with echo_cluster(replicas=2, policy="round_robin", max_batch_size=8) as cluster:
            for i in range(8):
                cluster.submit(i)
            cluster.run_until_idle()
        assert cluster.metrics.dispatch_counts() == {0: 4, 1: 4}

    def test_tenant_counts_recorded(self):
        with echo_cluster(replicas=2) as cluster:
            cluster.submit(1, tenant="a")
            cluster.submit(2, tenant="a")
            cluster.submit(3, tenant="b")
            cluster.run_until_idle()
        assert cluster.metrics.tenant_counts() == {"a": 2, "b": 1}

    def test_step_requires_manual_mode(self):
        cluster = ServingCluster(
            lambda rid: EchoServable(), replicas=1, close_executors=False
        )
        with pytest.raises(RuntimeError, match="manual"):
            cluster.step()
        cluster.close()

    def test_queue_full_backpressure(self):
        with echo_cluster(replicas=1, queue_depth=2, max_batch_size=2) as cluster:
            cluster.submit(0)
            cluster.submit(1)
            with pytest.raises(QueueFull):
                cluster.submit(2)
            cluster.run_until_idle()
            cluster.submit(3)  # capacity freed

    def test_submit_after_close_raises(self):
        cluster = echo_cluster()
        cluster.close()
        with pytest.raises(EngineClosed):
            cluster.submit(1)

    def test_close_without_drain_fails_pending_handles(self):
        cluster = echo_cluster(replicas=2, max_batch_size=8)
        handles = [cluster.submit(i) for i in range(4)]
        cluster.close(drain=False)
        for handle in handles:
            assert isinstance(handle.exception(timeout=0), EngineClosed)


class TestBitExactRouting:
    @pytest.mark.parametrize(
        "policy", ["round_robin", "least_outstanding", "session_affinity"]
    )
    def test_decode_bit_identical_to_single_engine(self, policy):
        steps = decode_steps()
        reference = sequential_decode(steps)
        with decode_cluster(replicas=3, policy=policy, max_batch_size=4) as cluster:
            outputs = []
            for sid, x in steps:
                handle = cluster.submit(x, session_id=sid)
                cluster.step(force=True)
                outputs.append(handle.result(timeout=0))
        assert all(np.array_equal(a, b) for a, b in zip(reference, outputs))

    def test_affinity_beats_round_robin_on_hit_rate(self):
        steps = decode_steps(sessions=4, rounds=4)
        rates = {}
        for policy in ("round_robin", "session_affinity"):
            with decode_cluster(replicas=3, policy=policy, max_batch_size=4) as cluster:
                for sid, x in steps:
                    cluster.submit(x, session_id=sid)
                    cluster.step(force=True)
                rates[policy] = cluster.metrics.affinity_hit_rate()
        assert rates["session_affinity"] == 1.0
        assert rates["session_affinity"] > rates["round_robin"]

    def test_migration_moves_kv_state_and_counts_bytes(self):
        # 4 sessions on 3 replicas: round robin must move sessions.
        steps = decode_steps(sessions=4, rounds=3)
        with decode_cluster(replicas=3, policy="round_robin", max_batch_size=4) as cluster:
            for sid, x in steps:
                cluster.submit(x, session_id=sid)
                cluster.step(force=True)
            metrics = cluster.metrics
            assert metrics.migrations > 0
            assert metrics.migrated_bytes > 0
            # Every session's KV lives on exactly the replica the
            # directory names, with all its steps.
            for sid, owner_id in cluster.router.directory.items():
                cache = cluster.replicas[owner_id].session_cache
                assert cache.has_session(sid)
                assert cache.session(sid).context_len == 3
                others = [
                    r
                    for rid, r in cluster.replicas.items()
                    if rid != owner_id and r.session_cache is not None
                ]
                assert not any(r.session_cache.has_session(sid) for r in others)


class TestFailover:
    def test_failed_replica_requeues_without_losing_handles(self):
        steps = decode_steps(sessions=3, rounds=3)
        reference = sequential_decode(steps)
        with decode_cluster(replicas=3, policy="session_affinity") as cluster:
            handles = [cluster.submit(x, session_id=sid) for sid, x in steps]
            victim = cluster.router.directory["s1"]
            rerouted = cluster.fail_replica(victim)
            assert rerouted == 3  # all of s1's queued steps moved
            cluster.run_until_idle()
            outputs = [handle.result(timeout=0) for handle in handles]
        assert all(np.array_equal(a, b) for a, b in zip(reference, outputs))
        assert cluster.replicas[victim].state == FAILED
        assert cluster.metrics.failovers >= 3
        assert [e.kind for e in cluster.metrics.events] == ["replica_failed"]

    def test_failed_replica_sessions_are_rehomed_with_state(self):
        steps = decode_steps(sessions=3, rounds=2)
        with decode_cluster(replicas=3, policy="session_affinity") as cluster:
            for sid, x in steps:
                cluster.submit(x, session_id=sid)
                cluster.step(force=True)
            victim = cluster.router.directory["s0"]
            cluster.fail_replica(victim)
            new_owner = cluster.router.directory["s0"]
            assert new_owner != victim
            assert cluster.replicas[new_owner].session_cache.has_session("s0")
            assert cluster.metrics.sessions_rehomed >= 1

    def test_execution_error_retries_on_another_replica(self):
        servables = {}

        def factory(rid):
            servables[rid] = EchoServable(fail_times=1 if rid == 0 else 0)
            return servables[rid]

        cluster = ServingCluster(
            factory,
            replicas=2,
            policy="round_robin",
            max_batch_size=1,
            max_wait_us=0.0,
            clock=SimulatedClock(),
            max_retries=1,
            close_executors=False,
        )
        with cluster:
            handle = cluster.submit(21)  # round robin -> replica 0, which fails
            cluster.run_until_idle()
            assert handle.result(timeout=0) == 42
            assert handle.retries == 1
        assert cluster.metrics.retries == 1
        assert cluster.metrics.failed == 0

    def test_error_propagates_once_retries_exhausted(self):
        cluster = ServingCluster(
            lambda rid: EchoServable(fail_times=10),
            replicas=2,
            max_batch_size=1,
            max_wait_us=0.0,
            clock=SimulatedClock(),
            max_retries=1,
            close_executors=False,
        )
        with cluster:
            handle = cluster.submit(1)
            cluster.run_until_idle()
            with pytest.raises(RuntimeError, match="fell over"):
                handle.result(timeout=0)
        assert cluster.metrics.failed == 1

    def test_failing_last_replica_fails_requeued_handles(self):
        with echo_cluster(replicas=1, max_batch_size=8) as cluster:
            handle = cluster.submit(1)
            cluster.fail_replica(0)
            assert isinstance(handle.exception(timeout=0), NoHealthyReplica)


class TestDrainLifecycle:
    def test_drain_finishes_backlog_then_retires(self):
        with echo_cluster(replicas=2, max_batch_size=2) as cluster:
            handles = [cluster.submit(i) for i in range(6)]
            cluster.drain_replica(1)
            assert cluster.replicas[1].state == "draining"
            cluster.run_until_idle()
            assert [h.result(timeout=0) for h in handles] == [2 * i for i in range(6)]
            assert cluster.replicas[1].state == STOPPED
            kinds = [e.kind for e in cluster.metrics.events]
            assert kinds == ["drain", "retire"]
            # New work only lands on the survivor.
            survivor = cluster.submit(7)
            cluster.run_until_idle()
            assert survivor.result(timeout=0) == 14
            assert survivor.replica_id == 0

    def test_draining_replica_sessions_rehome_on_retire(self):
        steps = decode_steps(sessions=2, rounds=2)
        with decode_cluster(replicas=2, policy="session_affinity") as cluster:
            for sid, x in steps:
                cluster.submit(x, session_id=sid)
                cluster.step(force=True)
            victim = cluster.router.directory["s0"]
            cluster.drain_replica(victim)
            cluster.run_until_idle()
            assert cluster.replicas[victim].state == STOPPED
            new_owner = cluster.router.directory["s0"]
            assert new_owner != victim
            assert cluster.replicas[new_owner].session_cache.has_session("s0")


class TestVirtualTime:
    def test_service_model_requires_simulated_clock(self):
        with pytest.raises(ValueError, match="SimulatedClock"):
            ServingCluster(
                lambda rid: EchoServable(),
                replicas=1,
                service_model=ServiceModel(),
                close_executors=False,
            )

    def test_virtual_stamps_follow_the_service_model(self):
        model = ServiceModel(base_s=1e-3, per_request_s=0.5e-3)
        with echo_cluster(replicas=1, max_batch_size=2, service_model=model) as cluster:
            handles = [cluster.submit(i) for i in range(4)]
            cluster.run_until_idle()
            # Two batches of 2, back to back: [0, 2e-3) and [2e-3, 4e-3).
            assert handles[0].started == 0.0
            assert handles[0].finished == pytest.approx(2e-3)
            assert handles[1].finished == pytest.approx(2e-3)
            assert handles[2].started == pytest.approx(2e-3)
            assert handles[3].finished == pytest.approx(4e-3)
            assert cluster.metrics.throughput() == pytest.approx(4 / 4e-3)

    def test_replicas_overlap_in_virtual_time(self):
        """The fleet-scaling mechanism: N replicas drain N times faster."""
        model = ServiceModel(base_s=1e-3, per_request_s=0.0)

        def makespan(replicas):
            with echo_cluster(
                replicas=replicas, max_batch_size=1, service_model=model
            ) as cluster:
                for i in range(8):
                    cluster.submit(i)
                cluster.run_until_idle()
                records = cluster.metrics.records()
                return max(r.finished for r in records)

        assert makespan(1) == pytest.approx(8e-3)
        assert makespan(2) == pytest.approx(4e-3)
        assert makespan(4) == pytest.approx(2e-3)


class TestSnapshot:
    def test_snapshot_is_json_shaped(self):
        import json

        with echo_cluster(replicas=2) as cluster:
            cluster.submit(1, tenant="a")
            cluster.run_until_idle()
            snapshot = cluster.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["completed"] == 1
        assert snapshot["fleet_size"] == 2
        assert set(snapshot["replicas"]) == {"0", "1"}
        assert "engines" in snapshot
