"""Tests for SLO-driven autoscaling (deterministic, simulated clock)."""

import pytest

from repro.cluster import AutoscalerPolicy, ServiceModel, ServingCluster
from repro.serving import SimulatedClock


class EchoServable:
    name = "echo"

    def prepare(self, payload):
        return payload

    def execute(self, requests):
        return [2 * request.payload for request in requests]


def scaled_cluster(policy: AutoscalerPolicy, *, clock=None, **kwargs):
    kwargs.setdefault("max_batch_size", 2)
    kwargs.setdefault("max_wait_us", 0.0)
    kwargs.setdefault("service_model", ServiceModel(base_s=1e-3, per_request_s=0.0))
    return ServingCluster(
        lambda rid: EchoServable(),
        replicas=policy.min_replicas,
        policy="least_outstanding",
        clock=clock if clock is not None else SimulatedClock(),
        autoscaler=policy,
        close_executors=False,
        **kwargs,
    )


class TestPolicyValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="min_replicas"):
            AutoscalerPolicy(min_replicas=0)
        with pytest.raises(ValueError, match="max_replicas"):
            AutoscalerPolicy(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError, match="backlog"):
            AutoscalerPolicy(high_backlog=1.0, low_backlog=1.0)
        with pytest.raises(ValueError, match="cooldown"):
            AutoscalerPolicy(cooldown_s=-1.0)
        with pytest.raises(ValueError, match="latency_slo_s"):
            AutoscalerPolicy(latency_slo_s=0.0)


class TestScaleUp:
    def test_backlog_above_watermark_grows_the_fleet(self):
        policy = AutoscalerPolicy(min_replicas=1, max_replicas=3, high_backlog=2.0)
        with scaled_cluster(policy) as cluster:
            for i in range(6):  # backlog 6 on one replica
                cluster.submit(i)
            cluster.maintain()
            assert cluster.fleet_size == 2
            events = cluster.metrics.events
            assert [e.kind for e in events] == ["scale_up"]
            assert "backlog" in events[0].reason
            cluster.run_until_idle()

    def test_scale_up_respects_max_replicas_and_cooldown(self):
        clock = SimulatedClock()
        policy = AutoscalerPolicy(
            min_replicas=1, max_replicas=2, high_backlog=1.0, cooldown_s=10.0
        )
        with scaled_cluster(policy, clock=clock) as cluster:
            for i in range(8):
                cluster.submit(i)
            cluster.maintain()
            assert cluster.fleet_size == 2
            cluster.maintain()  # cooldown holds, and max reached anyway
            assert cluster.fleet_size == 2
            clock.advance(20.0)
            cluster.maintain()  # cooldown expired but max_replicas caps
            assert cluster.fleet_size == 2
            cluster.run_until_idle()

    def test_latency_slo_breach_triggers_scale_up(self):
        # Service takes 10 ms/batch but the SLO is 5 ms: backlog never
        # exceeds the watermark, yet p95 latency breaches.
        policy = AutoscalerPolicy(
            min_replicas=1,
            max_replicas=2,
            high_backlog=100.0,
            latency_slo_s=5e-3,
        )
        with scaled_cluster(
            policy, service_model=ServiceModel(base_s=10e-3, per_request_s=0.0)
        ) as cluster:
            cluster.submit(1)
            cluster.step()  # completes with latency 10 ms, then evaluates
            assert cluster.fleet_size == 2
            assert any(
                "SLO" in event.reason for event in cluster.metrics.events
            )


class TestScaleDown:
    def test_idle_fleet_drains_to_min(self):
        clock = SimulatedClock()
        policy = AutoscalerPolicy(
            min_replicas=1, max_replicas=3, high_backlog=2.0, low_backlog=0.5
        )
        with scaled_cluster(policy, clock=clock) as cluster:
            cluster.add_replica("test")
            cluster.add_replica("test")
            assert cluster.fleet_size == 3
            for _ in range(4):  # idle ticks: drain one per tick
                clock.advance(1.0)
                cluster.step()
            assert cluster.fleet_size == 1
            kinds = [e.kind for e in cluster.metrics.events]
            assert kinds.count("drain") == 2
            assert kinds.count("retire") == 2
            states = sorted(r.state for r in cluster.replicas.values())
            assert states == ["healthy", "stopped", "stopped"]

    def test_highest_id_replica_drains_first(self):
        clock = SimulatedClock()
        policy = AutoscalerPolicy(min_replicas=1, max_replicas=3, low_backlog=0.5)
        with scaled_cluster(policy, clock=clock) as cluster:
            cluster.add_replica("test")
            clock.advance(1.0)
            cluster.step()
            drain = next(
                e for e in cluster.metrics.events if e.kind == "drain"
            )
            assert drain.replica_id == 1


class TestDeterminism:
    def trajectory(self):
        clock = SimulatedClock()
        # Virtual-time regime: executed batches resolve at step time, so
        # queue depth stays flat — the latency SLO is the scale-up
        # signal (virtual latency grows as busy_until outruns arrivals).
        policy = AutoscalerPolicy(
            min_replicas=1,
            max_replicas=4,
            high_backlog=50.0,
            low_backlog=0.5,
            latency_slo_s=2e-3,
            cooldown_s=0.5e-3,
        )
        with scaled_cluster(policy, clock=clock) as cluster:
            # Burst: arrivals far faster than one replica serves.
            for i in range(24):
                clock.advance(0.1e-3)
                cluster.submit(i)
                cluster.step(force=False)
            cluster.run_until_idle()
            # Quiet tail: the fleet drains back down.
            for _ in range(6):
                clock.advance(5e-3)
                cluster.step()
            return (
                [(e.time, e.kind, e.replica_id, e.fleet_size) for e in cluster.metrics.events],
                cluster.fleet_size,
            )

    def test_scaling_trajectory_is_reproducible_and_complete(self):
        events_a, fleet_a = self.trajectory()
        events_b, fleet_b = self.trajectory()
        assert events_a == events_b
        assert fleet_a == fleet_b == 1
        kinds = [kind for _, kind, _, _ in events_a]
        assert "scale_up" in kinds and "drain" in kinds and "retire" in kinds


class FakeMonitor:
    """Stands in for an SLOMonitor: a scriptable firing() feed."""

    def __init__(self, alerting=()):
        self.alerting = list(alerting)
        self.ticks = []

    def firing(self):
        return list(self.alerting)

    def tick(self, now):
        self.ticks.append(now)
        return []


class TestSLOAlertSignal:
    def test_firing_alert_forces_scale_up(self):
        policy = AutoscalerPolicy(
            min_replicas=1, max_replicas=3, high_backlog=100.0
        )
        with scaled_cluster(policy) as cluster:
            cluster.autoscaler.slo_monitor = FakeMonitor(["p95-latency"])
            cluster.maintain()  # idle fleet, but the burn alert is firing
            assert cluster.fleet_size == 2
            (event,) = cluster.metrics.events
            assert event.kind == "scale_up"
            assert event.reason == "SLO burn-rate alert: p95-latency"

    def test_firing_alert_vetoes_drain(self):
        policy = AutoscalerPolicy(
            min_replicas=1, max_replicas=2, high_backlog=100.0
        )
        with scaled_cluster(policy) as cluster:
            monitor = FakeMonitor(["availability"])
            cluster.autoscaler.slo_monitor = monitor
            cluster.maintain()
            assert cluster.fleet_size == 2  # alert scaled the fleet up
            cluster.maintain()  # at max, idle — but draining is vetoed
            assert cluster.fleet_size == 2
            monitor.alerting.clear()
            cluster.maintain()  # alert resolved: the idle fleet drains
            kinds = [e.kind for e in cluster.metrics.events]
            assert kinds == ["scale_up", "drain", "retire"]

    def test_maintain_ticks_the_wired_monitor(self):
        policy = AutoscalerPolicy(min_replicas=1, high_backlog=100.0)
        clock = SimulatedClock()
        monitor = FakeMonitor()
        with scaled_cluster(policy, clock=clock) as cluster:
            cluster.slo_monitor = monitor
            cluster.maintain()
            clock.advance(1e-3)
            cluster.maintain()
        assert monitor.ticks == [0.0, 1e-3]
