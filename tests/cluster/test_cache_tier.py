"""Cluster-level shared cache tier: fleet-wide memo hits that survive
any routing policy, prefix-fork adoption (shared and private), cache-
aware placement, failover custody of chains and swapped sessions, and
adopt/release properties that never orphan or double-free KV pages."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterConfig,
    ServingCluster,
    SharedCacheTier,
)
from repro.serving import (
    DecodeServable,
    EngineConfig,
    IterationCost,
    ServingEngine,
    SessionCache,
    SimulatedClock,
    decode_payload,
)
from repro.workloads.llm import DecoderConfig, kv_cache_bytes

DECODER = DecoderConfig("tier-test", depth=2, dim=16, heads=2, mlp_ratio=2.0)
COST = IterationCost(base_s=2e-4, per_request_s=5e-5)
BLOCK = 2
PROMPT = 4  # page-aligned: two BLOCK-token pages
PREFIX = "sys"


class EchoServable:
    name = "echo"

    def prepare(self, payload):
        return payload

    def execute(self, requests):
        return [2 * request.payload for request in requests]


def echo_tier_cluster(replicas=2, policy="round_robin", *, shared=True):
    config = ClusterConfig(
        replicas=replicas,
        policy=policy,
        engine=EngineConfig(max_wait_us=0.0),
        shared_cache=shared,
        memo_bytes=1 << 20,
        close_executors=False,
    )
    return ServingCluster(
        lambda rid: EchoServable(), config=config, clock=SimulatedClock()
    )


def decode_tier_cluster(
    replicas=3, policy="cache_aware", *, share=True, kv_capacity_bytes=None
):
    engine = EngineConfig(
        max_batch_size=4,
        max_wait_us=0.0,
        queue_depth=256,
        scheduler="continuous",
        iteration_cost=COST,
        block_size=BLOCK,
        kv_capacity_bytes=kv_capacity_bytes,
        seed=0,
    )
    config = ClusterConfig(
        replicas=replicas,
        policy=policy,
        engine=engine,
        shared_cache=True,
        share_prefixes=share,
        close_executors=False,
    )
    cluster = ServingCluster(
        lambda rid: DecodeServable(
            DECODER, seed=0, block_size=BLOCK, kv_capacity_bytes=kv_capacity_bytes
        ),
        config=config,
        clock=SimulatedClock(),
    )
    cluster.register_prefix(PREFIX, PROMPT)
    return cluster


def payload_fn(i, t):
    return decode_payload(9, i, t, DECODER.dim)


def solo_reference(session_steps):
    """Each session decoded alone with its prompt pre-opened."""
    outputs = {}
    for i, (sid, steps) in enumerate(sorted(session_steps.items())):
        servable = DecodeServable(DECODER, seed=0, block_size=BLOCK)
        engine = ServingEngine(
            servable,
            config=EngineConfig(max_batch_size=1, max_wait_us=0.0),
            clock=SimulatedClock(),
        )
        with engine:
            servable.cache.open_session(sid, prompt_len=PROMPT)
            outs = []
            for t in range(steps):
                handle = engine.submit(payload_fn(i, t), session_id=sid)
                engine.step()
                outs.append(handle.result(timeout=0))
            outputs[sid] = outs
    return outputs


def owner_of(cluster, session_id):
    for replica in cluster.replicas.values():
        cache = replica.session_cache
        if replica.alive and cache is not None and cache.has_session(session_id):
            return replica
    return None


class TestFleetMemo:
    def test_hit_crosses_replicas_under_round_robin(self):
        with echo_tier_cluster(shared=True) as cluster:
            first = cluster.submit(np.ones(4), cache_key="k")
            cluster.run_until_idle()
            np.testing.assert_array_equal(first.result(timeout=0), 2 * np.ones(4))
            # Round-robin sends the repeat to the *other* replica; the
            # tier hit resolves it at submit, before any dispatch.
            second = cluster.submit(np.ones(4), cache_key="k")
            np.testing.assert_array_equal(second.result(timeout=0), 2 * np.ones(4))
            assert cluster.tier.hits == 1
            snapshot = cluster.snapshot()
            assert snapshot["cache"]["hits"] == 1
            assert snapshot["cache"]["hit_rate"] == 0.5
            assert snapshot["tier"]["hits"] == 1

    def test_private_memos_forfeit_the_cross_replica_hit(self):
        with echo_tier_cluster(shared=False) as cluster:
            cluster.submit(np.ones(4), cache_key="k")
            cluster.run_until_idle()
            repeat = cluster.submit(np.ones(4), cache_key="k")
            cluster.run_until_idle()
            np.testing.assert_array_equal(repeat.result(timeout=0), 2 * np.ones(4))
            assert cluster.snapshot()["cache"]["hits"] == 0

    def test_hit_values_are_isolated(self):
        with echo_tier_cluster(shared=True) as cluster:
            first = cluster.submit(np.ones(4), cache_key="k")
            cluster.run_until_idle()
            first.result(timeout=0)[:] = 99  # caller scribbles on it
            second = cluster.submit(np.ones(4), cache_key="k")
            np.testing.assert_array_equal(second.result(timeout=0), 2 * np.ones(4))


class TestPrefixRegistration:
    def test_submit_requires_registered_prefix(self):
        with decode_tier_cluster() as cluster:
            with pytest.raises(ValueError, match="unregistered prefix"):
                cluster.submit(
                    payload_fn(0, 0), session_id="s", prefix_id="ghost"
                )

    def test_prefix_requires_session(self):
        with decode_tier_cluster() as cluster:
            with pytest.raises(ValueError, match="session_id"):
                cluster.submit(payload_fn(0, 0), prefix_id=PREFIX)

    def test_reregister_idempotent_but_length_strict(self):
        with decode_tier_cluster() as cluster:
            cluster.register_prefix(PREFIX, PROMPT)  # same length: fine
            with pytest.raises(ValueError):
                cluster.register_prefix(PREFIX, PROMPT + 1)

    def test_sharing_needs_decoder_replicas(self):
        config = ClusterConfig(
            replicas=1,
            engine=EngineConfig(max_wait_us=0.0),
            shared_cache=True,
            close_executors=False,
        )
        with ServingCluster(
            lambda rid: EchoServable(), config=config, clock=SimulatedClock()
        ) as cluster:
            with pytest.raises(ValueError, match="SessionCache"):
                cluster.register_prefix(PREFIX, PROMPT)


class TestPrefixAdoption:
    def test_shared_forks_alias_the_chain(self):
        with decode_tier_cluster() as cluster:
            for i, sid in enumerate(("a", "b")):
                cluster.submit(payload_fn(i, 0), session_id=sid, prefix_id=PREFIX)
            cluster.run_until_idle()
            assert cluster.tier.refcount(PREFIX) == 2
            snapshot = cluster.snapshot()
            assert snapshot["prefixes"]["shared_adoptions"] == 2
            assert snapshot["prefixes"]["private_adoptions"] == 0
            chain = cluster.tier.prefix(PREFIX)
            for sid in ("a", "b"):
                session = owner_of(cluster, sid).session_cache.session(sid)
                assert session.prefix_id == PREFIX
                assert session.shared_blocks == chain.n_blocks
                # the leading pages ARE the chain's pages, not copies
                for own, shared in zip(session.blocks, chain.blocks):
                    assert own is shared
                assert session.private_blocks == 1  # one generated token

    def test_private_mode_materializes_prompts(self):
        with decode_tier_cluster(share=False) as cluster:
            cluster.submit(payload_fn(0, 0), session_id="a", prefix_id=PREFIX)
            cluster.run_until_idle()
            assert cluster.tier.prefix(PREFIX) is None  # no chain built
            snapshot = cluster.snapshot()
            assert snapshot["prefixes"]["shared_adoptions"] == 0
            assert snapshot["prefixes"]["private_adoptions"] == 1
            session = owner_of(cluster, "a").session_cache.session("a")
            assert session.shared_blocks == 0
            assert session.prompt_len == PROMPT

    @pytest.mark.parametrize("share", [True, False])
    def test_forked_sessions_bit_equal_solo(self, share):
        steps = {"a": 3, "b": 2, "c": 4}
        reference = solo_reference(steps)
        with decode_tier_cluster(share=share) as cluster:
            outputs = {sid: [] for sid in steps}
            for t in range(max(steps.values())):
                handles = {
                    sid: cluster.submit(
                        payload_fn(i, t), session_id=sid, prefix_id=PREFIX
                    )
                    for i, (sid, n) in enumerate(sorted(steps.items()))
                    if t < n
                }
                cluster.run_until_idle()
                for sid, handle in handles.items():
                    outputs[sid].append(handle.result(timeout=0))
        for sid in steps:
            for got, want in zip(outputs[sid], reference[sid]):
                np.testing.assert_array_equal(got, want)

    def test_release_returns_chain_refs_and_pages(self):
        with decode_tier_cluster() as cluster:
            for i, sid in enumerate(("a", "b")):
                cluster.submit(payload_fn(i, 0), session_id=sid, prefix_id=PREFIX)
            cluster.run_until_idle()
            for sid in ("a", "b"):
                cluster.release_session(sid)
            assert cluster.tier.refcount(PREFIX) == 0
            assert cluster.tier.replicas_holding(PREFIX) == []
            assert all(
                r.session_cache.pool.in_use == 0
                for r in cluster.replicas.values()
                if r.session_cache is not None
            )
            # the chain survives for the next fork
            cluster.submit(payload_fn(5, 0), session_id="c", prefix_id=PREFIX)
            cluster.run_until_idle()
            assert cluster.tier.refcount(PREFIX) == 1


class TestCacheAwarePlacement:
    def test_forks_colocate_with_the_chain_holder(self):
        with decode_tier_cluster(policy="cache_aware") as cluster:
            cluster.submit(payload_fn(0, 0), session_id="a", prefix_id=PREFIX)
            cluster.run_until_idle()
            anchor = owner_of(cluster, "a")
            for i, sid in enumerate(("b", "c"), start=1):
                cluster.submit(payload_fn(i, 0), session_id=sid, prefix_id=PREFIX)
            cluster.run_until_idle()
            assert owner_of(cluster, "b") is anchor
            assert owner_of(cluster, "c") is anchor
            assert cluster.tier.replicas_holding(PREFIX) == [anchor.replica_id]

    def test_round_robin_spreads_the_same_forks(self):
        with decode_tier_cluster(policy="round_robin") as cluster:
            for i, sid in enumerate(("a", "b", "c")):
                cluster.submit(payload_fn(i, 0), session_id=sid, prefix_id=PREFIX)
            cluster.run_until_idle()
            assert len(cluster.tier.replicas_holding(PREFIX)) == 3


class TestFailoverCustody:
    def test_holders_move_with_rehomed_sessions(self):
        steps = {"a": 4, "b": 4}
        reference = solo_reference(steps)
        with decode_tier_cluster(policy="cache_aware") as cluster:
            outputs = {sid: [] for sid in steps}
            for t in range(2):
                handles = {
                    sid: cluster.submit(
                        payload_fn(i, t), session_id=sid, prefix_id=PREFIX
                    )
                    for i, sid in enumerate(sorted(steps))
                }
                cluster.run_until_idle()
                for sid, handle in handles.items():
                    outputs[sid].append(handle.result(timeout=0))
            anchor = owner_of(cluster, "a")
            assert owner_of(cluster, "b") is anchor
            cluster.fail_replica(anchor.replica_id)
            target = owner_of(cluster, "a")
            assert target is not None and target is not anchor
            assert cluster.tier.replicas_holding(PREFIX) == [target.replica_id]
            assert cluster.tier.refcount(PREFIX) == 2
            for t in range(2, 4):
                handles = {
                    sid: cluster.submit(
                        payload_fn(i, t), session_id=sid, prefix_id=PREFIX
                    )
                    for i, sid in enumerate(sorted(steps))
                }
                cluster.run_until_idle()
                for sid, handle in handles.items():
                    outputs[sid].append(handle.result(timeout=0))
        for sid in steps:
            for got, want in zip(outputs[sid], reference[sid]):
                np.testing.assert_array_equal(got, want)

    def test_rehome_to_nobody_releases_the_chain(self):
        with decode_tier_cluster(replicas=1) as cluster:
            cluster.submit(payload_fn(0, 0), session_id="a", prefix_id=PREFIX)
            cluster.run_until_idle()
            assert cluster.tier.refcount(PREFIX) == 1
            cluster.fail_replica(0)
            # No survivor could adopt: the ref must not leak as pinned.
            assert cluster.tier.refcount(PREFIX) == 0
            assert cluster.tier.replicas_holding(PREFIX) == []


class TestSwappedSessionFailover:
    """Regression: a preempted (swapped-out) session that fails over
    must keep its ``swapped`` flag through pop/adopt, so the target
    pool is never charged for pages that are not resident."""

    def test_no_double_charge_and_bit_equal(self):
        capacity = kv_cache_bytes(DECODER, 2 * BLOCK)  # two private pages
        steps = {"a": 4, "b": 3}
        reference = solo_reference(steps)
        with decode_tier_cluster(
            policy="cache_aware", kv_capacity_bytes=capacity
        ) as cluster:
            outputs = {sid: [] for sid in steps}

            def run_step(sid, i, t):
                handle = cluster.submit(
                    payload_fn(i, t), session_id=sid, prefix_id=PREFIX
                )
                cluster.run_until_idle()
                outputs[sid].append(handle.result(timeout=0))

            for t in range(2):  # each session fills one private page
                run_step("a", 0, t)
                run_step("b", 1, t)
            run_step("a", 0, 2)  # needs a second page: preempts "b"
            anchor = owner_of(cluster, "a")
            source_cache = anchor.session_cache
            assert source_cache.session("b").swapped
            assert source_cache.pool.in_use == 2
            cluster.fail_replica(anchor.replica_id)
            target = owner_of(cluster, "a")
            cache = target.session_cache
            assert cache.session("b").swapped  # flag survived the move
            assert cache.pool.in_use == 2  # only "a" is resident
            assert cache.resident_kv_bytes() == cache.pool.in_use_bytes
            run_step("b", 1, 2)  # swaps "b" back in (and "a" out)
            run_step("a", 0, 3)
            assert cache.resident_kv_bytes() == cache.pool.in_use_bytes
        for sid in steps:
            assert len(outputs[sid]) == steps[sid]
            for got, want in zip(outputs[sid], reference[sid]):
                np.testing.assert_array_equal(got, want)


class TestSnapshotTier:
    def test_snapshot_reports_tier_stats(self):
        with decode_tier_cluster() as cluster:
            cluster.submit(payload_fn(0, 0), session_id="a", prefix_id=PREFIX)
            cluster.run_until_idle()
            snapshot = cluster.snapshot()
            tier = snapshot["tier"]
            assert tier["prefixes"] == 1
            assert tier["referenced_prefixes"] == 1
            assert tier["shared_bytes"] == cluster.tier.shared_bytes
            assert snapshot["cache"]["hit_rate"] == 0.0

    def test_untiered_cluster_has_no_tier_section(self):
        with echo_tier_cluster(shared=False) as cluster:
            assert "tier" not in cluster.snapshot()


class TestAdoptReleaseProperties:
    """Random adopt/append/close interleavings across three replica
    caches: the chain's pages must never enter a pool free list (no
    double-free) and every private page must be released (no orphans)."""

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=24,
        )
    )
    def test_never_orphans_or_double_frees(self, ops):
        tier = SharedCacheTier()
        chain = tier.ensure_prefix(PREFIX, PROMPT, config=DECODER, block_size=BLOCK)
        chain_ids = {id(block) for block in chain.blocks}
        fills = [block.fill for block in chain.blocks]
        caches = [SessionCache(DECODER, block_size=BLOCK) for _ in range(3)]
        open_sessions = []
        counter = 0
        token = np.ones(DECODER.dim)

        def check():
            assert tier.refcount(PREFIX) == len(open_sessions)
            for i, cache in enumerate(caches):
                private = sum(
                    cache.session(sid).private_blocks
                    for r, sid in open_sessions
                    if r == i
                )
                assert cache.pool.in_use == private
                assert all(id(b) not in chain_ids for b in cache.pool._free)
            assert [block.fill for block in chain.blocks] == fills

        for replica, action in ops:
            if action == 0 and open_sessions:
                r, sid = open_sessions.pop(0)
                caches[r].close_session(sid)
                tier.release_prefix(PREFIX, r)
            else:
                sid = f"s{counter}"
                counter += 1
                caches[replica].adopt_prefix(
                    sid, tier.acquire_prefix(PREFIX, replica)
                )
                for _ in range(max(1, action) - 1):
                    caches[replica].append_kv(sid, token, token)
                open_sessions.append((replica, sid))
            check()
        while open_sessions:
            r, sid = open_sessions.pop(0)
            caches[r].close_session(sid)
            tier.release_prefix(PREFIX, r)
        check()
        assert all(cache.pool.in_use == 0 for cache in caches)
