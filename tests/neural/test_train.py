"""Tests for the optimizer, datasets, and training loop."""

import numpy as np
import pytest

from repro.neural import (
    Adam,
    Dataset,
    PhotonicExecutor,
    Tensor,
    TinyBERT,
    TinyViT,
    evaluate,
    striped_image_dataset,
    token_order_dataset,
    train_classifier,
    train_classifier_reference,
)


class TestAdam:
    def test_minimises_quadratic(self):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        optimizer = Adam([x], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            optimizer.step()
        assert np.allclose(x.data, 0.0, atol=1e-3)

    def test_skips_parameters_without_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        optimizer = Adam([x], lr=0.1)
        optimizer.step()  # no gradient accumulated -> no change
        assert np.allclose(x.data, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)
        with pytest.raises(ValueError):
            Adam([Tensor(np.ones(1), requires_grad=True)], lr=0.0)


class TestDatasets:
    def test_striped_images_shape_and_range(self):
        data = striped_image_dataset(n_samples=50, image_size=16, n_classes=4)
        assert data.inputs.shape == (50, 16, 16)
        assert np.max(np.abs(data.inputs)) <= 1.0
        assert data.labels.shape == (50,)
        assert data.n_classes == 4

    def test_striped_images_deterministic(self):
        a = striped_image_dataset(n_samples=10, seed=5)
        b = striped_image_dataset(n_samples=10, seed=5)
        assert np.allclose(a.inputs, b.inputs)
        assert np.array_equal(a.labels, b.labels)

    def test_token_order_markers_present(self):
        data = token_order_dataset(n_samples=30, seq_len=12)
        for sequence, label in zip(data.inputs, data.labels):
            assert sequence[0] == 0  # CLS
            (pos_a,) = np.where(sequence == 1)[0:1]
            positions_1 = np.where(sequence == 1)[0]
            positions_2 = np.where(sequence == 2)[0]
            assert len(positions_1) == 1 and len(positions_2) == 1
            assert label == int(positions_1[0] < positions_2[0])

    def test_token_order_balanced(self):
        data = token_order_dataset(n_samples=400, seed=0)
        assert 0.4 < data.labels.mean() < 0.6

    def test_split(self):
        data = striped_image_dataset(n_samples=50)
        train, test = data.split(0.8)
        assert len(train) == 40 and len(test) == 10

    def test_split_validation(self):
        data = striped_image_dataset(n_samples=10)
        with pytest.raises(ValueError):
            data.split(0.0)

    def test_dataset_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(2, dtype=int), 2)
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.array([0, 1, 5]), 2)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            striped_image_dataset(n_samples=0)
        with pytest.raises(ValueError):
            token_order_dataset(seq_len=2)


class TestTrainingLoop:
    def test_vit_learns_stripes(self):
        """End-to-end: the ViT separates grating orientations."""
        data = striped_image_dataset(n_samples=120, n_classes=4, seed=1)
        train, test = data.split(0.75)
        model = TinyViT(n_classes=4, depth=1, seed=0)
        result = train_classifier(model, train, epochs=4, lr=5e-3, seed=0)
        assert result.losses[-1] < result.losses[0]
        assert evaluate(model, test) > 0.7

    def test_bert_learns_token_order(self):
        data = token_order_dataset(n_samples=200, seq_len=10, seed=2)
        train, test = data.split(0.8)
        model = TinyBERT(seq_len=10, depth=2, seed=0)
        result = train_classifier(model, train, epochs=8, lr=5e-3, seed=0)
        assert result.losses[-1] < result.losses[0]
        assert evaluate(model, test) > 0.8

    def test_noise_aware_training_runs(self):
        """Training with the noisy forward (paper's noise-aware recipe)."""
        data = striped_image_dataset(n_samples=40, n_classes=2, seed=3)
        model = TinyViT(
            n_classes=2, depth=1, executor=PhotonicExecutor.paper_default(seed=0),
            seed=0,
        )
        result = train_classifier(model, data, epochs=2, lr=5e-3, seed=0)
        assert result.losses[-1] < result.losses[0]

    def test_training_validation(self):
        data = striped_image_dataset(n_samples=10)
        model = TinyViT(depth=1)
        with pytest.raises(ValueError):
            train_classifier(model, data, epochs=0)


class TestBatchedLoopEquivalence:
    """The batched minibatch loop reproduces the seed per-sample loop."""

    def test_vit_losses_match_reference_exactly(self):
        data = striped_image_dataset(n_samples=24, n_classes=4, seed=1)
        batched = train_classifier(
            TinyViT(n_classes=4, depth=1, seed=0), data, epochs=2, lr=5e-3, seed=0
        )
        reference = train_classifier_reference(
            TinyViT(n_classes=4, depth=1, seed=0), data, epochs=2, lr=5e-3, seed=0
        )
        assert batched.losses == pytest.approx(reference.losses, abs=1e-10)
        assert batched.train_accuracy == reference.train_accuracy

    def test_bert_losses_match_reference_exactly(self):
        data = token_order_dataset(n_samples=24, seq_len=8, seed=2)
        batched = train_classifier(
            TinyBERT(seq_len=8, depth=1, seed=0), data, epochs=2, lr=5e-3, seed=0
        )
        reference = train_classifier_reference(
            TinyBERT(seq_len=8, depth=1, seed=0), data, epochs=2, lr=5e-3, seed=0
        )
        assert batched.losses == pytest.approx(reference.losses, abs=1e-10)

    def test_ragged_final_minibatch(self):
        """Dataset size not divisible by batch_size trains fine."""
        data = striped_image_dataset(n_samples=19, n_classes=2, seed=4)
        result = train_classifier(
            TinyViT(n_classes=2, depth=1, seed=0),
            data,
            epochs=1,
            batch_size=8,
            seed=0,
        )
        assert len(result.losses) == 1

    def test_sharded_executor_training_runs(self):
        """Noise-aware training through a multi-core sharded executor."""
        data = striped_image_dataset(n_samples=24, n_classes=2, seed=3)
        model = TinyViT(
            n_classes=2,
            depth=1,
            executor=PhotonicExecutor.paper_default(seed=0, num_cores=2),
            seed=0,
        )
        result = train_classifier(model, data, epochs=2, lr=5e-3, seed=0)
        assert result.losses[-1] < result.losses[0]


class TestEvaluate:
    def test_evaluate_restores_training_mode(self):
        data = striped_image_dataset(n_samples=5, n_classes=2)
        model = TinyViT(n_classes=2, depth=1)
        model.train()
        evaluate(model, data)
        assert model.training

    def test_accuracy_in_unit_interval(self):
        data = striped_image_dataset(n_samples=8, n_classes=2)
        model = TinyViT(n_classes=2, depth=1)
        assert 0.0 <= evaluate(model, data) <= 1.0

    def test_batched_matches_per_sample_accuracy(self):
        data = striped_image_dataset(n_samples=11, n_classes=2, seed=6)
        model = TinyViT(n_classes=2, depth=1, seed=0)
        model.eval()
        correct = sum(
            int(np.argmax(model(inputs).data) == label)
            for inputs, label in zip(data.inputs, data.labels)
        )
        assert evaluate(model, data, batch_size=4) == correct / len(data)

    def test_evaluate_validation(self):
        data = striped_image_dataset(n_samples=4, n_classes=2)
        with pytest.raises(ValueError):
            evaluate(TinyViT(n_classes=2, depth=1), data, batch_size=0)
