"""Tests for attention, encoder blocks, and the tiny model zoo."""

import math

import numpy as np
import pytest

from repro.neural import (
    EncoderBlock,
    MultiHeadAttention,
    PhotonicExecutor,
    Tensor,
    TinyBERT,
    TinyViT,
    no_grad,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def reference_attention(x, wqkv, bqkv, wproj, bproj, heads):
    """Plain-numpy multi-head attention for cross-checking."""
    tokens, dim = x.shape
    head_dim = dim // heads
    qkv = (x @ wqkv + bqkv).reshape(tokens, 3, heads, head_dim)
    qkv = qkv.transpose(1, 2, 0, 3)
    q, k, v = qkv[0], qkv[1], qkv[2]
    out = np.empty((heads, tokens, head_dim))
    for h in range(heads):
        scores = q[h] @ k[h].T / math.sqrt(head_dim)
        scores -= scores.max(axis=-1, keepdims=True)
        weights = np.exp(scores)
        weights /= weights.sum(axis=-1, keepdims=True)
        out[h] = weights @ v[h]
    merged = out.transpose(1, 0, 2).reshape(tokens, dim)
    return merged @ wproj + bproj


class TestMultiHeadAttention:
    def test_matches_reference(self, rng):
        mha = MultiHeadAttention(8, 2, rng=rng)
        x = rng.normal(size=(5, 8))
        expected = reference_attention(
            x,
            mha.qkv.weight.data,
            mha.qkv.bias.data,
            mha.proj.weight.data,
            mha.proj.bias.data,
            heads=2,
        )
        assert np.allclose(mha(Tensor(x)).data, expected, atol=1e-10)

    def test_output_shape(self, rng):
        mha = MultiHeadAttention(12, 3, rng=rng)
        assert mha(Tensor(rng.normal(size=(7, 12)))).shape == (7, 12)

    def test_gradients_flow(self, rng):
        mha = MultiHeadAttention(8, 2, rng=rng)
        out = mha(Tensor(rng.normal(size=(4, 8))))
        (out * out).sum().backward()
        assert all(p.grad is not None for p in mha.parameters())

    def test_dim_heads_validation(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_noisy_executor_perturbs(self, rng):
        ideal = MultiHeadAttention(8, 2, rng=np.random.default_rng(1))
        noisy = MultiHeadAttention(
            8, 2, executor=PhotonicExecutor.paper_default(seed=0),
            rng=np.random.default_rng(1),
        )
        noisy.qkv.weight.data = ideal.qkv.weight.data.copy()
        noisy.qkv.bias.data = ideal.qkv.bias.data.copy()
        noisy.proj.weight.data = ideal.proj.weight.data.copy()
        noisy.proj.bias.data = ideal.proj.bias.data.copy()
        x = Tensor(rng.normal(size=(5, 8)))
        assert not np.allclose(ideal(x).data, noisy(x).data)


class TestBatchedAttention:
    def test_batched_matches_per_sequence(self, rng):
        """[batch, tokens, dim] output equals running each sequence alone."""
        mha = MultiHeadAttention(8, 2, rng=np.random.default_rng(0))
        x = rng.normal(size=(4, 5, 8))
        batched = mha(Tensor(x)).data
        for i in range(x.shape[0]):
            assert np.allclose(batched[i], mha(Tensor(x[i])).data, atol=1e-12)

    def test_batched_output_shape(self, rng):
        mha = MultiHeadAttention(12, 3, rng=rng)
        assert mha(Tensor(rng.normal(size=(4, 7, 12)))).shape == (4, 7, 12)

    def test_batched_gradients_flow(self, rng):
        mha = MultiHeadAttention(8, 2, rng=rng)
        out = mha(Tensor(rng.normal(size=(3, 4, 8))))
        (out * out).sum().backward()
        assert all(p.grad is not None for p in mha.parameters())

    def test_noisy_batched_runs_one_photonic_call(self, rng):
        """All heads x sequences execute; result differs from ideal."""
        executor = PhotonicExecutor.paper_default(seed=0)
        noisy = MultiHeadAttention(8, 2, executor=executor, rng=np.random.default_rng(2))
        ideal = MultiHeadAttention(8, 2, rng=np.random.default_rng(2))
        ideal.qkv.weight.data = noisy.qkv.weight.data.copy()
        ideal.qkv.bias.data = noisy.qkv.bias.data.copy()
        ideal.proj.weight.data = noisy.proj.weight.data.copy()
        ideal.proj.bias.data = noisy.proj.bias.data.copy()
        x = Tensor(rng.normal(size=(4, 5, 8)))
        assert not np.allclose(noisy(x).data, ideal(x).data)

    def test_rank_validation(self, rng):
        mha = MultiHeadAttention(8, 2, rng=rng)
        with pytest.raises(ValueError):
            mha(Tensor(rng.normal(size=(2, 3, 4, 8))))


class TestEncoderBlock:
    def test_residual_structure(self, rng):
        """Zeroing the sublayer outputs must give the identity."""
        block = EncoderBlock(8, 2, rng=rng)
        block.attention.proj.weight.data[:] = 0.0
        block.attention.proj.bias.data[:] = 0.0
        block.ffn.fc2.weight.data[:] = 0.0
        block.ffn.fc2.bias.data[:] = 0.0
        x = rng.normal(size=(4, 8))
        assert np.allclose(block(Tensor(x)).data, x)

    def test_shape_preserved(self, rng):
        block = EncoderBlock(16, 4, rng=rng)
        assert block(Tensor(rng.normal(size=(9, 16)))).shape == (9, 16)

    def test_batched_matches_per_sequence(self, rng):
        block = EncoderBlock(8, 2, rng=np.random.default_rng(4))
        x = rng.normal(size=(3, 6, 8))
        batched = block(Tensor(x)).data
        for i in range(x.shape[0]):
            assert np.allclose(batched[i], block(Tensor(x[i])).data, atol=1e-12)


class TestTinyViT:
    def test_patchify_shapes(self):
        model = TinyViT(image_size=16, patch_size=4)
        patches = model.patchify(np.arange(256.0).reshape(16, 16))
        assert patches.shape == (16, 16)

    def test_patchify_content(self):
        model = TinyViT(image_size=4, patch_size=2, dim=8, depth=1, heads=1)
        image = np.arange(16.0).reshape(4, 4)
        patches = model.patchify(image)
        assert np.allclose(patches[0], [0, 1, 4, 5])  # top-left patch
        assert np.allclose(patches[3], [10, 11, 14, 15])  # bottom-right

    def test_patchify_validates_shape(self):
        model = TinyViT(image_size=16, patch_size=4)
        with pytest.raises(ValueError):
            model.patchify(np.zeros((8, 8)))

    def test_forward_logits_shape(self, rng):
        model = TinyViT(n_classes=5)
        logits = model(rng.normal(size=(16, 16)))
        assert logits.shape == (5,)

    def test_patch_size_divides(self):
        with pytest.raises(ValueError):
            TinyViT(image_size=16, patch_size=5)

    def test_deterministic_given_seed(self, rng):
        image = rng.normal(size=(16, 16))
        a = TinyViT(seed=3)(image).data
        b = TinyViT(seed=3)(image).data
        assert np.allclose(a, b)

    def test_set_executor_swaps_everywhere(self, rng):
        model = TinyViT(seed=0)
        noisy = PhotonicExecutor.paper_default(seed=0)
        model.set_executor(noisy)
        assert model.patch_embed.executor is noisy
        assert model.head.executor is noisy
        for block in model.blocks:
            assert block.attention.executor is noisy
            assert block.ffn.fc1.executor is noisy

    def test_noise_changes_logits(self, rng):
        image = rng.normal(size=(16, 16))
        model = TinyViT(seed=1)
        with no_grad():
            clean = model(image).data.copy()
            model.set_executor(PhotonicExecutor.paper_default(seed=0))
            noisy = model(image).data
        assert not np.allclose(clean, noisy)

    def test_gradients_reach_all_parameters(self, rng):
        model = TinyViT(seed=2, depth=1)
        logits = model(rng.normal(size=(16, 16)))
        (logits * logits).sum().backward()
        missing = [
            name for name, p in model.named_parameters() if p.grad is None
        ]
        assert missing == []

    def test_batched_forward_matches_per_image(self, rng):
        model = TinyViT(seed=4, depth=1)
        images = rng.normal(size=(3, 16, 16))
        with no_grad():
            batched = model(images).data
            assert batched.shape == (3, 4)
            for i in range(3):
                assert np.allclose(batched[i], model(images[i]).data, atol=1e-12)

    def test_batched_patchify(self):
        model = TinyViT(image_size=4, patch_size=2, dim=8, depth=1, heads=1)
        images = np.stack([np.arange(16.0).reshape(4, 4)] * 2)
        patches = model.patchify(images)
        assert patches.shape == (2, 4, 4)
        assert np.allclose(patches[1, 0], [0, 1, 4, 5])

    def test_batched_gradients_reach_all_parameters(self, rng):
        model = TinyViT(seed=5, depth=1)
        logits = model(rng.normal(size=(2, 16, 16)))
        (logits * logits).sum().backward()
        missing = [
            name for name, p in model.named_parameters() if p.grad is None
        ]
        assert missing == []


class TestTinyBERT:
    def test_forward_logits_shape(self):
        model = TinyBERT(n_classes=3)
        tokens = np.zeros(17, dtype=int)
        assert model(tokens).shape == (3,)

    def test_sequence_length_validated(self):
        model = TinyBERT(seq_len=10)
        with pytest.raises(ValueError):
            model(np.zeros(9, dtype=int))

    def test_vocabulary_validated(self):
        model = TinyBERT(vocab_size=8, seq_len=4)
        with pytest.raises(ValueError):
            model(np.array([0, 1, 2, 99]))

    def test_token_order_matters(self):
        """Attention must distinguish marker order (the dataset's task)."""
        model = TinyBERT(seq_len=6, seed=0)
        seq_a = np.array([0, 1, 3, 3, 2, 3])
        seq_b = np.array([0, 2, 3, 3, 1, 3])
        with no_grad():
            assert not np.allclose(model(seq_a).data, model(seq_b).data)

    def test_gradients_reach_all_parameters(self):
        model = TinyBERT(seq_len=6, depth=1, seed=1)
        logits = model(np.array([0, 1, 2, 3, 4, 5]))
        (logits * logits).sum().backward()
        missing = [
            name for name, p in model.named_parameters() if p.grad is None
        ]
        assert missing == []

    def test_batched_forward_matches_per_sequence(self):
        model = TinyBERT(seq_len=6, depth=1, seed=2)
        tokens = np.random.default_rng(0).integers(0, 32, size=(4, 6))
        with no_grad():
            batched = model(tokens).data
            assert batched.shape == (4, 2)
            for i in range(4):
                assert np.allclose(batched[i], model(tokens[i]).data, atol=1e-12)

    def test_batched_sequence_length_validated(self):
        model = TinyBERT(seq_len=10)
        with pytest.raises(ValueError):
            model(np.zeros((3, 9), dtype=int))
        with pytest.raises(ValueError):
            model(np.zeros((2, 3, 10), dtype=int))

    def test_batched_gradients_reach_all_parameters(self):
        model = TinyBERT(seq_len=6, depth=1, seed=3)
        tokens = np.random.default_rng(1).integers(0, 32, size=(3, 6))
        logits = model(tokens)
        (logits * logits).sum().backward()
        missing = [
            name for name, p in model.named_parameters() if p.grad is None
        ]
        assert missing == []
