"""Numerical gradient checking helper for autograd tests."""

from __future__ import annotations

import numpy as np

from repro.neural import Tensor


def numerical_gradient(fn, values: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    values = np.asarray(values, dtype=float)
    grad = np.zeros_like(values)
    flat = values.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(values.copy())
        flat[i] = original - eps
        lower = fn(values.copy())
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def check_gradients(build_fn, values: np.ndarray, atol: float = 1e-5) -> None:
    """Assert autograd and numerical gradients agree.

    Args:
        build_fn: maps a :class:`Tensor` to a scalar :class:`Tensor`.
        values: the input point.
    """
    tensor = Tensor(values, requires_grad=True)
    out = build_fn(tensor)
    out.backward()
    numerical = numerical_gradient(
        lambda data: build_fn(Tensor(data)).item(), np.asarray(values, dtype=float)
    )
    np.testing.assert_allclose(tensor.grad, numerical, atol=atol, rtol=1e-4)
