"""Tests for differentiable NN functions."""

import numpy as np
import pytest
from scipy.special import erf

from repro.neural import (
    Tensor,
    accuracy,
    cross_entropy,
    gelu,
    layer_norm,
    log_softmax,
    relu,
    softmax,
)

from tests.neural.gradcheck import check_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(1)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(4, 6))))
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_matches_reference(self, rng):
        x = rng.normal(size=(3, 5))
        expected = np.exp(x) / np.exp(x).sum(axis=-1, keepdims=True)
        assert np.allclose(softmax(Tensor(x)).data, expected)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(2, 4))
        assert np.allclose(
            softmax(Tensor(x)).data, softmax(Tensor(x + 100.0)).data
        )

    def test_large_values_stable(self):
        out = softmax(Tensor(np.array([[1000.0, 1000.0]])))
        assert np.allclose(out.data, 0.5)

    def test_gradient(self, rng):
        w = rng.normal(size=(2, 5))
        check_gradients(
            lambda t: (softmax(t) * Tensor(w)).sum(), rng.normal(size=(2, 5))
        )


class TestLogSoftmax:
    def test_consistent_with_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_gradient(self, rng):
        w = rng.normal(size=(2, 4))
        check_gradients(
            lambda t: (log_softmax(t) * Tensor(w)).sum(), rng.normal(size=(2, 4))
        )


class TestGELU:
    def test_matches_erf_form(self, rng):
        x = rng.normal(size=(10,))
        expected = 0.5 * x * (1 + erf(x / np.sqrt(2)))
        assert np.allclose(gelu(Tensor(x)).data, expected)

    def test_zero_fixed_point(self):
        assert gelu(Tensor([0.0])).data[0] == 0.0

    def test_asymptotics(self):
        assert gelu(Tensor([10.0])).data[0] == pytest.approx(10.0, rel=1e-6)
        assert gelu(Tensor([-10.0])).data[0] == pytest.approx(0.0, abs=1e-6)

    def test_gradient(self, rng):
        check_gradients(lambda t: gelu(t).sum(), rng.normal(size=(6,)))


class TestReLU:
    def test_values(self):
        out = relu(Tensor([-1.0, 0.0, 2.0]))
        assert np.allclose(out.data, [0.0, 0.0, 2.0])


class TestLayerNorm:
    def test_normalises(self, rng):
        x = Tensor(rng.normal(2.0, 3.0, size=(4, 8)))
        weight = Tensor(np.ones(8))
        bias = Tensor(np.zeros(8))
        out = layer_norm(x, weight, bias).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_affine_applied(self, rng):
        x = Tensor(rng.normal(size=(2, 4)))
        out = layer_norm(x, Tensor(np.full(4, 2.0)), Tensor(np.full(4, 1.0))).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_gradient_input(self, rng):
        weight = Tensor(rng.normal(size=(5,)))
        bias = Tensor(rng.normal(size=(5,)))
        check_gradients(
            lambda t: (layer_norm(t, weight, bias) ** 2).sum(),
            rng.normal(size=(3, 5)),
        )

    def test_gradient_weight(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        bias = Tensor(np.zeros(5))
        check_gradients(
            lambda t: (layer_norm(x, t, bias) ** 2).sum(), rng.normal(size=(5,))
        )


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_uniform_prediction(self):
        logits = Tensor(np.zeros((3, 4)))
        loss = cross_entropy(logits, np.array([0, 1, 2]))
        assert loss.item() == pytest.approx(np.log(4))

    def test_gradient(self, rng):
        labels = np.array([1, 0, 3])
        check_gradients(
            lambda t: cross_entropy(t, labels), rng.normal(size=(3, 4))
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))


class TestAccuracy:
    def test_perfect(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_half(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5

    def test_accepts_tensor(self):
        assert accuracy(Tensor([[2.0, 1.0]]), np.array([0])) == 1.0
