"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro.neural import (
    TinyBERT,
    TinyViT,
    load_checkpoint,
    no_grad,
    save_checkpoint,
)


class TestRoundTrip:
    def test_vit_roundtrip(self, tmp_path):
        model = TinyViT(seed=0, depth=1)
        path = save_checkpoint(model, tmp_path / "vit.npz")
        clone = TinyViT(seed=99, depth=1)  # different init
        load_checkpoint(clone, path)
        image = np.random.default_rng(0).normal(size=(16, 16))
        with no_grad():
            assert np.allclose(model(image).data, clone(image).data)

    def test_bert_roundtrip(self, tmp_path):
        model = TinyBERT(seed=0, depth=1, seq_len=8)
        path = save_checkpoint(model, tmp_path / "bert.npz")
        clone = TinyBERT(seed=5, depth=1, seq_len=8)
        load_checkpoint(clone, path)
        tokens = np.array([0, 1, 2, 3, 4, 5, 6, 7])
        with no_grad():
            assert np.allclose(model(tokens).data, clone(tokens).data)

    def test_suffix_added(self, tmp_path):
        model = TinyViT(seed=0, depth=1)
        save_checkpoint(model, tmp_path / "plain")
        assert (tmp_path / "plain.npz").exists()


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(TinyViT(depth=1), tmp_path / "nope.npz")

    def test_architecture_mismatch_rejected(self, tmp_path):
        path = save_checkpoint(TinyViT(seed=0, depth=1), tmp_path / "v.npz")
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(TinyViT(seed=0, depth=2), path)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = save_checkpoint(TinyViT(seed=0, depth=1, dim=32), tmp_path / "v.npz")
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(TinyViT(seed=0, depth=1, dim=64), path)
