"""Tests for neural modules: Linear, LayerNorm, Dropout, Embedding."""

import numpy as np
import pytest

from repro.neural import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    Module,
    PhotonicExecutor,
    Sequential,
    Tensor,
)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(8, 4, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((3, 8))))
        assert out.shape == (3, 4)

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        layer = Linear(6, 5, rng=rng)
        x = rng.normal(size=(4, 6))
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = Linear(4, 4, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        x = np.ones((2, 4))
        assert np.allclose(layer(Tensor(x)).data, x @ layer.weight.data)

    def test_3d_input(self):
        rng = np.random.default_rng(2)
        layer = Linear(6, 3, rng=rng)
        x = rng.normal(size=(2, 5, 6))
        out = layer(Tensor(x))
        assert out.shape == (2, 5, 3)
        assert np.allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_1d_input(self):
        rng = np.random.default_rng(4)
        layer = Linear(6, 3, rng=rng)
        x = rng.normal(size=6)
        out = layer(Tensor(x))
        assert out.shape == (3,)
        assert np.allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_4d_input_broadcasts_weight(self):
        rng = np.random.default_rng(5)
        layer = Linear(6, 3, rng=rng)
        x = rng.normal(size=(2, 3, 5, 6))
        out = layer(Tensor(x))
        assert out.shape == (2, 3, 5, 3)
        assert np.allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_batched_weight_gradients_unbroadcast(self):
        """Weight grads sum over the batch axes of the activations."""
        rng = np.random.default_rng(6)
        layer = Linear(4, 2, rng=rng)
        x = rng.normal(size=(3, 5, 4))
        layer(Tensor(x)).sum().backward()
        assert layer.weight.grad.shape == (4, 2)
        expected = x.reshape(-1, 4).T @ np.ones((15, 2))
        assert np.allclose(layer.weight.grad, expected)

    def test_gradients_reach_parameters(self):
        layer = Linear(3, 2, rng=np.random.default_rng(3))
        out = layer(Tensor(np.ones((4, 3))))
        (out * out).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_noisy_executor_changes_output(self):
        rng = np.random.default_rng(4)
        ideal = Linear(8, 8, executor=PhotonicExecutor.ideal(), rng=rng)
        noisy = Linear(8, 8, executor=PhotonicExecutor.paper_default(seed=0))
        noisy.weight.data = ideal.weight.data.copy()
        noisy.bias.data = ideal.bias.data.copy()
        x = Tensor(np.random.default_rng(5).normal(size=(4, 8)))
        assert not np.allclose(ideal(x).data, noisy(x).data)


class TestLayerNormModule:
    def test_parameters_discovered(self):
        layer = LayerNorm(8)
        names = [name for name, _ in layer.named_parameters()]
        assert set(names) == {"weight", "bias"}

    def test_output_normalised(self):
        layer = LayerNorm(16)
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(5, 16)))
        out = layer(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)


class TestDropout:
    def test_train_mode_zeroes_fraction(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.train()
        out = drop(Tensor(np.ones(10_000)))
        zero_fraction = np.mean(out.data == 0.0)
        assert zero_fraction == pytest.approx(0.5, abs=0.03)

    def test_eval_mode_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = np.ones(100)
        assert np.array_equal(drop(Tensor(x)).data, x)

    def test_inverted_scaling_preserves_mean(self):
        drop = Dropout(0.3, rng=np.random.default_rng(1))
        drop.train()
        out = drop(Tensor(np.ones(100_000)))
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb(np.array([3, 3, 7]))
        assert out.shape == (3, 4)
        assert np.allclose(out.data[0], out.data[1])

    def test_gradients(self):
        emb = Embedding(5, 3, rng=np.random.default_rng(1))
        out = emb(np.array([0, 0, 2]))
        out.sum().backward()
        assert emb.weight.grad is not None
        assert np.allclose(emb.weight.grad[0], 2.0)  # used twice


class TestModuleMechanics:
    def _make_model(self):
        return Sequential(
            Linear(4, 8, rng=np.random.default_rng(0)),
            GELU(),
            Linear(8, 2, rng=np.random.default_rng(1)),
        )

    def test_named_parameters_nested(self):
        model = self._make_model()
        names = [name for name, _ in model.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.2.bias" in names
        assert len(names) == 4

    def test_zero_grad(self):
        model = self._make_model()
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Linear(2, 2))
        model.eval()
        assert not model.layers[0].training
        model.train()
        assert model.layers[0].training

    def test_state_dict_roundtrip(self):
        model = self._make_model()
        state = model.state_dict()
        clone = self._make_model()
        clone.layers[0].weight.data += 1.0  # desynchronise
        clone.load_state_dict(state)
        x = Tensor(np.random.default_rng(2).normal(size=(3, 4)))
        assert np.allclose(model(x).data, clone(x).data)

    def test_state_dict_validates_keys(self):
        model = self._make_model()
        state = model.state_dict()
        state.pop("layers.0.weight")
        with pytest.raises(KeyError):
            self._make_model().load_state_dict(state)

    def test_state_dict_validates_shapes(self):
        model = self._make_model()
        state = model.state_dict()
        state["layers.0.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            self._make_model().load_state_dict(state)

    def test_forward_abstract(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
