"""Tests for low-bit quantization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.neural import (
    QuantConfig,
    Tensor,
    fake_quantize,
    quantization_error,
    quantization_levels,
    quantize_array,
)


class TestQuantConfig:
    def test_presets(self):
        assert QuantConfig.int4() == QuantConfig(4, 4)
        assert QuantConfig.int8() == QuantConfig(8, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantConfig(1, 4)


class TestQuantizeArray:
    def test_levels(self):
        assert quantization_levels(4) == 7
        assert quantization_levels(8) == 127

    def test_zero_preserved(self):
        values = np.array([-1.0, 0.0, 1.0])
        assert quantize_array(values, 4)[1] == 0.0

    def test_extremes_preserved(self):
        values = np.array([-1.0, 0.3, 1.0])
        quantized = quantize_array(values, 4)
        assert quantized[0] == pytest.approx(-1.0)
        assert quantized[2] == pytest.approx(1.0)

    def test_grid_spacing(self):
        values = np.linspace(-1, 1, 1000)
        quantized = quantize_array(values, 4)
        unique = np.unique(quantized)
        assert len(unique) == 15  # 2*7 + 1 symmetric levels
        assert np.allclose(np.diff(unique), 1.0 / 7.0)

    def test_8bit_finer_than_4bit(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        assert quantization_error(values, 8) < quantization_error(values, 4)

    def test_4bit_error_band(self):
        """4-bit RMS error on Gaussian data: the max-abs scale stretches
        over ~3.5 sigma of outliers, so step ~ 0.5 sigma and the RMS
        error lands around step/sqrt(12) ~ 15 % of the data RMS."""
        rng = np.random.default_rng(1)
        err = quantization_error(rng.normal(size=5000), 4)
        assert 0.08 < err < 0.25

    def test_zero_tensor(self):
        assert np.array_equal(quantize_array(np.zeros(5), 4), np.zeros(5))
        assert quantization_error(np.zeros(5), 4) == 0.0

    @given(
        values=hnp.arrays(
            float,
            st.integers(min_value=1, max_value=30),
            elements=st.floats(min_value=-10, max_value=10),
        ),
        bits=st.integers(min_value=2, max_value=10),
    )
    def test_idempotent(self, values, bits):
        once = quantize_array(values, bits)
        twice = quantize_array(once, bits)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @given(
        values=hnp.arrays(
            float, 16, elements=st.floats(min_value=-5, max_value=5)
        ),
        bits=st.integers(min_value=2, max_value=10),
    )
    def test_error_bounded_by_half_step(self, values, bits):
        quantized = quantize_array(values, bits)
        max_abs = np.max(np.abs(values))
        if max_abs > 0:
            step = max_abs / quantization_levels(bits)
            assert np.max(np.abs(values - quantized)) <= step / 2 + 1e-12


class TestFakeQuantize:
    def test_forward_quantizes(self):
        t = Tensor(np.linspace(-1, 1, 100))
        out = fake_quantize(t, 4)
        assert len(np.unique(out.data)) <= 15

    def test_straight_through_gradient(self):
        t = Tensor(np.linspace(-1, 1, 10), requires_grad=True)
        fake_quantize(t, 4).sum().backward()
        assert np.allclose(t.grad, np.ones(10))

    def test_gradient_flows_through_composition(self):
        t = Tensor(np.array([0.5, -0.3]), requires_grad=True)
        (fake_quantize(t, 8) ** 2).sum().backward()
        # STE: d/dt (q(t)^2) ~ 2*q(t)
        assert np.allclose(t.grad, 2 * fake_quantize(Tensor(t.data), 8).data)
