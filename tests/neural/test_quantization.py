"""Tests for low-bit quantization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.neural import (
    QuantConfig,
    Tensor,
    fake_quantize,
    quantization_error,
    quantization_levels,
    quantize_array,
)


class TestQuantConfig:
    def test_presets(self):
        assert QuantConfig.int4() == QuantConfig(4, 4)
        assert QuantConfig.int8() == QuantConfig(8, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantConfig(1, 4)


class TestQuantizeArray:
    def test_levels(self):
        assert quantization_levels(4) == 7
        assert quantization_levels(8) == 127

    def test_zero_preserved(self):
        values = np.array([-1.0, 0.0, 1.0])
        assert quantize_array(values, 4)[1] == 0.0

    def test_extremes_preserved(self):
        values = np.array([-1.0, 0.3, 1.0])
        quantized = quantize_array(values, 4)
        assert quantized[0] == pytest.approx(-1.0)
        assert quantized[2] == pytest.approx(1.0)

    def test_grid_spacing(self):
        values = np.linspace(-1, 1, 1000)
        quantized = quantize_array(values, 4)
        unique = np.unique(quantized)
        assert len(unique) == 15  # 2*7 + 1 symmetric levels
        assert np.allclose(np.diff(unique), 1.0 / 7.0)

    def test_8bit_finer_than_4bit(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        assert quantization_error(values, 8) < quantization_error(values, 4)

    def test_4bit_error_band(self):
        """4-bit RMS error on Gaussian data: the max-abs scale stretches
        over ~3.5 sigma of outliers, so step ~ 0.5 sigma and the RMS
        error lands around step/sqrt(12) ~ 15 % of the data RMS."""
        rng = np.random.default_rng(1)
        err = quantization_error(rng.normal(size=5000), 4)
        assert 0.08 < err < 0.25

    def test_zero_tensor(self):
        assert np.array_equal(quantize_array(np.zeros(5), 4), np.zeros(5))
        assert quantization_error(np.zeros(5), 4) == 0.0

    def test_subnormal_tensor_does_not_produce_nan(self):
        # A subnormal max-abs used to underflow the scale to 0 and turn
        # the grid into inf/nan (hypothesis-found falsifying example).
        values = np.array([5e-324, 0.0])
        once = quantize_array(values, 3)
        assert np.array_equal(once, values)  # returned unchanged
        assert np.array_equal(quantize_array(once, 3), once)

    def test_subnormal_slices_match_per_sample_quantization(self):
        # Per-matrix slices quantize exactly like per-sample calls,
        # including the degenerate sub-tiny branch.
        stacked = np.stack([np.full((2, 2), 5e-324), np.ones((2, 2))])
        per_matrix = quantize_array(stacked, 3, per_matrix=True)
        for i in range(2):
            assert np.array_equal(per_matrix[i], quantize_array(stacked[i], 3))

    @given(
        values=hnp.arrays(
            float,
            st.integers(min_value=1, max_value=30),
            elements=st.floats(min_value=-10, max_value=10),
        ),
        bits=st.integers(min_value=2, max_value=10),
    )
    def test_idempotent(self, values, bits):
        once = quantize_array(values, bits)
        twice = quantize_array(once, bits)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @given(
        values=hnp.arrays(
            float, 16, elements=st.floats(min_value=-5, max_value=5)
        ),
        bits=st.integers(min_value=2, max_value=10),
    )
    def test_error_bounded_by_half_step(self, values, bits):
        quantized = quantize_array(values, bits)
        max_abs = np.max(np.abs(values))
        if max_abs > 0:
            step = max_abs / quantization_levels(bits)
            assert np.max(np.abs(values - quantized)) <= step / 2 + 1e-12


class TestPerMatrixQuantization:
    """Per-matrix scales decouple the slices of a stacked activation."""

    def test_slices_quantized_independently(self):
        rng = np.random.default_rng(0)
        stack = rng.normal(size=(5, 4, 6))
        stack[2] *= 40.0  # one outlier sample must not coarsen the rest
        whole = quantize_array(stack, 4, per_matrix=True)
        for index in range(5):
            assert np.array_equal(whole[index], quantize_array(stack[index], 4))

    def test_batch_invariance(self):
        """A sample's grid never depends on its batch neighbours."""
        rng = np.random.default_rng(1)
        stack = rng.normal(size=(6, 3, 4))
        full = quantize_array(stack, 4, per_matrix=True)
        half = quantize_array(stack[:3], 4, per_matrix=True)
        assert np.array_equal(full[:3], half)

    def test_zero_slice_preserved(self):
        stack = np.ones((3, 2, 2))
        stack[1] = 0.0
        out = quantize_array(stack, 4, per_matrix=True)
        assert np.array_equal(out[1], np.zeros((2, 2)))
        assert np.array_equal(out[0], stack[0])

    def test_two_dim_unaffected(self):
        values = np.random.default_rng(2).normal(size=(4, 6))
        assert np.array_equal(
            quantize_array(values, 4, per_matrix=True), quantize_array(values, 4)
        )

    def test_executor_batched_matches_per_sample(self):
        """A quantized batched matmul equals its per-sample slices."""
        from repro.neural import PhotonicExecutor

        executor = PhotonicExecutor.digital_reference()
        rng = np.random.default_rng(3)
        a = rng.normal(size=(4, 3, 6))
        a[1] *= 25.0
        w = rng.normal(size=(6, 5))
        batched = executor.matmul(Tensor(a), Tensor(w), weight_operand=1)
        for index in range(4):
            single = executor.matmul(Tensor(a[index]), Tensor(w), weight_operand=1)
            assert np.array_equal(batched.data[index], single.data)


class TestFakeQuantize:
    def test_forward_quantizes(self):
        t = Tensor(np.linspace(-1, 1, 100))
        out = fake_quantize(t, 4)
        assert len(np.unique(out.data)) <= 15

    def test_straight_through_gradient(self):
        t = Tensor(np.linspace(-1, 1, 10), requires_grad=True)
        fake_quantize(t, 4).sum().backward()
        assert np.allclose(t.grad, np.ones(10))

    def test_gradient_flows_through_composition(self):
        t = Tensor(np.array([0.5, -0.3]), requires_grad=True)
        (fake_quantize(t, 8) ** 2).sum().backward()
        # STE: d/dt (q(t)^2) ~ 2*q(t)
        assert np.allclose(t.grad, 2 * fake_quantize(Tensor(t.data), 8).data)


class TestPerMatrixQuantizationError:
    """quantization_error(per_matrix=True): one decoupled error per slice."""

    def test_stack_errors_equal_independent_slice_errors(self):
        # The quantized grids are bit-identical per slice; the norm
        # reduction may differ by one ULP (BLAS dot vs ufunc reduce),
        # hence the machine-precision tolerance.
        rng = np.random.default_rng(0)
        stack = rng.normal(size=(5, 6, 7)) * rng.uniform(0.1, 10.0, (5, 1, 1))
        errors = quantization_error(stack, 4, per_matrix=True)
        assert errors.shape == (5,)
        for index in range(stack.shape[0]):
            want = quantization_error(stack[index], 4)
            assert np.isclose(errors[index], want, rtol=1e-14, atol=0.0)

    def test_nested_batch_axes(self):
        rng = np.random.default_rng(1)
        stack = rng.normal(size=(2, 3, 4, 5))
        errors = quantization_error(stack, 4, per_matrix=True)
        assert errors.shape == (2, 3)
        for i in range(2):
            for j in range(3):
                want = quantization_error(stack[i, j], 4)
                assert np.isclose(errors[i, j], want, rtol=1e-14, atol=0.0)

    def test_zero_slice_reports_zero(self):
        rng = np.random.default_rng(2)
        stack = rng.normal(size=(3, 4, 4))
        stack[1] = 0.0
        errors = quantization_error(stack, 4, per_matrix=True)
        assert errors[1] == 0.0
        assert np.all(errors >= 0.0)

    def test_two_dim_returns_float_either_way(self):
        values = np.random.default_rng(3).normal(size=(6, 6))
        global_error = quantization_error(values, 4)
        per_matrix_error = quantization_error(values, 4, per_matrix=True)
        assert isinstance(per_matrix_error, float)
        assert per_matrix_error == global_error

    def test_global_scale_cross_couples_where_per_matrix_does_not(self):
        """A wide-range stack inflates the small slice's *global* error;
        the per-matrix errors stay at each slice's native resolution."""
        rng = np.random.default_rng(4)
        stack = np.stack(
            [rng.normal(size=(8, 8)), 1e4 * rng.normal(size=(8, 8))]
        )
        per_slice = quantization_error(stack, 4, per_matrix=True)
        coupled_small = quantization_error(stack, 4)
        assert per_slice[0] < coupled_small * 10  # sanity: same order
        # The small slice quantized on its own grid beats the global grid.
        assert np.isclose(
            per_slice[0], quantization_error(stack[0], 4), rtol=1e-14, atol=0.0
        )
        assert per_slice[0] < 1.0
