"""Tests for the photonic matmul executor (quantization + noise + STE)."""

import numpy as np
import pytest

from repro.core import DPTCGeometry, NoiseModel
from repro.neural import PhotonicExecutor, QuantConfig, Tensor
from repro.neural.quantization import quantize_array


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestIdealExecutor:
    def test_exact(self, rng):
        executor = PhotonicExecutor.ideal()
        a = rng.normal(size=(5, 8))
        b = rng.normal(size=(8, 3))
        out = executor.matmul(Tensor(a), Tensor(b))
        assert np.allclose(out.data, a @ b)

    def test_batched(self, rng):
        executor = PhotonicExecutor.ideal()
        a = rng.normal(size=(2, 4, 6))
        b = rng.normal(size=(2, 6, 5))
        out = executor.matmul(Tensor(a), Tensor(b))
        assert out.shape == (2, 4, 5)
        assert np.allclose(out.data, a @ b)

    def test_batch_mismatch_rejected(self, rng):
        executor = PhotonicExecutor.ideal()
        with pytest.raises(ValueError):
            executor.matmul(
                Tensor(rng.normal(size=(2, 4, 6))),
                Tensor(rng.normal(size=(3, 6, 5))),
            )

    def test_mixed_rank_broadcasts(self, rng):
        """3-D activations against a 2-D weight follow numpy semantics."""
        executor = PhotonicExecutor.ideal()
        a = rng.normal(size=(2, 4, 6))
        b = rng.normal(size=(6, 5))
        out = executor.matmul(Tensor(a), Tensor(b))
        assert out.shape == (2, 4, 5)
        assert np.array_equal(out.data, a @ b)

    def test_four_dim_attention_stack(self, rng):
        """[batch, heads, tokens, dim] stacks run in one call."""
        executor = PhotonicExecutor.ideal()
        a = rng.normal(size=(2, 3, 5, 4))
        b = rng.normal(size=(2, 3, 4, 5))
        out = executor.matmul(Tensor(a), Tensor(b))
        assert out.shape == (2, 3, 5, 5)
        assert np.array_equal(out.data, a @ b)

    def test_vector_operands_rejected(self, rng):
        executor = PhotonicExecutor.ideal()
        with pytest.raises(ValueError):
            executor.matmul(
                Tensor(rng.normal(size=(6,))), Tensor(rng.normal(size=(6, 5)))
            )


class TestShardedExecutor:
    """The num_cores knob routes matmuls through a ShardedDPTC grid."""

    def test_single_core_keeps_plain_dptc(self):
        from repro.core import DPTC

        assert isinstance(PhotonicExecutor.ideal()._dptc, DPTC)

    def test_multi_core_builds_sharded_grid(self):
        from repro.core import ShardedDPTC

        executor = PhotonicExecutor.ideal(num_cores=4)
        assert isinstance(executor._dptc, ShardedDPTC)
        assert executor._dptc.num_cores == 4

    @pytest.mark.parametrize("num_cores", [1, 2, 4, 8])
    def test_ideal_bit_exact_at_every_core_count(self, rng, num_cores):
        executor = PhotonicExecutor.ideal(num_cores=num_cores)
        a = rng.normal(size=(6, 4, 8))
        b = rng.normal(size=(6, 8, 3))
        out = executor.matmul(Tensor(a), Tensor(b))
        assert np.array_equal(out.data, a @ b)

    def test_noisy_sharded_reproducible(self, rng):
        a = Tensor(rng.normal(size=(6, 4, 12)))
        b = Tensor(rng.normal(size=(6, 12, 4)))
        first = PhotonicExecutor.paper_default(seed=3, num_cores=4).matmul(a, b)
        second = PhotonicExecutor.paper_default(seed=3, num_cores=4).matmul(a, b)
        assert np.array_equal(first.data, second.data)

    def test_sharded_gradients_flow(self, rng):
        executor = PhotonicExecutor.paper_default(seed=0, num_cores=2)
        a = Tensor(rng.normal(size=(4, 3, 6)), requires_grad=True)
        b = Tensor(rng.normal(size=(6, 2)), requires_grad=True)
        executor.matmul(a, b).sum().backward()
        assert a.grad is not None and b.grad is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            PhotonicExecutor(num_cores=0)


class TestContractionAndBackendKnobs:
    """shard_axis / backend thread through to the ShardedDPTC grid."""

    def test_contraction_grid_built(self):
        from repro.core import ShardedDPTC

        executor = PhotonicExecutor.ideal(num_cores=4, shard_axis="contraction")
        assert isinstance(executor._dptc, ShardedDPTC)
        assert executor._dptc.shard_axis == "contraction"

    @pytest.mark.parametrize("num_cores", [1, 2, 4])
    def test_contraction_ideal_bit_exact(self, rng, num_cores):
        executor = PhotonicExecutor.ideal(num_cores=num_cores, shard_axis="contraction")
        a = rng.normal(size=(5, 4, 25))  # d=25: non-divisible splits
        b = rng.normal(size=(5, 25, 3))
        out = executor.matmul(Tensor(a), Tensor(b))
        assert np.array_equal(out.data, a @ b)

    def test_noisy_contraction_reproducible(self, rng):
        a = Tensor(rng.normal(size=(6, 4, 25)))
        b = Tensor(rng.normal(size=(6, 25, 4)))
        first = PhotonicExecutor.paper_default(
            seed=3, num_cores=4, shard_axis="contraction"
        ).matmul(a, b)
        second = PhotonicExecutor.paper_default(
            seed=3, num_cores=4, shard_axis="contraction"
        ).matmul(a, b)
        assert np.array_equal(first.data, second.data)

    def test_single_core_ignores_knobs_with_plain_dptc(self):
        from repro.core import DPTC

        executor = PhotonicExecutor.ideal(shard_axis="contraction", backend="process")
        assert isinstance(executor._dptc, DPTC)

    def test_backend_knob_recorded(self):
        executor = PhotonicExecutor.ideal(num_cores=2, backend="process")
        assert executor._dptc.backend == "process"
        executor.close()

    def test_close_is_safe_on_single_core(self):
        PhotonicExecutor.ideal().close()

    def test_close_releases_sharded_pool(self, rng):
        executor = PhotonicExecutor.paper_default(seed=0, num_cores=2)
        a = Tensor(rng.normal(size=(4, 3, 12)))
        b = Tensor(rng.normal(size=(4, 12, 3)))
        executor.matmul(a, b)
        executor.close()
        assert executor._dptc._pool is None

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            PhotonicExecutor(shard_axis="tile")
        with pytest.raises(ValueError):
            PhotonicExecutor(backend="mpi")


class TestDigitalReference:
    def test_applies_quantization_only(self, rng):
        executor = PhotonicExecutor.digital_reference(QuantConfig.int4())
        a = rng.normal(size=(4, 6))
        b = rng.normal(size=(6, 4))
        out = executor.matmul(Tensor(a), Tensor(b))
        expected = quantize_array(a, 4) @ quantize_array(b, 4)
        assert np.allclose(out.data, expected)

    def test_weight_operand_bits(self, rng):
        executor = PhotonicExecutor.digital_reference(QuantConfig(8, 4))
        a = rng.normal(size=(4, 6))
        b = rng.normal(size=(6, 4))
        out = executor.matmul(Tensor(a), Tensor(b), weight_operand=1)
        expected = quantize_array(a, 4) @ quantize_array(b, 8)
        assert np.allclose(out.data, expected)


class TestNoisyExecutor:
    def test_noise_applied(self, rng):
        executor = PhotonicExecutor.paper_default(seed=1)
        a = rng.normal(size=(6, 12))
        b = rng.normal(size=(12, 6))
        out = executor.matmul(Tensor(a), Tensor(b))
        reference = quantize_array(a, 4) @ quantize_array(b, 4)
        assert not np.allclose(out.data, reference)
        rel = np.linalg.norm(out.data - reference) / np.linalg.norm(reference)
        assert rel < 0.3

    def test_seeded_reproducibility(self, rng):
        a = Tensor(rng.normal(size=(4, 8)))
        b = Tensor(rng.normal(size=(8, 4)))
        out1 = PhotonicExecutor.paper_default(seed=7).matmul(a, b)
        out2 = PhotonicExecutor.paper_default(seed=7).matmul(a, b)
        assert np.allclose(out1.data, out2.data)

    def test_wavelength_count_controls_dispersion(self, rng):
        """More WDM channels -> wider dispersion profile (Fig. 14 axis)."""
        noise = NoiseModel(
            encoding=NoiseModel.ideal().encoding,
            systematic=NoiseModel.ideal().systematic,
            include_dispersion=True,
        )
        a = rng.normal(size=(8, 24))
        b = rng.normal(size=(24, 8))
        errors = []
        for n_lambda in (6, 26):
            executor = PhotonicExecutor(
                geometry=DPTCGeometry(12, 12, n_lambda), noise=noise, quant=None
            )
            out = executor.matmul(Tensor(a), Tensor(b))
            errors.append(np.linalg.norm(out.data - a @ b))
        assert errors[1] > errors[0]


class TestStraightThroughGradients:
    def test_gradients_are_ideal_product(self, rng):
        """Backward ignores noise: grads equal the clean matmul grads of
        the quantized operands."""
        executor = PhotonicExecutor.paper_default(seed=3)
        a = Tensor(rng.normal(size=(3, 12)), requires_grad=True)
        b = Tensor(rng.normal(size=(12, 2)), requires_grad=True)
        out = executor.matmul(a, b)
        out.sum().backward()
        grad_out = np.ones((3, 2))
        qa = quantize_array(a.data, 4)
        qb = quantize_array(b.data, 4)
        assert np.allclose(a.grad, grad_out @ qb.T)
        assert np.allclose(b.grad, qa.T @ grad_out)

    def test_gradients_flow_in_ideal_mode(self, rng):
        executor = PhotonicExecutor.ideal()
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        executor.matmul(a, b).sum().backward()
        assert a.grad is not None and b.grad is not None


class TestContextManager:
    def test_with_block_returns_the_executor(self):
        with PhotonicExecutor.ideal() as executor:
            a = Tensor(np.ones((2, 3)))
            b = Tensor(np.ones((3, 2)))
            assert np.array_equal(executor.matmul(a, b).data, np.full((2, 2), 3.0))

    def test_exit_closes_the_sharded_pool(self):
        with PhotonicExecutor.ideal(num_cores=2) as executor:
            a = Tensor(np.ones((4, 2, 3)))
            b = Tensor(np.ones((4, 3, 2)))
            executor.matmul(a, b)
        executor.close()  # already closed by __exit__; stays a no-op

    def test_exit_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            with PhotonicExecutor.ideal(num_cores=2):
                raise RuntimeError("boom")
