"""Tests for the autograd engine: every op against numerical gradients."""

import numpy as np
import pytest

from repro.neural import Tensor, broadcast_to, concatenate, gather_rows, no_grad, stack
from repro.neural.autograd import embedding_lookup, is_grad_enabled

from tests.neural.gradcheck import check_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestBasics:
    def test_tensor_wraps_array(self):
        t = Tensor([[1.0, 2.0]])
        assert t.shape == (1, 2)
        assert t.ndim == 2
        assert t.size == 2

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_detach_drops_graph(self):
        t = Tensor([1.0], requires_grad=True)
        assert not (t * 2).detach().requires_grad

    def test_backward_requires_scalar(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_on_leaf_without_grad_errors(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_context(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = t * 2
        assert not out.requires_grad
        assert is_grad_enabled()


class TestArithmeticGradients:
    def test_add(self, rng):
        check_gradients(lambda t: (t + 3.0).sum(), rng.normal(size=(3, 4)))

    def test_mul(self, rng):
        other = rng.normal(size=(3, 4))
        check_gradients(lambda t: (t * Tensor(other)).sum(), rng.normal(size=(3, 4)))

    def test_div(self, rng):
        denom = rng.uniform(1, 2, size=(3, 4))
        check_gradients(lambda t: (t / Tensor(denom)).sum(), rng.normal(size=(3, 4)))

    def test_div_denominator_gradient(self, rng):
        numer = rng.normal(size=(3, 4))
        check_gradients(
            lambda t: (Tensor(numer) / t).sum(), rng.uniform(1, 2, size=(3, 4))
        )

    def test_neg_sub(self, rng):
        check_gradients(lambda t: (2.0 - t).sum(), rng.normal(size=(5,)))

    def test_pow(self, rng):
        check_gradients(lambda t: (t**3).sum(), rng.uniform(0.5, 2, size=(4,)))

    def test_matmul_left(self, rng):
        b = rng.normal(size=(4, 5))
        check_gradients(lambda t: (t @ Tensor(b)).sum(), rng.normal(size=(3, 4)))

    def test_matmul_right(self, rng):
        a = rng.normal(size=(3, 4))
        check_gradients(lambda t: (Tensor(a) @ t).sum(), rng.normal(size=(4, 5)))

    def test_batched_matmul(self, rng):
        b = rng.normal(size=(2, 4, 5))
        check_gradients(
            lambda t: (t @ Tensor(b)).sum(), rng.normal(size=(2, 3, 4))
        )

    def test_broadcast_add_gradient(self, rng):
        bias = rng.normal(size=(4,))
        check_gradients(
            lambda t: ((t + Tensor(bias)) ** 2).sum(), rng.normal(size=(3, 4))
        )

    def test_broadcast_bias_side(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradients(lambda t: ((Tensor(x) + t) ** 2).sum(), rng.normal(size=(4,)))


class TestElementwiseGradients:
    def test_exp(self, rng):
        check_gradients(lambda t: t.exp().sum(), rng.normal(size=(3, 3)))

    def test_log(self, rng):
        check_gradients(lambda t: t.log().sum(), rng.uniform(0.5, 3, size=(3, 3)))

    def test_sqrt(self, rng):
        check_gradients(lambda t: t.sqrt().sum(), rng.uniform(0.5, 3, size=(4,)))

    def test_tanh(self, rng):
        check_gradients(lambda t: t.tanh().sum(), rng.normal(size=(3, 3)))

    def test_erf(self, rng):
        check_gradients(lambda t: t.erf().sum(), rng.normal(size=(3, 3)))

    def test_maximum(self, rng):
        other = rng.normal(size=(4, 4))
        check_gradients(
            lambda t: t.maximum(Tensor(other)).sum(), rng.normal(size=(4, 4)) + 0.1
        )


class TestShapeOpGradients:
    def test_reshape(self, rng):
        check_gradients(
            lambda t: (t.reshape(2, 6) ** 2).sum(), rng.normal(size=(3, 4))
        )

    def test_transpose(self, rng):
        w = rng.normal(size=(3, 4))
        check_gradients(
            lambda t: (t.transpose(1, 0) * Tensor(w.T)).sum(), rng.normal(size=(3, 4))
        )

    def test_swapaxes(self, rng):
        check_gradients(
            lambda t: (t.swapaxes(0, 2) ** 2).sum(), rng.normal(size=(2, 3, 4))
        )

    def test_getitem_slice(self, rng):
        check_gradients(lambda t: (t[1:3] ** 2).sum(), rng.normal(size=(5, 2)))

    def test_getitem_single_row(self, rng):
        check_gradients(lambda t: (t[0] ** 2).sum(), rng.normal(size=(4, 3)))

    def test_concatenate(self, rng):
        other = rng.normal(size=(2, 3))
        check_gradients(
            lambda t: (concatenate([t, Tensor(other)]) ** 2).sum(),
            rng.normal(size=(3, 3)),
        )

    def test_stack(self, rng):
        other = rng.normal(size=(3,))
        check_gradients(
            lambda t: (stack([t, Tensor(other)], axis=0) ** 2).sum(),
            rng.normal(size=(3,)),
        )

    def test_broadcast_to(self, rng):
        check_gradients(
            lambda t: (broadcast_to(t, (4, 2, 3)) ** 2).sum(),
            rng.normal(size=(1, 2, 3)),
        )

    def test_broadcast_to_values(self, rng):
        t = Tensor(rng.normal(size=(1, 3)), requires_grad=True)
        out = broadcast_to(t, (5, 3))
        assert out.shape == (5, 3)
        assert np.allclose(out.data, np.broadcast_to(t.data, (5, 3)))
        out.sum().backward()
        assert np.allclose(t.grad, np.full((1, 3), 5.0))


class TestReductionGradients:
    def test_sum_all(self, rng):
        check_gradients(lambda t: (t**2).sum(), rng.normal(size=(3, 4)))

    def test_sum_axis(self, rng):
        check_gradients(
            lambda t: (t.sum(axis=0) ** 2).sum(), rng.normal(size=(3, 4))
        )

    def test_sum_keepdims(self, rng):
        check_gradients(
            lambda t: (t.sum(axis=1, keepdims=True) * t).sum(),
            rng.normal(size=(3, 4)),
        )

    def test_mean(self, rng):
        check_gradients(
            lambda t: (t.mean(axis=-1) ** 2).sum(), rng.normal(size=(3, 4))
        )


class TestGatherOps:
    def test_gather_rows_values(self):
        t = Tensor(np.arange(12.0).reshape(3, 4))
        out = gather_rows(t, np.array([1, 0, 3]))
        assert np.allclose(out.data, [1.0, 4.0, 11.0])

    def test_gather_rows_gradient(self, rng):
        idx = np.array([2, 0, 1])
        check_gradients(
            lambda t: (gather_rows(t, idx) ** 2).sum(), rng.normal(size=(3, 4))
        )

    def test_embedding_lookup_values(self):
        table = Tensor(np.arange(8.0).reshape(4, 2))
        out = embedding_lookup(table, np.array([3, 3, 0]))
        assert np.allclose(out.data, [[6, 7], [6, 7], [0, 1]])

    def test_embedding_lookup_gradient_accumulates_repeats(self):
        table = Tensor(np.zeros((4, 2)), requires_grad=True)
        out = embedding_lookup(table, np.array([1, 1, 2]))
        out.sum().backward()
        assert np.allclose(table.grad[1], [2.0, 2.0])  # used twice
        assert np.allclose(table.grad[2], [1.0, 1.0])
        assert np.allclose(table.grad[0], [0.0, 0.0])


class TestGraphMechanics:
    def test_gradient_accumulates_across_uses(self):
        t = Tensor([2.0], requires_grad=True)
        out = t * 3.0 + t * 4.0  # dt = 7
        out.sum().backward()
        assert np.allclose(t.grad, [7.0])

    def test_diamond_graph(self):
        t = Tensor([1.5], requires_grad=True)
        a = t * 2.0
        b = t * 3.0
        out = (a * b).sum()  # 6 t^2 -> d = 12 t = 18
        out.backward()
        assert np.allclose(t.grad, [18.0])

    def test_deep_chain_no_recursion_error(self):
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(3000):
            out = out + 1.0
        out.sum().backward()
        assert np.allclose(t.grad, [1.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None
