"""Tests for unit constants and dB conversion helpers."""

import math

import pytest

from repro import units


class TestConstants:
    def test_power_constants(self):
        assert units.MW == 1e-3
        assert units.UW == 1e-6

    def test_time_constants_ordering(self):
        assert units.PS < units.NS < units.US < units.MS

    def test_area_constants(self):
        assert units.UM2 == 1e-12
        assert units.MM2 == 1e-6
        assert units.MM2 / units.UM2 == pytest.approx(1e6)

    def test_speed_of_light(self):
        assert units.SPEED_OF_LIGHT == pytest.approx(2.998e8, rel=1e-3)


class TestDecibels:
    def test_db_to_linear_roundtrip(self):
        for db in (-30.0, -3.0, 0.0, 3.0, 10.0, 25.0):
            assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(db)

    def test_zero_db_is_unity(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_factor_ten(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_three_db_is_about_two(self):
        assert units.db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)


class TestDbm:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_minus_25_dbm(self):
        # The paper's photodetector sensitivity floor.
        assert units.dbm_to_watts(-25.0) == pytest.approx(3.1623e-6, rel=1e-4)

    def test_watts_to_dbm_roundtrip(self):
        for dbm in (-25.0, -3.0, 0.0, 20.0):
            assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)

    def test_dbm_log_consistency(self):
        assert units.watts_to_dbm(1.0) == pytest.approx(30.0)
        assert units.watts_to_dbm(2e-3) == pytest.approx(10 * math.log10(2), rel=1e-6)
