"""Tests for the accuracy experiment runners (Fig. 6, 14, 15).

The reference-model trainings are cached per process, so the first test
to touch them pays the (~30 s) training cost once.
"""

import pytest

from repro.analysis import (
    fig6_ddot_error,
    fig14_wavelength_robustness,
    fig15_noise_robustness,
    reference_bert,
    reference_vit,
)


class TestFig6:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig6_ddot_error(n_trials=600, seed=1)

    def test_error_bands(self, rows):
        """Paper: 2.6 % (4-bit) and 3.4 % (8-bit) mean relative error."""
        by_bits = {r["bits"]: r for r in rows}
        assert 1.5 < by_bits[4]["mean_error_pct"] < 6.0
        assert 1.5 < by_bits[8]["mean_error_pct"] < 6.0

    def test_statistics_ordered(self, rows):
        for row in rows:
            assert row["median_error_pct"] <= row["mean_error_pct"] * 1.5
            assert row["p95_error_pct"] > row["median_error_pct"]

    def test_deterministic_given_seed(self):
        a = fig6_ddot_error(n_trials=100, seed=3)
        b = fig6_ddot_error(n_trials=100, seed=3)
        assert a == b


@pytest.mark.slow
class TestReferenceModels:
    def test_vit_reference_quality(self):
        reference = reference_vit()
        assert reference.digital_accuracy > 0.8

    def test_bert_reference_quality(self):
        reference = reference_bert()
        assert reference.digital_accuracy > 0.8

    def test_cache_returns_same_object(self):
        assert reference_vit() is reference_vit()


@pytest.mark.slow
class TestFig14:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig14_wavelength_robustness(wavelengths=(6, 14, 26))

    def test_covers_both_models(self, rows):
        assert {r["model"] for r in rows} == {"vit", "bert"}

    def test_accuracy_flat_across_wavelengths(self, rows):
        """Paper: <0.5 % drop; small test sets give ~2 % granularity, so
        the bound here is a few samples' worth."""
        for row in rows:
            assert abs(row["accuracy_drop"]) <= 0.08

    def test_photonic_accuracy_stays_high(self, rows):
        for row in rows:
            assert row["photonic_accuracy"] > 0.75


@pytest.mark.slow
class TestFig15:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig15_noise_robustness(
            magnitude_stds=(0.02, 0.08, 0.30), phase_stds_deg=(1.0, 7.0, 20.0)
        )

    def test_paper_range_robust(self, rows):
        """Within the paper's sweep range the drop stays small."""
        in_range = [
            r
            for r in rows
            if (r["sweep"] == "magnitude" and r["value"] <= 0.08)
            or (r["sweep"] == "phase" and r["value"] <= 7.0)
        ]
        assert in_range
        for row in in_range:
            assert abs(row["accuracy_drop"]) <= 0.08

    def test_extreme_noise_finally_degrades(self, rows):
        """Extension: far beyond the paper's range accuracy collapses,
        demonstrating the sweep actually exercises the noise path."""
        extreme = [
            r
            for r in rows
            if (r["sweep"] == "magnitude" and r["value"] >= 0.30)
        ]
        assert extreme
        assert min(r["photonic_accuracy"] for r in extreme) < min(
            r["digital_accuracy"] for r in extreme
        )
