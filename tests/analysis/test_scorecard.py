"""Tests for the reproduction scorecard."""

import pytest

from repro.analysis.scorecard import (
    Claim,
    all_pass,
    default_claims,
    run_scorecard,
)


class TestClaim:
    def test_exact_pass(self):
        claim = Claim("x", 5.0, lambda: 5.0, "exact")
        assert claim.evaluate().passed

    def test_exact_fail(self):
        claim = Claim("x", 5.0, lambda: 5.0001, "exact")
        assert not claim.evaluate().passed

    def test_relative_within_tolerance(self):
        claim = Claim("x", 100.0, lambda: 104.0, "relative", tolerance=0.05)
        assert claim.evaluate().passed

    def test_relative_outside_tolerance(self):
        claim = Claim("x", 100.0, lambda: 110.0, "relative", tolerance=0.05)
        assert not claim.evaluate().passed

    def test_lower_bound(self):
        assert Claim("x", 10.0, lambda: 50.0, "lower-bound").evaluate().passed
        assert not Claim("x", 10.0, lambda: 5.0, "lower-bound").evaluate().passed

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Claim("x", 1.0, lambda: 1.0, "vibes").evaluate()

    def test_as_row(self):
        row = Claim("my claim", 2.0, lambda: 2.0, "exact").evaluate().as_row()
        assert row["claim"] == "my claim"
        assert row["pass"] is True


class TestDefaultScorecard:
    @pytest.fixture(scope="class")
    def results(self):
        return run_scorecard()

    def test_covers_headline_results(self, results):
        names = "\n".join(result.claim.name for result in results)
        for token in ("Eq.10", "Fig.3", "Table IV", "Fig.8", "Table V", "Fig.13"):
            assert token in names

    def test_every_claim_passes(self, results):
        failing = [r.claim.name for r in results if not r.passed]
        assert failing == [], f"reproduction regressions: {failing}"

    def test_all_pass_helper(self, results):
        assert all_pass(results)

    def test_at_least_a_dozen_claims(self):
        assert len(default_claims()) >= 12
