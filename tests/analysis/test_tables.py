"""Tests for table rendering."""

from repro.analysis import format_value, render_markdown_table, render_table


class TestFormatValue:
    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_int(self):
        assert format_value(42) == "42"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_small_float_scientific(self):
        assert "e" in format_value(1.94e-5)

    def test_midrange_float(self):
        assert format_value(3.14159) == "3.14"

    def test_string_passthrough(self):
        assert format_value("LT-B") == "LT-B"


class TestRenderTable:
    def test_contains_headers_and_values(self):
        text = render_table([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert "a" in text and "b" in text
        assert "1" in text and "y" in text

    def test_title(self):
        text = render_table([{"a": 1}], title="My table")
        assert text.startswith("My table")

    def test_empty(self):
        assert "(empty)" in render_table([])

    def test_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        lines = text.splitlines()
        assert "a" not in lines[0]

    def test_alignment(self):
        text = render_table([{"name": "x", "v": 1}, {"name": "longer", "v": 22}])
        lines = text.splitlines()
        assert len(lines[2]) <= len(lines[1]) + 2  # rows align under header


class TestMarkdownTable:
    def test_structure(self):
        text = render_markdown_table([{"a": 1, "b": 2.5}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2].startswith("| 1 |")

    def test_empty(self):
        assert render_markdown_table([]) == "(empty)\n"

    def test_missing_cell_blank(self):
        text = render_markdown_table(
            [{"a": 1, "b": 2}, {"a": 3}], columns=["a", "b"]
        )
        assert "| 3 |  |" in text
