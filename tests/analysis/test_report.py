"""Tests for EXPERIMENTS.md report generation."""

import pytest

from repro.analysis.report import architecture_sections, generate


class TestArchitectureSections:
    @pytest.fixture(scope="class")
    def sections(self):
        return architecture_sections()

    def test_every_figure_and_table_present(self, sections):
        text = "".join(sections)
        for heading in (
            "Fig. 3",
            "Eq. 10",
            "Table IV",
            "Fig. 7",
            "Fig. 8",
            "Fig. 9",
            "Fig. 10",
            "Fig. 11",
            "Fig. 12",
            "Table V",
            "Fig. 13",
            "Fig. 16",
        ):
            assert heading in text, f"missing section {heading}"

    def test_extension_sections_present(self, sections):
        text = "".join(sections)
        assert "Sec. VI-B" in text
        assert "Dispersion calibration" in text
        assert "pipelining" in text.lower()

    def test_paper_reference_numbers_quoted(self, sections):
        text = "".join(sections)
        assert "60.3" in text  # Table IV area
        assert "14.75" in text  # Fig. 8 power
        assert "112" in text  # Eq. 10 channels


class TestGenerate:
    def test_writes_markdown(self, tmp_path):
        output = tmp_path / "EXPERIMENTS.md"
        generate(output, skip_accuracy=True)
        text = output.read_text()
        assert text.startswith("# EXPERIMENTS")
        assert "| " in text  # markdown tables present
        assert "Table V" in text

    def test_output_is_fresh_each_time(self, tmp_path):
        output = tmp_path / "EXPERIMENTS.md"
        generate(output, skip_accuracy=True)
        first = output.read_text()
        generate(output, skip_accuracy=True)
        assert output.read_text() == first  # deterministic
