"""Tests for the device-parameter sensitivity study."""

import pytest

from repro.analysis.sensitivity import (
    PARAMETERS,
    sensitivity,
    sensitivity_sweep,
)
from repro.arch import lt_base


class TestSensitivity:
    def test_dac_power_dominates_at_8bit(self):
        """At 8-bit the DAC share exceeds 50 %, so doubling DAC power
        must raise chip power by more than a third."""
        result = sensitivity("dac_power", factor=2.0, config=lt_base(8))
        assert result.power_ratio > 1.35

    def test_dac_less_dominant_at_4bit(self):
        at4 = sensitivity("dac_power", 2.0, config=lt_base(4)).power_ratio
        at8 = sensitivity("dac_power", 2.0, config=lt_base(8)).power_ratio
        assert at4 < at8

    def test_passive_coupler_loss_is_minor(self):
        """Doubling the DC insertion loss only touches the laser budget."""
        result = sensitivity("coupler_loss", factor=2.0)
        assert result.power_ratio < 1.05

    def test_wall_plug_efficiency_helps(self):
        """A better laser (2x wall-plug) lowers power, never raises it."""
        result = sensitivity("wall_plug_efficiency", factor=2.0)
        assert result.power_ratio < 1.0

    def test_mzm_loss_feeds_laser_power(self):
        result = sensitivity("mzm_loss", factor=2.0)
        assert result.power_ratio > 1.0

    def test_energy_tracks_power_for_static_knobs(self):
        result = sensitivity("pd_power", factor=2.0)
        assert result.energy_ratio > 1.0

    def test_identity_factor_is_neutral(self):
        result = sensitivity("dac_power", factor=1.0000001)
        assert result.power_ratio == pytest.approx(1.0, abs=1e-5)

    def test_elasticity_bounded_by_share(self):
        """Elasticity of a component can never exceed 1 (its share)."""
        for parameter in ("dac_power", "adc_power", "mzm_power"):
            result = sensitivity(parameter, factor=2.0)
            assert 0.0 <= result.power_elasticity <= 1.0

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError):
            sensitivity("flux_capacitor", 2.0)

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            sensitivity("dac_power", 0.0)


class TestSweep:
    def test_covers_all_parameters(self):
        results = sensitivity_sweep(factor=2.0)
        assert {r.parameter for r in results} == set(PARAMETERS)

    def test_sorted_by_impact(self):
        ratios = [r.power_ratio for r in sensitivity_sweep(factor=2.0)]
        assert ratios == sorted(ratios, reverse=True)

    def test_most_impactful_is_a_converter_or_modulator(self):
        top = sensitivity_sweep(factor=2.0, config=lt_base(8))[0]
        assert top.parameter in ("dac_power", "mzm_power", "wall_plug_efficiency")
