"""Tests for the per-figure experiment runners (shape + headline values)."""

import pytest

from repro.analysis import (
    fig3_dispersion,
    fig7_area_breakdown,
    fig8_power_breakdown,
    fig9_core_scaling,
    fig10_efficiency_scaling,
    fig11_energy_comparison,
    fig12_variant_ablation,
    fig13_cross_platform,
    fig16_sparse_attention,
    table4_configs,
    table5_average_ratios,
    table5_photonic_comparison,
    wavelength_scaling_summary,
)


class TestFig3:
    def test_headline_numbers(self):
        result = fig3_dispersion()
        assert result["max_kappa_deviation_pct"] == pytest.approx(1.8, rel=0.1)
        assert result["max_phase_deviation_deg"] == pytest.approx(0.28, abs=0.02)
        assert len(result["rows"]) == 25

    def test_rows_cover_grid(self):
        rows = fig3_dispersion(n_channels=11)["rows"]
        wavelengths = [row["wavelength_nm"] for row in rows]
        assert wavelengths == sorted(wavelengths)
        assert min(wavelengths) < 1550 < max(wavelengths)


class TestTable4:
    def test_rows(self):
        rows = table4_configs()
        by_name = {row["name"]: row for row in rows}
        assert by_name["LT-B"]["Nt"] == 4
        assert by_name["LT-L"]["Nt"] == 8
        assert by_name["LT-B"]["area_mm2"] == pytest.approx(60.3, rel=0.05)
        assert by_name["LT-L"]["area_mm2"] == pytest.approx(112.82, rel=0.05)


class TestFig7and8:
    def test_area_shares_sum_to_100(self):
        rows = [r for r in fig7_area_breakdown() if r["config"] == "LT-B"]
        assert sum(r["share_pct"] for r in rows) == pytest.approx(100.0)

    def test_power_has_all_configs_and_bits(self):
        rows = fig8_power_breakdown()
        combos = {(r["config"].split("@")[0], r["bits"]) for r in rows}
        assert ("LT-B", 4) in combos and ("LT-L", 8) in combos

    def test_lt_base_4bit_total(self):
        rows = [
            r
            for r in fig8_power_breakdown()
            if r["bits"] == 4 and r["config"].startswith("LT-B")
        ]
        assert sum(r["power_w"] for r in rows) == pytest.approx(14.75, rel=0.05)


class TestFig9and10:
    def test_fig9_monotone_scaling(self):
        rows = fig9_core_scaling()
        areas = [r["area_mm2"] for r in rows]
        powers = [r["power_w"] for r in rows]
        latencies = [r["latency_ps"] for r in rows]
        assert areas == sorted(areas)
        assert powers == sorted(powers)
        assert latencies == sorted(latencies)

    def test_fig10_trends(self):
        rows = fig10_efficiency_scaling()
        tops = [r["tops"] for r in rows]
        tops_per_w = [r["tops_per_w"] for r in rows]
        per_area_eff = [r["tops_per_w_mm2"] for r in rows]
        assert tops == sorted(tops)
        assert tops_per_w[-1] > tops_per_w[0]  # efficiency improves
        assert per_area_eff[-1] < per_area_eff[0]  # converter bottleneck


class TestFig11and12:
    def test_fig11_attention_ratio(self):
        rows = fig11_energy_comparison()["attention"]
        by_design = {r["design"]: r["normalized_total"] for r in rows}
        assert by_design["LT-crossbar-B"] == pytest.approx(1.0)
        assert by_design["MRR"] == pytest.approx(2.62, rel=0.5)  # paper 2.62x

    def test_fig11_linear_ordering(self):
        rows = fig11_energy_comparison()["linear"]
        by_design = {r["design"]: r["normalized_total"] for r in rows}
        assert by_design["MZI"] > by_design["LT-crossbar-B"]
        assert by_design["MRR"] > by_design["LT-crossbar-B"]

    def test_fig12_ordering(self):
        for workload, rows in fig12_variant_ablation().items():
            by_design = {r["design"]: r["normalized_total"] for r in rows}
            assert by_design["LT-B"] == pytest.approx(1.0)
            assert by_design["LT-crossbar-B"] > 1.0
            assert by_design["LT-broadcast-B"] > by_design["LT-crossbar-B"]
            assert by_design["MRR"] > by_design["LT-crossbar-B"]

    def test_fig12_attention_mrr_ratio(self):
        rows = fig12_variant_ablation()["attention"]
        by_design = {r["design"]: r["normalized_total"] for r in rows}
        assert by_design["MRR"] == pytest.approx(5.05, rel=0.35)  # paper 5.05x


class TestTable5:
    def test_all_modules_present(self):
        rows = table5_photonic_comparison(4)
        assert {(r["model"], r["module"]) for r in rows} == {
            (model, module)
            for model in ("deit-tiny", "deit-base")
            for module in ("MHA", "FFN", "All")
        }

    def test_lt_beats_baselines_everywhere(self):
        for row in table5_photonic_comparison(4):
            assert row["lt_energy_mj"] < row["mrr_energy_mj"]
            assert row["lt_latency_ms"] < row["mrr_latency_ms"]
            assert row["lt_edp"] < row["mzi_edp"]

    def test_average_ratios_in_band(self):
        ratios = table5_average_ratios(4)
        assert ratios["mrr_energy"] == pytest.approx(4.0, rel=0.4)
        assert ratios["mrr_latency"] == pytest.approx(12.8, rel=0.35)
        assert 200 < ratios["mzi_latency"] < 1500
        assert ratios["mzi_edp"] > 1e3
        assert ratios["lt_no_opt_energy"] == pytest.approx(1.8, rel=0.35)

    def test_8bit_mzi_energy_worse_than_4bit(self):
        """Paper: the MZI energy ratio explodes at 8-bit (laser power)."""
        assert (
            table5_average_ratios(8)["mzi_energy"]
            > table5_average_ratios(4)["mzi_energy"]
        )


class TestFig13:
    def test_covers_all_workloads_and_platforms(self):
        rows = fig13_cross_platform()
        workloads = {r["workload"] for r in rows}
        assert len(workloads) == 5
        platforms = {r["platform"] for r in rows}
        assert "LT-B" in platforms and "GPU (A100)" in platforms

    def test_lt_lowest_energy_per_workload(self):
        rows = fig13_cross_platform(bits=(4,))
        for workload in {r["workload"] for r in rows}:
            subset = [r for r in rows if r["workload"] == workload]
            lt = min(
                r["energy_mj"] for r in subset if r["platform"].startswith("LT")
            )
            electronic = min(
                r["energy_mj"]
                for r in subset
                if not r["platform"].startswith("LT")
            )
            assert lt < electronic

    def test_lt_highest_fps_per_workload(self):
        rows = fig13_cross_platform(bits=(4,))
        for workload in {r["workload"] for r in rows}:
            subset = [r for r in rows if r["workload"] == workload]
            best = max(subset, key=lambda r: r["fps"])
            assert best["platform"].startswith("LT")


class TestFig16:
    def test_savings_monotone_in_window(self):
        rows = fig16_sparse_attention()
        savings = [r["cycle_savings"] for r in rows]
        assert savings == sorted(savings, reverse=True)

    def test_narrow_window_saves_cycles(self):
        rows = fig16_sparse_attention(windows=(3,))
        assert rows[0]["cycle_savings"] > 3.0
        assert rows[0]["sparse_cycles"] < rows[0]["dense_cycles"]


class TestWavelengthScaling:
    def test_eq10(self):
        summary = wavelength_scaling_summary()
        assert summary["max_wavelengths"] == 112
        assert summary["lambda_min_nm"] == pytest.approx(1527.88, abs=0.01)
        assert summary["lambda_max_nm"] == pytest.approx(1572.76, abs=0.02)
