"""Tests for device transfer functions (couplers, shifters, MZM, PD)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.optics import (
    WDMGrid,
    coupler_matrix,
    coupling_factor,
    mzm_encode,
    phase_response,
    phase_shifter_matrix,
    photocurrent,
)


class TestCouplingFactor:
    def test_design_point_is_50_50(self):
        kappa = coupling_factor(np.array([1550e-9]))
        assert kappa[0] == pytest.approx(0.5, abs=1e-12)

    def test_deviation_grows_with_detuning(self):
        grid = WDMGrid(25)
        kappa = coupling_factor(grid.wavelengths)
        deviation = np.abs(kappa - 0.5)
        center = grid.n_channels // 2
        assert deviation[0] > deviation[center // 2] > deviation[center]

    def test_paper_deviation_at_25_channels(self):
        """Fig. 3: ~1.8 % worst-case relative deviation."""
        grid = WDMGrid(25)
        kappa = coupling_factor(grid.wavelengths)
        worst = np.max(np.abs(kappa - 0.5)) / 0.5
        assert worst == pytest.approx(0.018, rel=0.1)

    def test_kappa_within_physical_bounds(self):
        grid = WDMGrid(112)  # the full FSR-limited comb
        kappa = coupling_factor(grid.wavelengths)
        assert np.all(kappa > 0.0) and np.all(kappa < 1.0)


class TestPhaseResponse:
    def test_design_point_exact(self):
        phase = phase_response(np.array([1550e-9]), -np.pi / 2)
        assert phase[0] == pytest.approx(-np.pi / 2)

    def test_paper_deviation_at_25_channels(self):
        """Fig. 3: ~0.28 degree worst-case phase deviation."""
        grid = WDMGrid(25)
        phase = phase_response(grid.wavelengths, -np.pi / 2)
        worst_deg = np.degrees(np.max(np.abs(phase + np.pi / 2)))
        assert worst_deg == pytest.approx(0.28, abs=0.02)

    def test_shorter_wavelength_gets_larger_magnitude(self):
        phase = phase_response(np.array([1549e-9, 1551e-9]), -np.pi / 2)
        assert abs(phase[0]) > abs(phase[1])


class TestCouplerMatrix:
    def test_50_50_matrix(self):
        m = coupler_matrix(0.5)
        expected = np.array([[1, 1j], [1j, 1]]) / np.sqrt(2)
        assert np.allclose(m, expected)

    def test_unitary_for_any_kappa(self):
        for kappa in (0.0, 0.25, 0.5, 0.75, 1.0):
            m = coupler_matrix(kappa)
            assert np.allclose(m @ m.conj().T, np.eye(2), atol=1e-12)

    def test_vectorised_shape(self):
        m = coupler_matrix(np.full(7, 0.5))
        assert m.shape == (7, 2, 2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            coupler_matrix(1.5)
        with pytest.raises(ValueError):
            coupler_matrix(-0.1)

    @given(kappa=st.floats(min_value=0.0, max_value=1.0))
    def test_energy_conservation(self, kappa):
        m = coupler_matrix(kappa)
        vec = np.array([0.6, 0.8j])
        out = m @ vec
        assert np.sum(np.abs(out) ** 2) == pytest.approx(
            np.sum(np.abs(vec) ** 2), rel=1e-9
        )


class TestPhaseShifterMatrix:
    def test_phase_applied_to_lower_arm_only(self):
        m = phase_shifter_matrix(np.pi / 3)
        vec = np.array([1.0, 1.0], dtype=complex)
        out = m @ vec
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(np.exp(1j * np.pi / 3))

    def test_unitary(self):
        m = phase_shifter_matrix(-np.pi / 2)
        assert np.allclose(m @ m.conj().T, np.eye(2))


class TestMZMEncode:
    def test_identity_within_range(self):
        values = np.array([-1.0, -0.5, 0.0, 0.5, 1.0])
        assert np.allclose(mzm_encode(values), values)

    def test_full_range_including_negatives(self):
        """Sign encoding is the coherent design's key capability."""
        assert mzm_encode(np.array([-0.7]))[0] == pytest.approx(-0.7)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mzm_encode(np.array([1.2]))

    def test_clip_mode(self):
        out = mzm_encode(np.array([1.7, -2.0]), clip=True)
        assert np.allclose(out, [1.0, -1.0])


class TestPhotocurrent:
    def test_sums_channel_intensities(self):
        fields = np.array([1.0, 1j, 0.5])
        assert photocurrent(fields) == pytest.approx(1.0 + 1.0 + 0.25)

    def test_responsivity_scales(self):
        fields = np.array([1.0, 2.0])
        assert photocurrent(fields, responsivity=0.8) == pytest.approx(0.8 * 5.0)

    def test_phase_invariance(self):
        """PDs detect intensity only: global phase cannot matter."""
        fields = np.array([0.3 + 0.4j, -0.2j])
        rotated = fields * np.exp(1j * 1.234)
        assert photocurrent(fields) == pytest.approx(photocurrent(rotated))
