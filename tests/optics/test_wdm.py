"""Tests for DWDM grid arithmetic and the Eq. 10 channel-count limit."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.optics import (
    DEFAULT_CENTER_WAVELENGTH,
    DEFAULT_CHANNEL_SPACING,
    WDMGrid,
    fsr_wavelength_window,
    max_channels,
)
from repro.units import NM, THZ


class TestWDMGrid:
    def test_default_grid_parameters(self):
        grid = WDMGrid(12)
        assert grid.center == pytest.approx(1550 * NM)
        assert grid.spacing == pytest.approx(0.4 * NM)

    def test_wavelengths_centred(self):
        grid = WDMGrid(25)
        assert np.median(grid.wavelengths) == pytest.approx(grid.center)

    def test_wavelengths_sorted_and_spaced(self):
        grid = WDMGrid(12)
        diffs = np.diff(grid.wavelengths)
        assert np.allclose(diffs, grid.spacing)

    def test_single_channel_sits_at_center(self):
        grid = WDMGrid(1)
        assert grid.wavelengths[0] == pytest.approx(grid.center)

    def test_even_channel_count_straddles_center(self):
        grid = WDMGrid(2)
        assert grid.wavelengths[0] == pytest.approx(grid.center - 0.2 * NM)
        assert grid.wavelengths[1] == pytest.approx(grid.center + 0.2 * NM)

    def test_span(self):
        assert WDMGrid(25).span == pytest.approx(24 * 0.4 * NM)

    def test_detunings_antisymmetric(self):
        grid = WDMGrid(13)
        assert np.allclose(grid.detunings, -grid.detunings[::-1])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            WDMGrid(0)
        with pytest.raises(ValueError):
            WDMGrid(4, spacing=-1.0)

    @given(n=st.integers(min_value=1, max_value=200))
    def test_channel_count_matches(self, n):
        assert WDMGrid(n).wavelengths.size == n


class TestEq10:
    """The paper's microdisk FSR -> wavelength window -> 112 channels."""

    def test_window_edges_match_paper(self):
        lower, upper = fsr_wavelength_window(5.6 * THZ)
        assert lower / NM == pytest.approx(1527.88, abs=0.01)
        assert upper / NM == pytest.approx(1572.76, abs=0.01)

    def test_112_channels(self):
        assert max_channels(5.6 * THZ) == 112

    def test_window_contains_center(self):
        lower, upper = fsr_wavelength_window(5.6 * THZ)
        assert lower < DEFAULT_CENTER_WAVELENGTH < upper

    def test_larger_fsr_gives_more_channels(self):
        assert max_channels(8 * THZ) > max_channels(5.6 * THZ)

    def test_finer_spacing_gives_more_channels(self):
        assert max_channels(5.6 * THZ, spacing=0.2 * NM) > max_channels(
            5.6 * THZ, spacing=DEFAULT_CHANNEL_SPACING
        )

    def test_rejects_nonpositive_fsr(self):
        with pytest.raises(ValueError):
            fsr_wavelength_window(0.0)
