"""Tests for the WDM optical field container."""

import numpy as np
import pytest

from repro.optics import OpticalField, WDMGrid


@pytest.fixture
def grid():
    return WDMGrid(4)


class TestConstruction:
    def test_from_values(self, grid):
        field = OpticalField.from_values(grid, np.array([1.0, -0.5, 0.0, 0.25]))
        assert field.amplitudes.dtype == complex
        assert np.allclose(field.amplitudes.real, [1.0, -0.5, 0.0, 0.25])

    def test_shape_mismatch_rejected(self, grid):
        with pytest.raises(ValueError):
            OpticalField.from_values(grid, np.zeros(3))
        with pytest.raises(ValueError):
            OpticalField(grid, np.zeros(5, dtype=complex))


class TestArithmetic:
    def test_scaled(self, grid):
        field = OpticalField.from_values(grid, np.ones(4))
        halved = field.scaled(0.5)
        assert np.allclose(halved.amplitudes, 0.5)
        # original untouched (immutability)
        assert np.allclose(field.amplitudes, 1.0)

    def test_with_phase(self, grid):
        field = OpticalField.from_values(grid, np.ones(4))
        rotated = field.with_phase(np.full(4, np.pi / 2))
        assert np.allclose(rotated.amplitudes, 1j)

    def test_phase_shape_checked(self, grid):
        field = OpticalField.from_values(grid, np.ones(4))
        with pytest.raises(ValueError):
            field.with_phase(np.zeros(2))


class TestIntensity:
    def test_intensities(self, grid):
        field = OpticalField(grid, np.array([1.0, 2j, 0.0, -1.0]))
        assert np.allclose(field.intensities, [1.0, 4.0, 0.0, 1.0])

    def test_total_intensity(self, grid):
        field = OpticalField(grid, np.array([1.0, 2j, 0.0, -1.0]))
        assert field.total_intensity == pytest.approx(6.0)

    def test_phase_rotation_preserves_intensity(self, grid):
        field = OpticalField.from_values(grid, np.array([0.5, -0.5, 0.7, 0.1]))
        rotated = field.with_phase(np.array([0.1, 0.7, -2.0, 3.0]))
        assert rotated.total_intensity == pytest.approx(field.total_intensity)
