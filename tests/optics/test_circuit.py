"""Tests for the circuit-level DDot simulator (INTERCONNECT substitute)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.optics import DDotCircuit, WDMGrid

finite_vec = hnp.arrays(
    float,
    st.integers(min_value=1, max_value=12),
    elements=st.floats(min_value=-1.0, max_value=1.0),
)


@pytest.fixture
def ideal_circuit():
    return DDotCircuit(WDMGrid(12), include_dispersion=False)


class TestIdealDotProduct:
    def test_simple_dot(self, ideal_circuit):
        x = np.array([0.5, -0.3, 0.8])
        y = np.array([0.2, 0.9, -0.4])
        assert ideal_circuit.dot_product(x, y) == pytest.approx(float(x @ y))

    def test_full_range_signs(self, ideal_circuit):
        """Negative operands and negative outputs work in one shot."""
        x = np.array([-1.0, -0.5])
        y = np.array([1.0, 0.5])
        assert ideal_circuit.dot_product(x, y) == pytest.approx(-1.25)

    def test_orthogonal_vectors(self, ideal_circuit):
        assert ideal_circuit.dot_product(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(0.0, abs=1e-12)

    def test_zero_vector(self, ideal_circuit):
        assert ideal_circuit.dot_product(np.zeros(5), np.ones(5)) == pytest.approx(0.0)

    @settings(max_examples=50)
    @given(data=st.data())
    def test_matches_numpy_dot(self, data):
        x = data.draw(finite_vec)
        y = data.draw(
            hnp.arrays(
                float, x.size, elements=st.floats(min_value=-1.0, max_value=1.0)
            )
        )
        circuit = DDotCircuit(WDMGrid(12), include_dispersion=False)
        assert circuit.dot_product(x, y) == pytest.approx(float(x @ y), abs=1e-9)


class TestDispersion:
    def test_dispersion_introduces_small_error(self):
        grid = WDMGrid(12)
        circuit = DDotCircuit(grid, include_dispersion=True)
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, 12)
        y = rng.uniform(-1, 1, 12)
        result = circuit.dot_product(x, y)
        ideal = float(x @ y)
        assert result != pytest.approx(ideal, abs=1e-12)  # dispersion present
        assert result == pytest.approx(ideal, abs=0.05)  # but small

    def test_center_channel_unaffected(self):
        """An odd grid's centre channel sits exactly at the design point."""
        grid = WDMGrid(13)
        circuit = DDotCircuit(grid)
        x = np.zeros(13)
        y = np.zeros(13)
        x[6] = 0.7
        y[6] = 0.9
        assert circuit.dot_product(x, y) == pytest.approx(0.63, abs=1e-12)

    def test_kappa_profile_exposed(self):
        circuit = DDotCircuit(WDMGrid(25))
        assert circuit.kappa.shape == (25,)
        assert np.max(np.abs(circuit.kappa - 0.5)) / 0.5 < 0.02


class TestBalancedDetection:
    def test_differential_structure(self, ideal_circuit):
        x = np.array([1.0])
        y = np.array([1.0])
        out = ideal_circuit.detect(x, y)
        # Identical inputs interfere constructively on the sum port only.
        assert out.current_sum_port == pytest.approx(2.0)
        assert out.current_diff_port == pytest.approx(0.0, abs=1e-12)
        assert out.differential == pytest.approx(2.0)

    def test_energy_conservation(self, ideal_circuit):
        """The passive circuit cannot create or destroy optical power."""
        rng = np.random.default_rng(7)
        x = rng.uniform(-1, 1, 12)
        y = rng.uniform(-1, 1, 12)
        out = ideal_circuit.detect(x, y)
        power_in = float(np.sum(x**2) + np.sum(y**2))
        assert out.current_sum_port + out.current_diff_port == pytest.approx(
            power_in, rel=1e-9
        )

    def test_responsivity_mismatch_biases_output(self):
        circuit = DDotCircuit(
            WDMGrid(4), include_dispersion=False, responsivities=(1.0, 0.9)
        )
        x = np.array([0.5, 0.5])
        y = np.array([-0.5, 0.5])
        ideal = float(x @ y)
        assert circuit.dot_product(x, y) != pytest.approx(ideal, abs=1e-6)


class TestNoiseInjection:
    def test_noise_changes_result(self):
        circuit = DDotCircuit(WDMGrid(12), include_dispersion=False)
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, 12)
        y = rng.uniform(-1, 1, 12)
        noisy = circuit.dot_product(
            x, y, magnitude_std=0.03, phase_std=np.radians(2), rng=rng
        )
        assert noisy != pytest.approx(float(x @ y), abs=1e-9)

    def test_noise_is_unbiased_on_average(self):
        circuit = DDotCircuit(WDMGrid(12), include_dispersion=False)
        rng = np.random.default_rng(5)
        x = rng.uniform(0.2, 1, 12)
        y = rng.uniform(0.2, 1, 12)
        samples = [
            circuit.dot_product(
                x, y, magnitude_std=0.03, phase_std=np.radians(2), rng=rng
            )
            for _ in range(400)
        ]
        assert np.mean(samples) == pytest.approx(float(x @ y), rel=0.02)

    def test_reproducible_with_seeded_rng(self):
        circuit = DDotCircuit(WDMGrid(8))
        x = np.linspace(-1, 1, 8)
        y = np.linspace(1, -1, 8)
        a = circuit.dot_product(x, y, 0.03, 0.03, np.random.default_rng(42))
        b = circuit.dot_product(x, y, 0.03, 0.03, np.random.default_rng(42))
        assert a == b


class TestInputValidation:
    def test_vector_too_long(self, ideal_circuit):
        with pytest.raises(ValueError):
            ideal_circuit.dot_product(np.zeros(13), np.zeros(13))

    def test_shape_mismatch(self, ideal_circuit):
        with pytest.raises(ValueError):
            ideal_circuit.dot_product(np.zeros(3), np.zeros(4))

    def test_matrix_rejected(self, ideal_circuit):
        with pytest.raises(ValueError):
            ideal_circuit.detect(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_short_vectors_padded(self, ideal_circuit):
        assert ideal_circuit.dot_product(
            np.array([1.0]), np.array([1.0])
        ) == pytest.approx(1.0)
