"""Tests for the optical broadcast interconnect graph."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.devices import default_library, splitter_tree_loss_db
from repro.optics.interconnect import (
    BroadcastTree,
    broadcast_loss_budget,
    PathReport,
)


class TestTreeStructure:
    def test_single_leaf_no_splitters(self):
        tree = BroadcastTree(1)
        assert tree.depth == 0
        assert tree.total_splitters() == 0

    def test_two_leaves_one_splitter(self):
        tree = BroadcastTree(2)
        assert tree.depth == 1
        assert tree.total_splitters() == 1

    def test_depth_is_log2(self):
        assert BroadcastTree(4).depth == 2
        assert BroadcastTree(8).depth == 3
        assert BroadcastTree(5).depth == 3  # rounded up

    def test_all_leaves_reachable(self):
        tree = BroadcastTree(6)
        for leaf in tree.leaves():
            report = tree.path_report(leaf)
            assert isinstance(report, PathReport)
            assert report.loss_db > 0

    def test_unknown_leaf_rejected(self):
        with pytest.raises(KeyError):
            BroadcastTree(4).path_report("leaf/99")

    def test_validation(self):
        with pytest.raises(ValueError):
            BroadcastTree(0)


class TestLossAccounting:
    def test_splitters_on_path_equal_depth(self):
        tree = BroadcastTree(8)
        for leaf in tree.leaves():
            assert tree.path_report(leaf).splitters == 3

    def test_loss_grows_with_fanout(self):
        losses = [BroadcastTree(n).worst_case_loss_db() for n in (2, 4, 8, 16)]
        assert losses == sorted(losses)

    def test_each_split_costs_3db_plus_excess(self):
        lib = default_library()
        two = BroadcastTree(2).path_report("leaf/0")
        split_only = 10 * math.log10(2) + lib.y_branch.insertion_loss_db
        assert two.loss_db == pytest.approx(
            split_only + two.waveguide_length * 100.0, rel=1e-6
        )

    def test_power_conservation(self):
        """A passive splitter network cannot deliver more total power
        than it receives."""
        for n in (1, 2, 4, 7, 16):
            assert BroadcastTree(n).power_conservation_check() <= 1.0 + 1e-9

    def test_matches_closed_form_within_band(self):
        """The analytic splitter_tree_loss_db used by the laser model
        approximates the graph's split losses (propagation excluded)."""
        lib = default_library()
        for n in (2, 4, 8, 16):
            tree = BroadcastTree(n, tile_pitch=0.0)  # no propagation
            assert tree.worst_case_loss_db() == pytest.approx(
                splitter_tree_loss_db(n, lib), abs=1.0
            )

    @given(n=st.integers(min_value=1, max_value=32))
    def test_worst_case_dominates_every_leaf(self, n):
        tree = BroadcastTree(n)
        worst = tree.worst_case_loss_db()
        assert all(
            tree.path_report(leaf).loss_db <= worst + 1e-12
            for leaf in tree.leaves()
        )


class TestBudgetHelper:
    def test_four_tile_budget(self):
        budget = broadcast_loss_budget(4)
        # two splits (6 dB + excess) plus millimetre-scale propagation
        assert 6.0 < budget < 9.0

    def test_budget_monotone(self):
        assert broadcast_loss_budget(8) > broadcast_loss_budget(4)
