"""Tests for GEMM operation descriptors."""

import pytest

from repro.workloads import (
    GEMMOp,
    MODULE_ATTENTION,
    MODULE_FFN,
    MODULE_PROJECTION,
    dynamic_ops,
    filter_module,
    static_ops,
    total_flops,
    total_macs,
)


class TestGEMMOp:
    def test_macs(self):
        op = GEMMOp("x", m=4, k=5, n=6)
        assert op.macs == 120

    def test_macs_scale_with_count(self):
        op = GEMMOp("x", m=4, k=5, n=6, count=3)
        assert op.macs == 360

    def test_flops_twice_macs(self):
        op = GEMMOp("x", m=2, k=3, n=4)
        assert op.flops == 2 * op.macs

    def test_element_counts(self):
        op = GEMMOp("x", m=2, k=3, n=4, count=5)
        assert op.output_elements == 2 * 4 * 5
        assert op.operand_a_elements == 2 * 3 * 5
        assert op.operand_b_elements == 3 * 4 * 5

    def test_static_weights_zero_for_dynamic(self):
        op = GEMMOp("attn", m=10, k=8, n=10, module=MODULE_ATTENTION, dynamic=True)
        assert op.static_weight_elements == 0

    def test_static_weights_for_linear(self):
        op = GEMMOp("fc", m=10, k=8, n=16, module=MODULE_FFN, count=2)
        assert op.static_weight_elements == 8 * 16 * 2

    def test_single_collapses_count(self):
        op = GEMMOp("x", m=2, k=2, n=2, count=7)
        assert op.single().count == 1
        assert op.single().macs == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            GEMMOp("bad", m=0, k=1, n=1)
        with pytest.raises(ValueError):
            GEMMOp("bad", m=1, k=1, n=1, count=0)
        with pytest.raises(ValueError):
            GEMMOp("bad", m=1, k=1, n=1, module="not-a-module")


class TestTraceHelpers:
    @pytest.fixture
    def trace(self):
        return [
            GEMMOp("qkt", 4, 4, 4, module=MODULE_ATTENTION, dynamic=True),
            GEMMOp("proj", 4, 4, 4, module=MODULE_PROJECTION),
            GEMMOp("ffn", 4, 4, 8, module=MODULE_FFN),
        ]

    def test_total_macs(self, trace):
        assert total_macs(trace) == 64 + 64 + 128

    def test_total_flops(self, trace):
        assert total_flops(trace) == 2 * total_macs(trace)

    def test_filter_module(self, trace):
        assert [op.name for op in filter_module(trace, MODULE_FFN)] == ["ffn"]
        both = filter_module(trace, MODULE_FFN, MODULE_PROJECTION)
        assert {op.name for op in both} == {"proj", "ffn"}

    def test_filter_unknown_module_raises(self, trace):
        with pytest.raises(ValueError):
            filter_module(trace, "bogus")

    def test_dynamic_static_partition(self, trace):
        assert [op.name for op in dynamic_ops(trace)] == ["qkt"]
        assert {op.name for op in static_ops(trace)} == {"proj", "ffn"}
        assert len(dynamic_ops(trace)) + len(static_ops(trace)) == len(trace)
