"""Decode-shape edge cases feeding the serving batcher (Sec. VI-B).

The satellite coverage the serving PR promises: single-token GEMV
batches, ragged prompt coalescing under the padding policy, and KV
accounting consistency between :func:`kv_cache_bytes` and the
:class:`SessionCache` ledger.
"""

import numpy as np
import pytest

from repro.serving import (
    DecodeServable,
    InferenceRequest,
    RequestHandle,
    ServingEngine,
    SessionCache,
    SimulatedClock,
)
from repro.workloads import (
    DecoderConfig,
    decode_trace,
    dynamic_ops,
    kv_cache_bytes,
    pad_prompts,
)


def toy_decoder() -> DecoderConfig:
    return DecoderConfig("toy", depth=2, dim=16, heads=2, mlp_ratio=2.0)


def decode_request(servable, payload, session_id) -> InferenceRequest:
    return InferenceRequest(
        payload=servable.prepare(payload),
        handle=RequestHandle(0, 0.0),
        arrival=0.0,
        session_id=session_id,
    )


class TestSingleTokenGEMVBatches:
    def test_trace_projections_match_the_coalesced_batch_shape(self):
        """decode_trace's qkv GEMV row is exactly the batcher's stack."""
        batch = 5
        trace = decode_trace(toy_decoder(), context_len=3, batch=batch)
        qkv = next(op for op in trace if op.name == "qkv_proj")
        assert (qkv.m, qkv.k) == (batch, 16)
        # Attention stays per-request: single-query rows, per-request count.
        for op in dynamic_ops(trace):
            assert op.m == 1

    def test_engine_coalesces_single_token_requests_into_one_gemv(self):
        servable = DecodeServable(toy_decoder(), seed=0)
        rng = np.random.default_rng(0)
        engine = ServingEngine(
            servable, max_batch_size=8, clock=SimulatedClock()
        )
        with engine:
            handles = [
                engine.submit(rng.normal(size=16), session_id=f"s{i}")
                for i in range(5)
            ]
            engine.run_until_idle()
            outputs = [h.result(timeout=0) for h in handles]
        assert engine.metrics.batch_occupancy() == {5: 1}
        assert all(out.shape == (16,) for out in outputs)
        # Each request grew its own session by exactly one token.
        assert all(servable.cache.context_len(f"s{i}") == 1 for i in range(5))

    def test_batch_of_one_equals_batch_of_many(self):
        rng = np.random.default_rng(1)
        vectors = [rng.normal(size=16) for _ in range(4)]

        def run(max_batch_size):
            servable = DecodeServable(toy_decoder(), seed=0)
            engine = ServingEngine(
                servable, max_batch_size=max_batch_size, clock=SimulatedClock()
            )
            with engine:
                handles = [
                    engine.submit(x, session_id=f"s{i}")
                    for i, x in enumerate(vectors)
                ]
                engine.run_until_idle()
                return [h.result(timeout=0) for h in handles]

        for single, coalesced in zip(run(1), run(8)):
            assert np.array_equal(single, coalesced)


class TestRaggedPromptPadding:
    def test_pads_to_the_batch_maximum_by_default(self):
        padded, lengths = pad_prompts([[1, 2, 3], [4], [5, 6]])
        assert padded.shape == (3, 3)
        assert lengths == [3, 1, 2]
        assert padded.tolist() == [[1, 2, 3], [4, 0, 0], [5, 6, 0]]

    def test_explicit_target_and_pad_id(self):
        padded, _ = pad_prompts([[1], [2, 3]], pad_id=9, length=4)
        assert padded.tolist() == [[1, 9, 9, 9], [2, 3, 9, 9]]

    def test_rejects_overlong_prompts(self):
        with pytest.raises(ValueError):
            pad_prompts([[1, 2, 3]], length=2)

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            pad_prompts([])
        with pytest.raises(ValueError):
            pad_prompts([[]])

    def test_single_token_prompts_coalesce(self):
        """The decode regime: every prompt is one token long."""
        padded, lengths = pad_prompts([[7], [8], [9]])
        assert padded.shape == (3, 1)
        assert lengths == [1, 1, 1]


class TestKVAccountingConsistency:
    def test_servable_sessions_follow_kv_cache_bytes(self):
        config = toy_decoder()
        servable = DecodeServable(config, seed=0)
        servable.cache.open_session("s", prompt_len=6)
        rng = np.random.default_rng(2)
        for step in range(1, 4):
            servable.execute([decode_request(servable, rng.normal(size=16), "s")])
            expected = kv_cache_bytes(config, 6 + step, bits=servable.cache.kv_bits)
            assert servable.cache.session_bytes("s") == expected

    def test_batched_decode_accounts_every_session(self):
        config = toy_decoder()
        cache = SessionCache(config)
        servable = DecodeServable(config, cache=cache, seed=0)
        rng = np.random.default_rng(3)
        engine = ServingEngine(servable, max_batch_size=4, clock=SimulatedClock())
        with engine:
            for step in range(2):
                for sid in ("a", "b"):
                    engine.submit(rng.normal(size=16), session_id=sid)
            engine.run_until_idle()
        assert cache.total_kv_bytes() == 2 * kv_cache_bytes(config, 2)

    def test_kv_bits_thread_through(self):
        config = toy_decoder()
        cache = SessionCache(config, kv_bits=4)
        servable = DecodeServable(config, cache=cache, seed=0)
        servable.execute([decode_request(servable, np.ones(16), "s")])
        assert cache.session_bytes("s") == kv_cache_bytes(config, 1, bits=4)
