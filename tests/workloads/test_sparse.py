"""Tests for block-sparse (window) attention support."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DPTC, DPTCGeometry, NoiseModel
from repro.workloads import (
    WindowAttentionPattern,
    blockified_av_ops,
    blockified_qk_ops,
    cycle_savings,
    dense_attention,
    dense_cycles,
    sparse_attention,
    sparse_cycles,
)


class TestPattern:
    def test_reach(self):
        assert WindowAttentionPattern(16, window=3, block=4).reach == 1
        assert WindowAttentionPattern(16, window=7, block=4).reach == 3

    def test_mask_structure(self):
        pattern = WindowAttentionPattern(5, window=3, block=2)
        mask = pattern.mask()
        assert mask.shape == (5, 5)
        assert mask[0, 0] and mask[0, 1] and not mask[0, 2]
        assert np.array_equal(mask, mask.T)  # symmetric window

    def test_density_decreases_with_length(self):
        d_short = WindowAttentionPattern(16, 3, 4).density()
        d_long = WindowAttentionPattern(64, 3, 4).density()
        assert d_long < d_short

    def test_q_block_rows_partial_last(self):
        pattern = WindowAttentionPattern(10, window=3, block=4)
        assert pattern.n_blocks == 3
        assert pattern.q_block_rows(0) == (0, 4)
        assert pattern.q_block_rows(2) == (8, 10)
        with pytest.raises(IndexError):
            pattern.q_block_rows(3)

    def test_key_span_clipped_at_edges(self):
        pattern = WindowAttentionPattern(10, window=5, block=4)
        assert pattern.key_span(0) == (0, 6)  # reach 2 beyond row 3
        assert pattern.key_span(2) == (6, 10)

    def test_key_span_covers_window(self):
        pattern = WindowAttentionPattern(20, window=7, block=5)
        for b in range(pattern.n_blocks):
            q0, q1 = pattern.q_block_rows(b)
            k0, k1 = pattern.key_span(b)
            for i in range(q0, q1):
                assert k0 <= max(0, i - pattern.reach)
                assert k1 >= min(20, i + pattern.reach + 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowAttentionPattern(10, window=4, block=2)  # even window
        with pytest.raises(ValueError):
            WindowAttentionPattern(0, window=3, block=2)
        with pytest.raises(ValueError):
            WindowAttentionPattern(10, window=3, block=0)


class TestBlockifiedOps:
    def test_qk_chunk_shapes(self):
        pattern = WindowAttentionPattern(12, window=3, block=4)
        ops = blockified_qk_ops(pattern, head_dim=8)
        assert len(ops) == 3
        assert all(op.k == 8 and op.dynamic for op in ops)
        # middle block: 4 rows, keys 3..9 -> 6 columns
        assert (ops[1].m, ops[1].n) == (4, 6)

    def test_av_chunk_shapes_transpose_qk(self):
        pattern = WindowAttentionPattern(12, window=3, block=4)
        qk = blockified_qk_ops(pattern, head_dim=8)
        av = blockified_av_ops(pattern, head_dim=8)
        for q_op, a_op in zip(qk, av):
            assert (a_op.m, a_op.k, a_op.n) == (q_op.m, q_op.n, q_op.k)


class TestSparseAttentionCorrectness:
    def test_matches_masked_dense(self):
        rng = np.random.default_rng(0)
        n, d = 24, 8
        q, k, v = (rng.normal(size=(n, d)) for _ in range(3))
        pattern = WindowAttentionPattern(n, window=5, block=6)
        out_sparse = sparse_attention(q, k, v, pattern)
        out_dense = dense_attention(q, k, v, mask=pattern.mask())
        assert np.allclose(out_sparse, out_dense, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=40),
        window=st.sampled_from([1, 3, 5, 9]),
        block=st.integers(min_value=1, max_value=8),
    )
    def test_matches_masked_dense_property(self, n, window, block):
        rng = np.random.default_rng(n * 31 + window)
        q, k, v = (rng.normal(size=(n, 4)) for _ in range(3))
        pattern = WindowAttentionPattern(n, window=window, block=block)
        assert np.allclose(
            sparse_attention(q, k, v, pattern),
            dense_attention(q, k, v, mask=pattern.mask()),
            atol=1e-10,
        )

    def test_full_window_equals_dense(self):
        """Window spanning everything degenerates to dense attention."""
        rng = np.random.default_rng(1)
        n, d = 10, 4
        q, k, v = (rng.normal(size=(n, d)) for _ in range(3))
        pattern = WindowAttentionPattern(n, window=2 * n + 1, block=4)
        assert np.allclose(
            sparse_attention(q, k, v, pattern), dense_attention(q, k, v), atol=1e-12
        )

    def test_runs_on_noisy_dptc(self):
        """The chunks execute on a photonic core: Fig. 16's point."""
        rng = np.random.default_rng(2)
        n, d = 24, 12
        q, k, v = (rng.normal(size=(n, d)) for _ in range(3))
        pattern = WindowAttentionPattern(n, window=5, block=6)
        dptc = DPTC(noise=NoiseModel.paper_default())
        out = sparse_attention(
            q, k, v, pattern, matmul=lambda a, b: dptc.matmul(a, b, rng=rng)
        )
        reference = dense_attention(q, k, v, mask=pattern.mask())
        rel = np.linalg.norm(out - reference) / np.linalg.norm(reference)
        assert rel < 0.25  # noisy analog execution stays in the ballpark

    def test_shape_validation(self):
        pattern = WindowAttentionPattern(4, 3, 2)
        with pytest.raises(ValueError):
            sparse_attention(np.zeros((4, 2)), np.zeros((5, 2)), np.zeros((4, 2)), pattern)
        with pytest.raises(ValueError):
            sparse_attention(np.zeros((6, 2)), np.zeros((6, 2)), np.zeros((6, 2)), pattern)


class TestCycleSavings:
    def test_sparse_cheaper_for_long_sequences(self):
        geometry = DPTCGeometry()
        pattern = WindowAttentionPattern(196, window=13, block=12)
        assert sparse_cycles(pattern, 64, geometry) < dense_cycles(196, 64, geometry)
        assert cycle_savings(pattern, 64, geometry) > 2.0

    def test_savings_grow_with_sequence_length(self):
        geometry = DPTCGeometry()
        short = cycle_savings(WindowAttentionPattern(96, 13, 12), 64, geometry)
        long = cycle_savings(WindowAttentionPattern(384, 13, 12), 64, geometry)
        assert long > short

    def test_tiny_window_maximises_savings(self):
        geometry = DPTCGeometry()
        narrow = cycle_savings(WindowAttentionPattern(196, 3, 12), 64, geometry)
        wide = cycle_savings(WindowAttentionPattern(196, 25, 12), 64, geometry)
        assert narrow > wide
