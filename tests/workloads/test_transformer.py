"""Tests for the transformer model zoo and GEMM trace extraction."""

import pytest

from repro.workloads import (
    MODULE_ATTENTION,
    MODULE_FFN,
    PAPER_WORKLOADS,
    TransformerConfig,
    bert_base,
    bert_large,
    deit_base,
    deit_small,
    deit_tiny,
    dynamic_ops,
    filter_module,
    gemm_trace,
    model_parameters,
    total_macs,
)


class TestModelZoo:
    def test_deit_tiny_shape(self):
        cfg = deit_tiny()
        assert (cfg.depth, cfg.dim, cfg.heads) == (12, 192, 3)
        assert cfg.seq_len == 197
        assert cfg.head_dim == 64
        assert cfg.ffn_dim == 768

    def test_deit_small_shape(self):
        cfg = deit_small()
        assert (cfg.depth, cfg.dim, cfg.heads) == (12, 384, 6)

    def test_deit_base_shape(self):
        cfg = deit_base()
        assert (cfg.depth, cfg.dim, cfg.heads) == (12, 768, 12)
        assert cfg.seq_len == 197

    def test_bert_base_shape(self):
        cfg = bert_base(128)
        assert (cfg.depth, cfg.dim, cfg.heads) == (12, 768, 12)
        assert cfg.seq_len == 128
        assert cfg.kind == "text"

    def test_bert_large_shape(self):
        cfg = bert_large(320)
        assert (cfg.depth, cfg.dim, cfg.heads) == (24, 1024, 16)
        assert cfg.seq_len == 320

    def test_paper_workloads_registry(self):
        assert set(PAPER_WORKLOADS) == {
            "DeiT-T-224",
            "DeiT-S-224",
            "DeiT-B-224",
            "BERT-base-128",
            "BERT-large-320",
        }
        for factory in PAPER_WORKLOADS.values():
            assert isinstance(factory(), TransformerConfig)

    def test_patch_geometry(self):
        cfg = deit_tiny()
        assert cfg.n_patches == 196
        assert cfg.patch_dim == 16 * 16 * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TransformerConfig("bad", depth=1, dim=10, heads=3, seq_len=4)
        with pytest.raises(ValueError):
            TransformerConfig("bad", depth=0, dim=12, heads=3, seq_len=4)
        with pytest.raises(ValueError):
            TransformerConfig("bad", depth=1, dim=12, heads=3, seq_len=4, kind="audio")


class TestGEMMTrace:
    def test_deit_tiny_op_names(self):
        names = {op.name for op in gemm_trace(deit_tiny())}
        assert names == {
            "patch_embed",
            "qkv_proj",
            "attn_qkt",
            "attn_av",
            "out_proj",
            "ffn1",
            "ffn2",
            "head",
        }

    def test_bert_has_no_patch_embed(self):
        names = {op.name for op in gemm_trace(bert_base())}
        assert "patch_embed" not in names
        assert "pooler" in names and "classifier" in names

    def test_attention_ops_are_dynamic(self):
        trace = gemm_trace(deit_tiny())
        dyn = dynamic_ops(trace)
        assert {op.name for op in dyn} == {"attn_qkt", "attn_av"}
        assert all(op.module == MODULE_ATTENTION for op in dyn)

    def test_attention_dimensions(self):
        cfg = deit_tiny()
        trace = {op.name: op for op in gemm_trace(cfg)}
        qkt = trace["attn_qkt"]
        assert (qkt.m, qkt.k, qkt.n) == (197, 64, 197)
        assert qkt.count == 12 * 3
        av = trace["attn_av"]
        assert (av.m, av.k, av.n) == (197, 197, 64)

    def test_ffn_dimensions(self):
        trace = {op.name: op for op in gemm_trace(deit_tiny())}
        assert (trace["ffn1"].m, trace["ffn1"].k, trace["ffn1"].n) == (197, 192, 768)
        assert (trace["ffn2"].m, trace["ffn2"].k, trace["ffn2"].n) == (197, 768, 192)

    def test_include_head_flag(self):
        with_head = gemm_trace(deit_tiny(), include_head=True)
        without = gemm_trace(deit_tiny(), include_head=False)
        assert len(with_head) == len(without) + 1

    def test_batch_size_scales_counts_and_macs(self):
        single = gemm_trace(deit_tiny())
        batched = gemm_trace(deit_tiny(), batch_size=8)
        assert len(batched) == len(single)
        for one, many in zip(single, batched):
            assert many.name == one.name
            assert many.count == 8 * one.count
            assert (many.m, many.k, many.n) == (one.m, one.k, one.n)
        assert total_macs(batched) == 8 * total_macs(single)

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            gemm_trace(deit_tiny(), batch_size=0)

    def test_num_cores_shards_instance_counts(self):
        """num_cores yields the critical-path per-core slice of the trace."""
        import math

        whole = gemm_trace(deit_tiny(), batch_size=8)
        per_core = gemm_trace(deit_tiny(), batch_size=8, num_cores=4)
        assert len(per_core) == len(whole)
        for one, shard in zip(whole, per_core):
            assert shard.name == one.name
            assert shard.count == math.ceil(one.count / 4)
            assert (shard.m, shard.k, shard.n) == (one.m, one.k, one.n)

    def test_num_cores_never_drops_an_op(self):
        """Ops with count < num_cores still appear once per core slice."""
        per_core = gemm_trace(deit_tiny(), num_cores=64)
        assert all(op.count >= 1 for op in per_core)
        assert {op.name for op in per_core} == {
            op.name for op in gemm_trace(deit_tiny())
        }

    def test_num_cores_one_is_identity(self):
        assert gemm_trace(deit_tiny(), num_cores=1) == gemm_trace(deit_tiny())

    def test_num_cores_validated(self):
        with pytest.raises(ValueError):
            gemm_trace(deit_tiny(), num_cores=0)

    def test_contraction_shard_splits_k(self):
        """shard_axis='contraction' yields the per-core K-slab critical
        path: k becomes the largest slab, k_splits records the split,
        counts stay whole (every core sees every instance)."""
        import math

        whole = gemm_trace(deit_tiny(), batch_size=4)
        per_core = gemm_trace(
            deit_tiny(), batch_size=4, num_cores=4, shard_axis="contraction"
        )
        assert len(per_core) == len(whole)
        for one, slab in zip(whole, per_core):
            assert slab.name == one.name
            assert slab.count == one.count
            assert (slab.m, slab.n) == (one.m, one.n)
            assert slab.k == math.ceil(one.k / 4)
            assert slab.k_splits == min(4, one.k)

    def test_contraction_shard_cores_beyond_k_idle(self):
        """num_cores > k: slab length 1, k_splits capped at k."""
        per_core = gemm_trace(deit_tiny(), num_cores=4096, shard_axis="contraction")
        for op in per_core:
            assert op.k == 1
            assert op.k_splits <= 4096
        whole = {op.name: op for op in gemm_trace(deit_tiny())}
        for op in per_core:
            assert op.k_splits == whole[op.name].k

    def test_batch_shard_leaves_k_whole(self):
        """The default batch axis never touches k or k_splits."""
        for op in gemm_trace(deit_tiny(), batch_size=8, num_cores=4):
            assert op.k_splits == 1
        for one, shard in zip(
            gemm_trace(deit_tiny()), gemm_trace(deit_tiny(), num_cores=4)
        ):
            assert shard.k == one.k

    def test_contraction_shard_single_core_is_identity(self):
        assert gemm_trace(
            deit_tiny(), num_cores=1, shard_axis="contraction"
        ) == gemm_trace(deit_tiny())

    def test_shard_axis_validated(self):
        with pytest.raises(ValueError):
            gemm_trace(deit_tiny(), num_cores=2, shard_axis="tile")

    def test_macs_scale_with_model_size(self):
        t = total_macs(gemm_trace(deit_tiny()))
        s = total_macs(gemm_trace(deit_small()))
        b = total_macs(gemm_trace(deit_base()))
        assert t < s < b
        # FFN+projections grow ~quadratically in dim: S/T well above 2x.
        assert s / t > 2.5

    def test_deit_tiny_total_macs_plausible(self):
        """DeiT-T is ~1.3 G multiply-adds per 224x224 inference."""
        macs = total_macs(gemm_trace(deit_tiny()))
        assert 1.0e9 < macs < 1.5e9

    def test_ffn_dominates_deit_macs(self):
        trace = gemm_trace(deit_tiny())
        ffn = total_macs(filter_module(trace, MODULE_FFN))
        assert ffn / total_macs(trace) > 0.4


class TestModelParameters:
    def test_deit_tiny_parameter_count(self):
        """DeiT-T has ~5.7 M params; GEMM weights alone are ~5.4 M."""
        params = model_parameters(deit_tiny())
        assert 4.5e6 < params < 6.5e6

    def test_bert_base_parameter_count(self):
        """BERT-base encoder GEMM weights are ~85 M."""
        params = model_parameters(bert_base())
        assert 80e6 < params < 95e6

    def test_dynamic_ops_carry_no_weights(self):
        trace = gemm_trace(deit_tiny())
        assert all(op.static_weight_elements == 0 for op in dynamic_ops(trace))
