"""Tests for the global+window (BigBird-style) sparse pattern."""

import numpy as np
import pytest

from repro.core import DPTCGeometry
from repro.workloads.global_sparse import (
    GlobalWindowPattern,
    blockified_ops,
    cycle_savings,
    sparse_attention_with_globals,
    sparse_cycles,
)
from repro.workloads.sparse import dense_cycles, WindowAttentionPattern


class TestPattern:
    def test_mask_includes_window_band(self):
        pattern = GlobalWindowPattern(12, window=3, block=4, global_tokens=0)
        window_only = WindowAttentionPattern(12, 3, 4)
        assert np.array_equal(pattern.mask(), window_only.mask())

    def test_global_rows_and_columns(self):
        pattern = GlobalWindowPattern(10, window=3, block=4, global_tokens=2)
        mask = pattern.mask()
        assert mask[0].all() and mask[1].all()  # global rows see all
        assert mask[:, 0].all() and mask[:, 1].all()  # all see globals
        assert not mask[5, 9]  # far off-band, non-global stays masked

    def test_density_grows_with_globals(self):
        no_globals = GlobalWindowPattern(64, 5, 8, global_tokens=0).density()
        with_globals = GlobalWindowPattern(64, 5, 8, global_tokens=4).density()
        assert with_globals > no_globals

    def test_validation(self):
        with pytest.raises(ValueError):
            GlobalWindowPattern(10, window=3, block=4, global_tokens=10)
        with pytest.raises(ValueError):
            GlobalWindowPattern(10, window=4, block=4)  # even window


class TestBlockifiedOps:
    def test_no_globals_reduces_to_window_chunks(self):
        pattern = GlobalWindowPattern(24, 5, 8, global_tokens=0)
        ops = blockified_ops(pattern, head_dim=16)
        assert all(op.name.startswith("window") for op in ops)

    def test_global_chunks_present(self):
        pattern = GlobalWindowPattern(24, 5, 8, global_tokens=2)
        names = {op.name for op in blockified_ops(pattern, 16)}
        assert "global_rows" in names and "global_cols" in names

    def test_global_chunk_shapes(self):
        pattern = GlobalWindowPattern(24, 5, 8, global_tokens=2)
        ops = {op.name: op for op in blockified_ops(pattern, 16)}
        rows = ops["global_rows"]
        assert (rows.m, rows.k, rows.n) == (2, 16, 24)
        cols = ops["global_cols"]
        assert (cols.m, cols.k, cols.n) == (22, 16, 2)

    def test_all_chunks_dynamic_attention(self):
        pattern = GlobalWindowPattern(24, 5, 8, global_tokens=1)
        assert all(op.dynamic for op in blockified_ops(pattern, 16))


class TestCycles:
    def test_sparse_still_beats_dense_with_globals(self):
        geometry = DPTCGeometry()
        pattern = GlobalWindowPattern(196, window=13, block=12, global_tokens=2)
        assert sparse_cycles(pattern, 64, geometry) < dense_cycles(
            196, 64, geometry
        )
        assert cycle_savings(pattern, 64, geometry) > 1.5

    def test_globals_cost_cycles(self):
        geometry = DPTCGeometry()
        without = GlobalWindowPattern(196, 13, 12, global_tokens=0)
        with_globals = GlobalWindowPattern(196, 13, 12, global_tokens=4)
        assert sparse_cycles(with_globals, 64, geometry) > sparse_cycles(
            without, 64, geometry
        )


class TestReferenceExecution:
    def test_masked_dense_semantics(self):
        rng = np.random.default_rng(0)
        n, d = 20, 8
        q, k, v = (rng.normal(size=(n, d)) for _ in range(3))
        pattern = GlobalWindowPattern(n, window=5, block=4, global_tokens=2)
        out = sparse_attention_with_globals(q, k, v, pattern)
        # Global rows attend everywhere: identical to dense attention rows.
        scores = (q @ k.T) / np.sqrt(d)
        weights = np.exp(scores - scores.max(axis=1, keepdims=True))
        weights /= weights.sum(axis=1, keepdims=True)
        dense = weights @ v
        assert np.allclose(out[:2], dense[:2], atol=1e-12)

    def test_shape_validation(self):
        pattern = GlobalWindowPattern(8, 3, 4)
        with pytest.raises(ValueError):
            sparse_attention_with_globals(
                np.zeros((9, 4)), np.zeros((9, 4)), np.zeros((9, 4)), pattern
            )
