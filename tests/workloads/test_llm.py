"""Tests for the Sec. VI-B LLM workload analysis."""

import pytest

from repro.arch import lt_base, lt_large
from repro.analysis import analyze_decode, batch_to_saturate
from repro.workloads import (
    DecoderConfig,
    decode_trace,
    dynamic_ops,
    gpt2_large,
    gpt2_medium,
    gpt2_small,
    kv_cache_bytes,
    kv_recompute_trace,
    prefill_trace,
    total_flops,
)


class TestDecoderConfigs:
    def test_gpt2_family(self):
        assert (gpt2_small().depth, gpt2_small().dim) == (12, 768)
        assert (gpt2_medium().depth, gpt2_medium().dim) == (24, 1024)
        assert (gpt2_large().depth, gpt2_large().dim) == (36, 1280)

    def test_head_dim(self):
        assert gpt2_small().head_dim == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            DecoderConfig("bad", depth=0, dim=768, heads=12)
        with pytest.raises(ValueError):
            DecoderConfig("bad", depth=12, dim=770, heads=12)


class TestTraces:
    def test_prefill_is_large_gemms(self):
        trace = prefill_trace(gpt2_small(), prompt_len=512)
        assert all(op.m >= 512 or op.dynamic for op in trace)
        assert any(op.dynamic for op in trace)

    def test_decode_is_gemv_shaped(self):
        trace = decode_trace(gpt2_small(), context_len=512)
        # Attention rows are single-query; projections are batch-1.
        for op in dynamic_ops(trace):
            assert op.m == 1
        projections = [op for op in trace if not op.dynamic]
        assert all(op.m == 1 for op in projections)

    def test_decode_flops_scale_with_context_only_in_attention(self):
        short = decode_trace(gpt2_small(), context_len=128)
        long = decode_trace(gpt2_small(), context_len=1024)
        short_attn = total_flops(dynamic_ops(short))
        long_attn = total_flops(dynamic_ops(long))
        assert long_attn == pytest.approx(8 * short_attn)

    def test_batching_scales_projections(self):
        single = decode_trace(gpt2_small(), 128, batch=1)
        batched = decode_trace(gpt2_small(), 128, batch=8)
        proj_single = [op for op in single if op.name == "qkv_proj"][0]
        proj_batched = [op for op in batched if op.name == "qkv_proj"][0]
        assert proj_batched.m == 8 * proj_single.m

    def test_validation(self):
        with pytest.raises(ValueError):
            prefill_trace(gpt2_small(), prompt_len=0)
        with pytest.raises(ValueError):
            decode_trace(gpt2_small(), context_len=0)
        with pytest.raises(ValueError):
            decode_trace(gpt2_small(), context_len=8, batch=0)


class TestKVCache:
    def test_linear_in_context(self):
        cfg = gpt2_small()
        assert kv_cache_bytes(cfg, 200, 8) == pytest.approx(
            2 * kv_cache_bytes(cfg, 100, 8)
        )

    def test_gpt2_small_size_at_2k(self):
        """2 * 12 layers * 768 dim * 2048 tokens at 8-bit ~ 37.7 MB."""
        assert kv_cache_bytes(gpt2_small(), 2048, 8) == pytest.approx(
            37.75e6, rel=0.01
        )

    def test_bits_scale(self):
        cfg = gpt2_small()
        assert kv_cache_bytes(cfg, 128, 4) == pytest.approx(
            kv_cache_bytes(cfg, 128, 8) / 2
        )

    def test_recompute_trades_memory_for_compute(self):
        """Recomputing K/V adds GEMM work proportional to the context."""
        ops = kv_recompute_trace(gpt2_small(), context_len=512)
        assert total_flops(ops) > 0
        assert all(not op.dynamic for op in ops)
        double = kv_recompute_trace(gpt2_small(), context_len=1024)
        assert total_flops(double) == pytest.approx(2 * total_flops(ops))


class TestRooflineAnalysis:
    """The paper's Sec. VI-B claims, made quantitative."""

    def test_decode_is_memory_bound(self):
        """'This characteristic makes LLMs memory-bounded.'"""
        analysis = analyze_decode(lt_base(8), gpt2_small(), context_len=512)
        assert analysis.memory_bound
        assert analysis.compute_utilization < 0.5

    def test_prefill_like_intensity_is_higher(self):
        """Prefill GEMMs have far higher arithmetic intensity."""
        decode = analyze_decode(lt_base(8), gpt2_small(), 512)
        assert decode.arithmetic_intensity < 10

    def test_batching_raises_utilization(self):
        cfg = gpt2_small()
        low = analyze_decode(lt_base(8), cfg, 128, batch=1)
        high = analyze_decode(lt_base(8), cfg, 128, batch=32)
        assert high.compute_utilization > low.compute_utilization

    def test_latency_is_roofline_max(self):
        analysis = analyze_decode(lt_base(8), gpt2_small(), 256)
        assert analysis.latency == max(
            analysis.compute_time, analysis.memory_time
        )

    def test_bigger_model_more_memory_traffic(self):
        small = analyze_decode(lt_base(8), gpt2_small(), 256)
        large = analyze_decode(lt_base(8), gpt2_large(), 256)
        assert large.hbm_bytes > 2 * small.hbm_bytes

    def test_batch_to_saturate_reports_underutilization(self):
        """Decode attention stays KV-bound: even large batches do not
        saturate the photonic compute (the paper's motivation for
        memory-system scaling)."""
        batch = batch_to_saturate(lt_base(8), gpt2_small(), 512, max_batch=64)
        assert batch > 4

    def test_faster_accelerator_more_memory_bound(self):
        """Doubling compute (LT-L) cannot help a memory-bound phase."""
        base = analyze_decode(lt_base(8), gpt2_small(), 512)
        large = analyze_decode(lt_large(8), gpt2_small(), 512)
        assert large.memory_time == pytest.approx(base.memory_time)
        assert large.compute_time <= base.compute_time
