"""Smoke tests: every example script runs to completion.

The slow training example (noise_aware_transformer) is exercised with a
reduced workload via import rather than a full run.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "accelerator_comparison.py",
    "sparse_attention_on_dptc.py",
    "design_space_exploration.py",
    "llm_decode_analysis.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_reports_paper_numbers():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "60.3" in result.stdout  # paper area quoted
    assert "FPS" in result.stdout


def test_all_examples_are_covered():
    """Every example on disk is either smoke-tested or known-slow."""
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    known_slow = {"noise_aware_transformer.py"}
    assert on_disk == set(FAST_EXAMPLES) | known_slow


@pytest.mark.slow
def test_noise_aware_example_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "noise_aware_transformer.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "digital (noise-free quantized) test accuracy" in result.stdout
