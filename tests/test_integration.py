"""End-to-end integration tests across subsystem boundaries."""

import numpy as np
import pytest

from repro.arch import (
    LighteningTransformer,
    lt_base,
    mvm_engine,
    os_dataflow_matmul,
    workload_cycles,
)
from repro.baselines import MRRAccelerator, MZIAccelerator, PCMAccelerator
from repro.core import DPTC, DPTCGeometry, NoiseModel
from repro.neural import (
    PhotonicExecutor,
    QuantConfig,
    TinyViT,
    evaluate,
    load_checkpoint,
    save_checkpoint,
    striped_image_dataset,
    train_classifier,
)
from repro.optics import DDotCircuit, WDMGrid
from repro.workloads import (
    WindowAttentionPattern,
    decode_trace,
    deit_tiny,
    dense_attention,
    gemm_trace,
    gpt2_small,
    sparse_attention,
)


class TestTrainCheckpointDeploy:
    """Train -> persist -> reload -> evaluate under analog noise."""

    def test_full_lifecycle(self, tmp_path):
        data = striped_image_dataset(n_samples=80, n_classes=2, seed=0)
        train, test = data.split(0.75)
        model = TinyViT(n_classes=2, depth=1, seed=0)
        train_classifier(model, train, epochs=3, lr=5e-3, seed=0)
        clean_accuracy = evaluate(model, test)

        path = save_checkpoint(model, tmp_path / "vit.npz")
        deployed = TinyViT(n_classes=2, depth=1, seed=42)
        load_checkpoint(deployed, path)
        deployed.set_executor(
            PhotonicExecutor.paper_default(QuantConfig.int4(), seed=1)
        )
        noisy_accuracy = evaluate(deployed, test)
        # The deployed noisy model stays within a few test samples of
        # the clean checkpoint (the paper's robustness claim end-to-end).
        assert abs(noisy_accuracy - clean_accuracy) <= 0.2
        assert noisy_accuracy > 0.5


class TestSparseAttentionThroughDataflow:
    """Blockified window attention chunks through the OS schedule on a
    noisy core, against the masked dense reference."""

    def test_chunks_via_dataflow(self):
        config = lt_base(4)
        dptc = DPTC(config.geometry, NoiseModel.paper_default())
        rng = np.random.default_rng(0)
        n, d = 36, 12
        q, k, v = (rng.normal(size=(n, d)) for _ in range(3))
        pattern = WindowAttentionPattern(n, window=5, block=12)

        def executor(a, b):
            return os_dataflow_matmul(
                config, a, b, lambda x, y: dptc.tile_matmul(x, y, rng=rng)
            )

        out = sparse_attention(q, k, v, pattern, matmul=executor)
        reference = dense_attention(q, k, v, mask=pattern.mask())
        rel = np.linalg.norm(out - reference) / np.linalg.norm(reference)
        assert rel < 0.35


class TestFullComparisonInvariants:
    """System-level invariants that must hold across every accelerator."""

    @pytest.fixture(scope="class")
    def runs(self):
        trace = gemm_trace(deit_tiny())
        return {
            "lt": LighteningTransformer(lt_base(4)).run(trace),
            "mrr": MRRAccelerator(bits=4).run(trace),
            "mzi": MZIAccelerator(bits=4).run(trace),
            "pcm": PCMAccelerator(bits=4).run(trace),
        }

    def test_lt_wins_energy_and_latency(self, runs):
        for name, run in runs.items():
            if name == "lt":
                continue
            assert run.energy_joules > runs["lt"].energy_joules, name
            assert run.latency > runs["lt"].latency, name

    def test_edp_consistency(self, runs):
        for run in runs.values():
            assert run.edp == pytest.approx(run.energy_joules * run.latency)

    def test_energy_breakdowns_complete(self, runs):
        for run in runs.values():
            assert run.energy.total > 0
            assert all(v >= 0 for v in run.energy.by_category.values())

    def test_weight_static_designs_lose_most_on_attention(self):
        from repro.workloads import MODULE_ATTENTION, filter_module

        trace = gemm_trace(deit_tiny())
        attention = filter_module(trace, MODULE_ATTENTION)
        lt = LighteningTransformer(lt_base(4)).run(attention)
        pcm = PCMAccelerator(bits=4).run(attention)
        mzi_full_trace = MZIAccelerator(bits=4).run(trace)
        lt_full_trace = LighteningTransformer(lt_base(4)).run(trace)
        attention_gap = pcm.latency / lt.latency
        overall_gap = mzi_full_trace.latency / lt_full_trace.latency
        assert attention_gap > 10  # reprogramming-dominated
        assert overall_gap > 10


class TestOpticsNeuralConsistency:
    """The circuit simulator and the neural executor agree channel-wise."""

    def test_single_dot_through_both_stacks(self):
        grid = WDMGrid(12)
        circuit = DDotCircuit(grid, include_dispersion=True)
        executor = PhotonicExecutor(
            geometry=DPTCGeometry(12, 12, 12),
            noise=NoiseModel(
                encoding=NoiseModel.ideal().encoding,
                systematic=NoiseModel.ideal().systematic,
                include_dispersion=True,
            ),
            quant=None,
        )
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, 12)
        y = rng.uniform(-1, 1, 12)
        from repro.neural import Tensor

        neural_out = executor.matmul(
            Tensor(x.reshape(1, 12)), Tensor(y.reshape(12, 1))
        ).data[0, 0]
        # The executor's beta normalisation rescales the operands; map
        # the circuit run through the same scaling.
        beta_x, beta_y = np.max(np.abs(x)), np.max(np.abs(y))
        circuit_out = circuit.dot_product(x / beta_x, y / beta_y) * beta_x * beta_y
        assert neural_out == pytest.approx(circuit_out, rel=1e-9)


class TestHeterogeneousDecodeEngine:
    """The Sec. VI-A MVM engine serves Sec. VI-B decode traces better."""

    def test_mvm_engine_cuts_decode_cycles(self):
        from dataclasses import replace

        trace = decode_trace(gpt2_small(), context_len=512)
        default = lt_base(8)
        flat = replace(default, geometry=mvm_engine(1728, 48), name="LT-mvm")
        # Attention rows are single-query: the flat engine wastes none
        # of its 12-row dimension on them.
        from repro.workloads import dynamic_ops

        attention = dynamic_ops(trace)
        assert workload_cycles(flat, attention) < workload_cycles(
            default, attention
        )
