"""Tests for the flight recorder: ring semantics, bundles, triggers."""

import json

import numpy as np
import pytest

from repro.cluster import FAILED, ClusterConfig, ServingCluster
from repro.obs import FlightRecorder, MetricsRegistry, Tracer
from repro.serving import (
    DecodeServable,
    EngineConfig,
    IterationCost,
    ServingEngine,
    ServingError,
    SimulatedClock,
    decode_payload,
)
from repro.workloads import DecoderConfig, kv_cache_bytes


def toy_decoder() -> DecoderConfig:
    return DecoderConfig("toy", depth=2, dim=16, heads=2, mlp_ratio=2.0)


class EchoServable:
    """Doubles payloads; optionally fails, for the serving-error path."""

    name = "echo"

    def __init__(self, fail=False):
        self.fail = fail

    def prepare(self, payload):
        return payload

    def execute(self, requests):
        if self.fail:
            raise RuntimeError("photonic core fell over")
        return [2 * request.payload for request in requests]


class TestRing:
    def test_capacity_bounds_both_rings(self):
        clock = SimulatedClock()
        recorder = FlightRecorder(capacity=3, clock=clock)
        tracer = Tracer(clock=clock, collector=recorder)
        for index in range(5):
            with tracer.span(f"op-{index}"):
                clock.advance(1e-3)
            recorder.note(f"note-{index}")
        assert [s["name"] for s in recorder.recent_spans()] == [
            "op-2",
            "op-3",
            "op-4",
        ]
        assert [e["name"] for e in recorder.recent_events()] == [
            "note-2",
            "note-3",
            "note-4",
        ]

    def test_capacity_below_one_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_spans_recorded_only_when_finished(self):
        clock = SimulatedClock()
        recorder = FlightRecorder(clock=clock)
        tracer = Tracer(clock=clock, collector=recorder)
        span = tracer.start_span("open")
        assert recorder.recent_spans() == []
        tracer.end(span)
        assert [s["name"] for s in recorder.recent_spans()] == ["open"]

    def test_clear_keeps_frozen_bundles(self):
        clock = SimulatedClock()
        recorder = FlightRecorder(clock=clock)
        recorder.note("before")
        bundle = recorder.trigger("incident")
        recorder.clear()
        assert recorder.recent_events() == []
        assert recorder.bundles == [bundle]
        assert [e["name"] for e in bundle["events"]] == ["before"]


class TestTrigger:
    def test_bundle_contents_and_sequence(self):
        clock = SimulatedClock()
        recorder = FlightRecorder(clock=clock)
        registry = MetricsRegistry()
        registry.counter("incidents_total").inc()
        clock.advance(2.5)
        recorder.note("lead-up", detail=7)
        first = recorder.trigger(
            "replica_failed",
            registry=registry,
            snapshot={"fleet": 3},
            replica_id=1,
        )
        second = recorder.trigger("replica_failed")
        assert first["reason"] == "replica_failed"
        assert first["time"] == 2.5
        assert first["sequence"] == 0 and second["sequence"] == 1
        assert first["context"] == {"replica_id": 1}
        assert first["events"][0]["attrs"] == {"detail": 7}
        assert first["snapshot"] == {"fleet": 3}
        assert first["registry"] is not None
        assert second["registry"] is None

    def test_dump_dir_writes_sequenced_json(self, tmp_path):
        recorder = FlightRecorder(clock=SimulatedClock(), dump_dir=tmp_path)
        recorder.note("context")
        recorder.trigger("doomed_session", session_id="s9")
        recorder.trigger("serving_error")
        names = [path.name for path in recorder.dumped]
        assert names == ["postmortem-000.json", "postmortem-001.json"]
        loaded = json.loads(recorder.dumped[0].read_text())
        assert loaded["reason"] == "doomed_session"
        assert loaded["context"] == {"session_id": "s9"}

    def test_attach_tees_behind_an_existing_collector(self):
        clock = SimulatedClock()
        recorder = FlightRecorder(clock=clock)
        tracer = Tracer(clock=clock)
        recorder.attach(tracer)
        with tracer.span("shared"):
            clock.advance(1e-3)
        # Both the original collector and the recorder saw the span.
        assert [s.name for s in tracer.collector.spans()] == ["shared"]
        assert [s["name"] for s in recorder.recent_spans()] == ["shared"]


class TestServingTriggers:
    def test_doomed_session_freezes_a_bundle(self):
        config = toy_decoder()
        clock = SimulatedClock()
        recorder = FlightRecorder(clock=clock)
        servable = DecodeServable(
            config,
            seed=1,
            block_size=2,
            kv_capacity_bytes=kv_cache_bytes(config, 2) * 1,
        )
        engine = ServingEngine(
            servable,
            config=EngineConfig(
                max_batch_size=2,
                scheduler="continuous",
                iteration_cost=IterationCost(),
            ),
            clock=clock,
            recorder=recorder,
        )
        with engine:
            # An over-budget swapped-out session can never be re-admitted
            # on a one-block pool: composing an iteration dooms it.
            servable.cache.open_session("huge", prompt_len=3)
            servable.cache.swap_out("huge")
            handle = engine.submit(
                decode_payload(3, 0, 0, config.dim), session_id="huge"
            )
            engine.run_until_idle()
            with pytest.raises(ServingError):
                handle.result(timeout=0)
        assert [b["reason"] for b in recorder.bundles] == ["doomed_session"]
        bundle = recorder.bundles[0]
        assert bundle["context"]["session_id"] == "huge"
        assert bundle["registry"] is not None
        assert [e["name"] for e in bundle["events"]] == ["doomed_session"]

    def test_serving_error_freezes_a_bundle(self):
        clock = SimulatedClock()
        recorder = FlightRecorder(clock=clock)
        engine = ServingEngine(
            EchoServable(fail=True),
            clock=clock,
            recorder=recorder,
        )
        with engine:
            handle = engine.submit(21)
            engine.step()
            with pytest.raises(RuntimeError):
                handle.result(timeout=0)
        assert [b["reason"] for b in recorder.bundles] == ["serving_error"]
        assert recorder.bundles[0]["context"]["error"] == "RuntimeError"

    def test_unrecorded_engine_stays_silent(self):
        engine = ServingEngine(EchoServable(fail=True), clock=SimulatedClock())
        with engine:
            handle = engine.submit(21)
            engine.step()
            with pytest.raises(RuntimeError):
                handle.result(timeout=0)  # no recorder, no crash


class TestClusterTrigger:
    def test_fail_replica_freezes_fleet_postmortem(self, tmp_path):
        clock = SimulatedClock()
        recorder = FlightRecorder(clock=clock, dump_dir=tmp_path)
        tracer = Tracer(clock=clock)
        recorder.attach(tracer)
        cluster = ServingCluster(
            lambda rid: EchoServable(),
            config=ClusterConfig(
                replicas=2,
                policy="round_robin",
                engine=EngineConfig(max_wait_us=0.0),
                close_executors=False,
            ),
            clock=clock,
            tracer=tracer,
            recorder=recorder,
        )
        with cluster:
            handles = [cluster.submit(x) for x in range(4)]
            cluster.fail_replica(0)
            cluster.run_until_idle()
            results = [handle.result(timeout=0) for handle in handles]
        assert results == [0, 2, 4, 6]  # survivor served everything
        assert cluster.replicas[0].state == FAILED
        reasons = [b["reason"] for b in recorder.bundles]
        assert reasons == ["replica_failed"]
        bundle = recorder.bundles[0]
        assert bundle["context"]["replica_id"] == 0
        assert bundle["snapshot"] is not None  # fleet snapshot embedded
        assert bundle["registry"] is not None
        assert bundle["spans"], "traced lead-up spans ride in the bundle"
        assert recorder.dumped and recorder.dumped[0].exists()
