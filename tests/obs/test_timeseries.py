"""Tests for windowed time series and multi-window SLO burn alerts."""

import pytest

from repro.obs import (
    BurnWindow,
    MetricsRegistry,
    SLObjective,
    SLOMonitor,
    TimeSeriesRecorder,
    error_rate_objective,
    latency_objective,
)

BUCKETS = (1e-3, 1e-2, 1e-1)


def recorded_registry(interval_s=1.0, **kwargs):
    registry = MetricsRegistry()
    recorder = TimeSeriesRecorder(
        registry, interval_s=interval_s, **kwargs
    )
    return registry, recorder


class TestTimeSeriesRecorder:
    def test_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            TimeSeriesRecorder(registry, interval_s=0.0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(registry, max_samples=1)

    def test_maybe_sample_respects_cadence(self):
        _, recorder = recorded_registry(interval_s=1.0)
        assert recorder.maybe_sample(0.0)
        assert not recorder.maybe_sample(0.5)
        assert recorder.maybe_sample(1.0)
        assert len(recorder) == 2
        assert recorder.latest_time == 1.0

    def test_counter_delta_is_windowed(self):
        registry, recorder = recorded_registry()
        counter = registry.counter("requests_total")
        recorder.sample(0.0)
        counter.inc(3)
        recorder.sample(1.0)
        counter.inc(7)
        recorder.sample(2.0)
        assert recorder.counter_delta("requests_total", 1.0) == 7.0
        assert recorder.counter_delta("requests_total", 2.0) == 10.0

    def test_pre_history_reads_are_zero(self):
        registry, recorder = recorded_registry()
        registry.counter("requests_total").inc()
        recorder.sample(0.0)  # a single sample has nothing to diff
        assert recorder.counter_delta("requests_total", 1.0) == 0.0
        assert recorder.rate("requests_total", 1.0) == 0.0

    def test_rate_uses_actual_elapsed_time(self):
        registry, recorder = recorded_registry()
        counter = registry.counter("requests_total")
        recorder.sample(0.0)
        counter.inc(10)
        recorder.sample(2.0)
        # Requested a 10 s window, only 2 s of history: true rate.
        assert recorder.rate("requests_total", 10.0) == pytest.approx(5.0)

    def test_ring_bound_drops_oldest_samples(self):
        registry, recorder = recorded_registry(max_samples=3)
        counter = registry.counter("requests_total")
        for t in range(5):
            counter.inc()
            recorder.sample(float(t))
        assert len(recorder) == 3
        # Oldest retained sample is t=2 (value 3); latest is 5.
        assert recorder.counter_delta("requests_total", 100.0) == 2.0

    def test_histogram_delta(self):
        registry, recorder = recorded_registry()
        hist = registry.histogram("latency", buckets=BUCKETS)
        hist.observe(5e-4)
        recorder.sample(0.0)
        hist.observe(5e-3)
        hist.observe(5e-2)
        recorder.sample(1.0)
        delta = recorder.histogram_delta("latency", 1.0)
        assert delta["count"] == 2.0
        assert delta["sum"] == pytest.approx(5.5e-2)
        assert delta["buckets"] == {1e-3: 0.0, 1e-2: 1.0, 1e-1: 2.0}

    def test_fraction_above_resolves_at_bucket_granularity(self):
        registry, recorder = recorded_registry()
        hist = registry.histogram("latency", buckets=BUCKETS)
        recorder.sample(0.0)
        for value in (5e-4, 5e-4, 5e-3, 5e-2):
            hist.observe(value)
        recorder.sample(1.0)
        assert recorder.fraction_above("latency", 1e-3, 1.0) == 0.5
        # A threshold between bounds rounds the split up (conservative):
        # 5e-3 sits in the 1e-2 bucket, so it counts as good at 5e-3.
        assert recorder.fraction_above("latency", 5e-3, 1.0) == 0.25
        # Above every bound, only the +Inf residue is bad.
        assert recorder.fraction_above("latency", 1.0, 1.0) == 0.0
        assert recorder.fraction_above("missing", 1e-3, 1.0) == 0.0

    def test_percentile_upper_bound_flavour(self):
        registry, recorder = recorded_registry()
        hist = registry.histogram("latency", buckets=BUCKETS)
        recorder.sample(0.0)
        for value in (5e-4, 5e-4, 5e-4, 5e-3):
            hist.observe(value)
        recorder.sample(1.0)
        assert recorder.percentile("latency", 0.5, 1.0) == 1e-3
        assert recorder.percentile("latency", 0.99, 1.0) == 1e-2
        assert recorder.percentile("missing", 0.5, 1.0) is None
        with pytest.raises(ValueError):
            recorder.percentile("latency", 0.0, 1.0)

    def test_percentile_overflow_is_inf(self):
        registry, recorder = recorded_registry()
        hist = registry.histogram("latency", buckets=BUCKETS)
        recorder.sample(0.0)
        hist.observe(5.0)  # beyond the largest bound
        recorder.sample(1.0)
        assert recorder.percentile("latency", 0.5, 1.0) == float("inf")


class TestObjectives:
    def test_latency_objective(self):
        objective = latency_objective(
            "p95", "latency", 1e-2, target=0.9, labels={"tier": "a"}
        )
        assert objective.kind == "latency"
        assert objective.budget == pytest.approx(0.1)
        assert dict(objective.labels) == {"tier": "a"}

    def test_error_rate_objective(self):
        objective = error_rate_objective(
            "avail", "failures_total", ("ok_total", "failures_total")
        )
        assert objective.kind == "error_rate"
        assert objective.budget == pytest.approx(0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="weird", target=0.9)
        with pytest.raises(ValueError):
            latency_objective("x", "m", 1e-2, target=1.0)
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="latency", target=0.9)  # no metric
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="error_rate", target=0.9)


class TestBurnWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurnWindow("w", long_s=1.0, short_s=2.0, max_burn=1.0)
        with pytest.raises(ValueError):
            BurnWindow("w", long_s=2.0, short_s=1.0, max_burn=0.0)


def latency_monitor():
    """A p90 monitor over one tight (4 s, 2 s) burn-window pair."""
    registry, recorder = recorded_registry(interval_s=1.0)
    hist = registry.histogram("latency", buckets=BUCKETS)
    monitor = SLOMonitor(
        [latency_objective("p90", "latency", 1e-2, target=0.9)],
        recorder,
        windows=(BurnWindow("w", long_s=4.0, short_s=2.0, max_burn=1.0),),
    )
    return hist, monitor


class TestSLOMonitor:
    def test_construction_validation(self):
        _, recorder = recorded_registry()
        objective = latency_objective("p90", "latency", 1e-2)
        with pytest.raises(ValueError):
            SLOMonitor([], recorder)
        with pytest.raises(ValueError):
            SLOMonitor([objective], recorder, windows=())
        with pytest.raises(ValueError):
            SLOMonitor([objective, objective], recorder)

    def test_firing_and_resolving_transitions(self):
        hist, monitor = latency_monitor()
        assert monitor.tick(0.0) == []  # healthy: no transition
        assert monitor.firing() == []
        for _ in range(5):
            hist.observe(5e-2)  # all bad
        fired = monitor.tick(1.0)
        assert [a.state for a in fired] == ["firing"]
        assert monitor.firing() == ["p90"]
        # Recovery: the short window drains first, and the alert needs
        # BOTH windows hot — so it resolves once the short burn drops.
        for _ in range(20):
            hist.observe(5e-4)
        assert monitor.tick(2.0) == []  # short baseline still sees the bad
        for _ in range(20):
            hist.observe(5e-4)
        resolved = monitor.tick(3.0)
        assert [a.state for a in resolved] == ["resolved"]
        assert monitor.firing() == []
        assert [a.state for a in monitor.ledger] == ["firing", "resolved"]

    def test_ledger_dicts_are_json_able(self):
        hist, monitor = latency_monitor()
        monitor.tick(0.0)
        hist.observe(5e-2)
        monitor.tick(1.0)
        (entry,) = monitor.ledger_dicts()
        assert entry["objective"] == "p90"
        assert entry["window"] == "w"
        assert entry["state"] == "firing"
        assert entry["time"] == 1.0
        assert entry["burn_long"] > 1.0 and entry["burn_short"] > 1.0

    def test_eval_cadence(self):
        hist, monitor = latency_monitor()
        monitor.tick(0.0)
        hist.observe(5e-2)
        assert monitor.tick(0.25) == []  # inside the eval interval
        assert monitor.firing() == []  # not even evaluated
        assert [a.state for a in monitor.tick(1.0)] == ["firing"]

    def test_error_rate_objective_burns(self):
        registry, recorder = recorded_registry(interval_s=1.0)
        ok = registry.counter("ok_total")
        failures = registry.counter("failures_total")
        monitor = SLOMonitor(
            [
                error_rate_objective(
                    "avail", "failures_total", ("ok_total", "failures_total")
                )
            ],
            recorder,
        )
        monitor.tick(0.0)
        ok.inc(9)
        failures.inc(1)  # 10% failures against a 0.1% budget
        fired = monitor.tick(1.0)
        # Both default SRE window pairs clip to the same short history,
        # so both fire on the same evaluation.
        assert [a.state for a in fired] == ["firing", "firing"]
        assert {a.window for a in fired} == {"fast", "slow"}
        assert monitor.firing() == ["avail"]

    def test_status_rows(self):
        hist, monitor = latency_monitor()
        monitor.tick(0.0)
        hist.observe(5e-2)
        monitor.tick(1.0)
        (row,) = monitor.status()
        assert row["objective"] == "p90"
        assert row["firing"] is True
        window = row["windows"]["w"]
        assert window["firing"] is True
        assert window["burn_long"] == pytest.approx(window["burn_short"])
        assert window["max_burn"] == 1.0
