"""Tests for the unified telemetry registry."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_is_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_is_last_write(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_histogram_buckets_and_inf(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 99.0):
            histogram.observe(value)
        assert histogram.cumulative() == [(1.0, 2), (2.0, 3)]
        assert histogram.inf == 1
        assert histogram.total == 4
        assert histogram.sum == pytest.approx(102.0)

    def test_histogram_bounds_are_inclusive_upper_edges(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        histogram.observe(1.0)  # exactly at a bound: inside it
        histogram.observe(2.0)
        assert histogram.cumulative() == [(1.0, 1), (2.0, 2)]
        assert histogram.inf == 0
        # The first value strictly above the last bound is the +Inf edge.
        histogram.observe(2.0 + 1e-12)
        assert histogram.inf == 1

    def test_histogram_merge_requires_equal_bounds(self):
        a = Histogram(buckets=(1.0,))
        b = Histogram(buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_failed_merge_leaves_counts_untouched(self):
        a = Histogram(buckets=(1.0,))
        a.observe(0.5)
        b = Histogram(buckets=(1.0, 2.0))
        b.observe(1.5)
        with pytest.raises(ValueError):
            a.merge(b)
        assert a.total == 1 and a.sum == 0.5
        assert a.cumulative() == [(1.0, 1)]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", "Hits")
        second = registry.counter("hits_total")
        assert first is second
        labelled = registry.counter("hits_total", route="a")
        assert labelled is not first

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_counter_series_reads_one_label(self):
        registry = MetricsRegistry()
        registry.counter("batches_total", size=2).inc(3)
        registry.counter("batches_total", size=4).inc()
        assert registry.counter_series("batches_total", "size") == {
            "2": 3, "4": 1,
        }

    def test_snapshot_is_json_shaped_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.gauge("a_depth").set(7)
        registry.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a_depth", "b_total", "lat_seconds"]
        assert snapshot["lat_seconds"][0]["value"]["count"] == 1
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_names_and_series(self):
        registry = MetricsRegistry()
        registry.counter("b_total", route="x").inc()
        registry.gauge("a_depth").set(1)
        assert registry.names() == ["a_depth", "b_total"]
        series = registry.series("b_total")
        assert [labels for labels, _ in series] == [{"route": "x"}]
        assert registry.series("missing") == []

    def test_merge_sums_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total").inc(1)
        b.counter("n_total").inc(2)
        b.counter("only_in_b_total", size=4).inc()
        a.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        b.histogram("h_seconds", buckets=(1.0,)).observe(2.0)
        a.gauge("depth").set(1)
        b.gauge("depth").set(9)
        a.merge_from(b)
        assert a.counter("n_total").value == 3
        assert a.counter("only_in_b_total", size=4).value == 1
        merged_h = a.histogram("h_seconds", buckets=(1.0,))
        assert merged_h.total == 2
        assert merged_h.inf == 1
        assert a.gauge("depth").value == 9


class TestPrometheus:
    def test_counter_and_gauge_exposition(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests", route="a").inc(3)
        registry.gauge("queue_depth", "Depth").set(2)
        text = registry.to_prometheus()
        assert "# HELP req_total Requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{route="a"} 3' in text
        assert "queue_depth 2" in text
        assert text.endswith("\n")

    def test_histogram_exposition_has_le_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.to_prometheus()
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="2"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 5.5" in text
        assert "lat_seconds_count 2" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", tenant='say "hi"\n').inc()
        text = registry.to_prometheus()
        assert 'tenant="say \\"hi\\"\\n"' in text

    def test_backslashes_escape_before_quotes(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", path='C:\\tmp\\"x"').inc()
        text = registry.to_prometheus()
        assert 'path="C:\\\\tmp\\\\\\"x\\""' in text

    def test_observation_at_largest_bound_stays_out_of_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(1.0, 2.0))
        histogram.observe(2.0)
        text = registry.to_prometheus()
        assert 'lat_seconds_bucket{le="2"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text  # cumulative only

    def test_empty_registry_exposes_nothing(self):
        assert MetricsRegistry().to_prometheus() == ""
