"""Tests for trace export (JSONL + Chrome trace-event) and the demo."""

import json

import pytest

from repro.obs import (
    Tracer,
    to_chrome_trace,
    to_jsonl,
    write_jsonl,
    write_trace,
)
from repro.obs.demo import run_trace_workload, run_workload
from repro.obs.export import _atomic_write_text
from repro.serving.clock import SimulatedClock


def sample_collector():
    clock = SimulatedClock()
    tracer = Tracer(clock=clock)
    with tracer.span("root", kind="demo") as root:
        root.add_event("started", step=1)
        clock.advance(1e-3)
        with tracer.span("child"):
            clock.advance(2e-3)
    return tracer.collector


class TestJsonl:
    def test_one_sorted_line_per_span(self):
        lines = to_jsonl(sample_collector()).splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "root"
        assert first["events"][0]["name"] == "started"
        # Canonical form: sorted keys, compact separators.
        assert lines[0] == json.dumps(
            first, sort_keys=True, separators=(",", ":")
        )

    def test_empty_collector_dumps_empty_string(self):
        assert to_jsonl(Tracer().collector) == ""

    def test_write_jsonl_round_trips(self, tmp_path):
        path = write_jsonl(sample_collector(), tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == [
            "root", "child",
        ]


class TestChromeTrace:
    def test_complete_events_in_microseconds(self):
        payload = to_chrome_trace(sample_collector())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        by_name = {event["name"]: event for event in complete}
        assert by_name["root"]["dur"] == 3e3  # 3 ms in us
        assert by_name["child"]["ts"] == 1e3
        assert by_name["child"]["args"]["parent_id"] == 0

    def test_span_events_become_instants_on_root_track(self):
        payload = to_chrome_trace(sample_collector())
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert [event["name"] for event in instants] == ["root.started"]
        assert instants[0]["args"] == {"step": 1}
        # Both spans share the root's track.
        tids = {event["tid"] for event in payload["traceEvents"]}
        assert tids == {0}

    def test_write_trace_dispatches_by_extension(self, tmp_path):
        collector = sample_collector()
        jsonl = write_trace(collector, tmp_path / "trace.jsonl")
        chrome = write_trace(collector, tmp_path / "trace.json")
        assert jsonl.read_text().startswith("{")
        assert "traceEvents" in json.loads(chrome.read_text())
        assert json.loads(jsonl.read_text().splitlines()[0])["name"] == "root"

    def test_unknown_extension_gets_chrome_form(self, tmp_path):
        path = write_trace(sample_collector(), tmp_path / "trace.out")
        assert "traceEvents" in json.loads(path.read_text())

    def test_unfinished_span_is_flagged_incomplete(self):
        clock = SimulatedClock()
        tracer = Tracer(clock=clock)
        tracer.start_span("crashed")  # never ended
        with tracer.span("fine"):
            clock.advance(1e-3)
        payload = to_chrome_trace(tracer.collector)
        by_name = {
            e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"
        }
        assert by_name["crashed"]["args"]["incomplete"] is True
        assert by_name["crashed"]["dur"] == 0.0
        assert "incomplete" not in by_name["fine"]["args"]

    def test_orphan_parent_anchors_own_track(self):
        """A span whose parent was never collected gets its own track."""
        clock = SimulatedClock()
        foreign = Tracer(clock=clock)
        parent = foreign.start_span("uncollected")
        tracer = Tracer(clock=clock)
        with tracer.span("orphan", parent=parent):
            clock.advance(1e-3)
            with tracer.span("grandchild"):
                clock.advance(1e-3)
        payload = to_chrome_trace(tracer.collector)
        orphan_id = tracer.collector.find("orphan")[0].span_id
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        # The orphan anchors the track; its descendant joins it.
        assert {event["tid"] for event in events} == {orphan_id}


class TestAtomicWrite:
    def test_replaces_existing_file_without_tmp_residue(self, tmp_path):
        target = tmp_path / "dump.jsonl"
        target.write_text("old contents\n")
        _atomic_write_text(target, "new contents\n")
        assert target.read_text() == "new contents\n"
        assert [p.name for p in tmp_path.iterdir()] == ["dump.jsonl"]

    def test_accepts_str_paths(self, tmp_path):
        target = tmp_path / "dump.jsonl"
        _atomic_write_text(str(target), "text\n")
        assert target.read_text() == "text\n"

    def test_failure_leaves_target_untouched_and_cleans_tmp(self, tmp_path):
        target = tmp_path / "dump.jsonl"
        target.write_text("original\n")
        with pytest.raises(TypeError):
            _atomic_write_text(target, object())  # write() rejects it
        assert target.read_text() == "original\n"
        assert [p.name for p in tmp_path.iterdir()] == ["dump.jsonl"]


class TestDemoWorkload:
    def test_jsonl_is_byte_identical_across_reruns(self):
        first = to_jsonl(run_trace_workload(seed=3, requests=8))
        second = to_jsonl(run_trace_workload(seed=3, requests=8))
        assert first == second

    def test_span_chain_reaches_the_stages(self):
        collector = run_trace_workload(seed=0, requests=8)
        by_id = {span.span_id: span for span in collector.spans()}
        names = {span.name for span in collector.spans()}
        assert {
            "request", "engine.iteration", "engine.batch", "shard.matmul",
            "shard.core", "hotpath.matmul", "stage.sample", "stage.encode",
            "stage.compute", "stage.detect",
        } <= names
        compute = collector.find("stage.compute")[0]
        chain = []
        span = compute
        while span.parent_id is not None:
            span = by_id[span.parent_id]
            chain.append(span.name)
        assert chain == [
            "hotpath.matmul", "shard.core", "shard.matmul", "engine.batch",
            "engine.iteration",
        ]

    def test_request_spans_carry_lifecycle_events(self):
        collector = run_trace_workload(seed=0, requests=8)
        requests = collector.find("request")
        assert len(requests) == 8
        for span in requests:
            assert span.parent_id is None
            events = [event.name for event in span.events]
            assert events[0] == "submit"
            assert "complete" in events

    def test_untraced_workload_collects_nothing(self):
        collector, results, snapshot = run_workload(seed=0, requests=4)
        assert collector is None
        assert len(results) == 4
        assert snapshot["completed"] == 4
