"""Tests for streaming span export and deterministic head sampling."""

import io
import json

import pytest

from repro.obs import (
    FanoutSink,
    SpanCollector,
    StreamingSpanWriter,
    TraceSampler,
    Tracer,
    is_incident,
    sampled_lines,
    span_lines,
)
from repro.obs.demo import run_trace_workload, run_workload
from repro.serving.clock import SimulatedClock


def nested_tracer(traces=3, children=2):
    """A tracer with several root spans, each with a few children."""
    clock = SimulatedClock()
    tracer = Tracer(clock=clock)
    for t in range(traces):
        with tracer.span(f"job-{t}"):
            for c in range(children):
                clock.advance(1e-3)
                with tracer.span(f"step-{c}"):
                    clock.advance(1e-3)
    return tracer


class TestTraceSampler:
    def test_rate_one_keeps_everything(self):
        tracer = nested_tracer()
        sampler = TraceSampler(1)
        for span in tracer.collector.spans():
            assert sampler.keep_trace(span)

    def test_rate_below_one_rejected(self):
        with pytest.raises(ValueError):
            TraceSampler(0)

    def test_decision_is_stable_across_instances(self):
        tracer = nested_tracer(traces=8)
        roots = [s for s in tracer.collector.spans() if s.parent_id is None]
        first = [TraceSampler(3).keep_trace(r) for r in roots]
        second = [TraceSampler(3).keep_trace(r) for r in roots]
        assert first == second
        # A rate-3 sampler over 8 distinct roots should split them.
        assert any(first) and not all(first)


class TestIsIncident:
    def test_error_attr_marks_incident(self):
        tracer = nested_tracer(traces=1, children=1)
        span = tracer.collector.spans()[0]
        assert not is_incident(span)
        span.attrs["error"] = "RuntimeError"
        assert is_incident(span)

    def test_incident_event_names(self):
        tracer = Tracer(clock=SimulatedClock())
        with tracer.span("work") as span:
            span.add_event("failover", target=1)
        assert is_incident(tracer.collector.spans()[0])


class TestStreamingSpanWriter:
    def test_streams_exactly_the_batch_lines(self):
        sink = io.StringIO()
        writer = StreamingSpanWriter(sink)
        run_workload(seed=0, requests=8, sink=writer)
        writer.close()
        collector = run_trace_workload(seed=0, requests=8)
        assert sorted(sink.getvalue().splitlines()) == sorted(
            span_lines(collector)
        )

    def test_residency_is_open_spans_not_total(self):
        sink = io.StringIO()
        writer = StreamingSpanWriter(sink)
        run_workload(seed=0, requests=12, sink=writer)
        assert writer.open_spans == 0  # workload ended every span
        assert 0 < writer.peak_open < writer.spans_seen
        writer.close()

    def test_output_is_end_order(self):
        sink = io.StringIO()
        writer = StreamingSpanWriter(sink)
        clock = SimulatedClock()
        tracer = Tracer(clock=clock, collector=writer)
        with tracer.span("outer"):
            clock.advance(1e-3)
            with tracer.span("inner"):
                clock.advance(1e-3)
        writer.close()
        names = [
            json.loads(line)["name"]
            for line in sink.getvalue().splitlines()
        ]
        assert names == ["inner", "outer"]  # children end first

    def test_path_sink_is_opened_and_closed(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with StreamingSpanWriter(path) as writer:
            clock = SimulatedClock()
            tracer = Tracer(clock=clock, collector=writer)
            with tracer.span("solo"):
                clock.advance(1e-3)
        assert writer._handle.closed
        assert json.loads(path.read_text())["name"] == "solo"

    def test_close_flushes_still_open_spans(self):
        sink = io.StringIO()
        writer = StreamingSpanWriter(sink)
        clock = SimulatedClock()
        tracer = Tracer(clock=clock, collector=writer)
        tracer.start_span("never-ended")
        clock.advance(5e-3)
        writer.close()
        writer.close()  # idempotent
        row = json.loads(sink.getvalue())
        assert row["name"] == "never-ended"
        assert row["end"] == row["start"]  # un-ended serializes as start
        assert writer.open_spans == 0

    def test_sampling_drops_whole_traces(self):
        def stream(rate):
            sink = io.StringIO()
            with StreamingSpanWriter(sink, sampler=TraceSampler(rate)) as w:
                run_workload(seed=0, requests=12, sink=w)
            return sink.getvalue()

        full = stream(1)
        sampled = stream(3)
        assert 0 < len(sampled.splitlines()) < len(full.splitlines())
        assert set(sampled.splitlines()) < set(full.splitlines())
        # Sampled roots keep their entire trace: every emitted span's
        # parent (when emitted at all) is also in the output.
        kept = {
            json.loads(line)["span_id"] for line in sampled.splitlines()
        }
        for line in sampled.splitlines():
            parent = json.loads(line)["parent_id"]
            if parent is not None:
                assert parent in kept

    def test_sampled_stream_is_deterministic(self):
        def stream():
            sink = io.StringIO()
            with StreamingSpanWriter(sink, sampler=TraceSampler(2)) as w:
                run_workload(seed=0, requests=8, sink=w)
            return sink.getvalue()

        assert stream() == stream()

    def test_incident_spans_survive_sampling(self):
        sink = io.StringIO()
        writer = StreamingSpanWriter(
            sink, sampler=TraceSampler(10**9)  # drops effectively all
        )
        clock = SimulatedClock()
        tracer = Tracer(clock=clock, collector=writer)
        for index in range(4):
            with tracer.span(f"request-{index}") as span:
                if index == 2:
                    span.add_event("failed", error="RuntimeError")
                clock.advance(1e-3)
        writer.close()
        names = [
            json.loads(line)["name"]
            for line in sink.getvalue().splitlines()
        ]
        assert names == ["request-2"]
        assert writer.spans_dropped == 3

    def test_orphan_span_anchors_its_own_trace(self):
        sink = io.StringIO()
        writer = StreamingSpanWriter(sink, sampler=TraceSampler(1))
        clock = SimulatedClock()
        foreign = Tracer(clock=clock)  # its spans never reach the writer
        parent = foreign.start_span("foreign-parent")
        tracer = Tracer(clock=clock, collector=writer)
        span = tracer.start_span("orphan", parent=parent)
        tracer.end(span)
        writer.close()
        row = json.loads(sink.getvalue())
        assert row["name"] == "orphan"
        assert row["parent_id"] == parent.span_id  # link preserved
        assert writer._root_of == {}  # orphan trace fully pruned

    def test_trace_state_is_pruned_when_trace_finishes(self):
        sink = io.StringIO()
        writer = StreamingSpanWriter(sink, sampler=TraceSampler(1))
        clock = SimulatedClock()
        tracer = Tracer(clock=clock, collector=writer)
        for _ in range(5):
            with tracer.span("job"):
                with tracer.span("step"):
                    clock.advance(1e-3)
            assert writer._root_of == {}
            assert writer._members == {}
            assert writer._keep == {}
        writer.close()


class TestSampledLines:
    def test_matches_streamed_sampling(self):
        collector = run_trace_workload(seed=0, requests=12)
        sink = io.StringIO()
        with StreamingSpanWriter(sink, sampler=TraceSampler(3)) as writer:
            run_workload(seed=0, requests=12, sink=writer)
        assert sorted(sampled_lines(collector, TraceSampler(3))) == sorted(
            sink.getvalue().splitlines()
        )

    def test_strict_subset_in_id_order(self):
        collector = run_trace_workload(seed=0, requests=12)
        sampled = sampled_lines(collector, TraceSampler(3))
        full = span_lines(collector)
        assert set(sampled) < set(full)
        # id order == the order they appear in the full dump.
        assert [line for line in full if line in set(sampled)] == sampled


class TestFanoutSink:
    def test_tees_into_every_sink(self):
        collector = SpanCollector()
        sink = io.StringIO()
        writer = StreamingSpanWriter(sink)
        fanout = FanoutSink(collector, writer)
        clock = SimulatedClock()
        tracer = Tracer(clock=clock, collector=fanout)
        with tracer.span("both"):
            clock.advance(1e-3)
        writer.close()
        assert len(fanout) == 1
        assert fanout.spans()[0].name == "both"
        assert json.loads(sink.getvalue())["name"] == "both"

    def test_requires_sinks(self):
        with pytest.raises(ValueError):
            FanoutSink()

    def test_reads_need_a_collector(self):
        fanout = FanoutSink(StreamingSpanWriter(io.StringIO()))
        assert len(fanout) == 0
        with pytest.raises(TypeError):
            fanout.spans()
