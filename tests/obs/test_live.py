"""Tests for the fleet dashboard renderer and metrics exposition."""

from repro.cluster import ClusterConfig, ServingCluster
from repro.obs import (
    FleetTop,
    MetricsExposition,
    MetricsRegistry,
    render_fleet_table,
)
from repro.obs.live import ANSI_HOME, fetch_once, serve_metrics_once, threaded_fetch
from repro.serving import EngineConfig, SimulatedClock


def fleet_snapshot():
    return {
        "fleet_size": 2,
        "replicas": {
            "0": {
                "state": "healthy",
                "dispatched": 7,
                "outstanding": 1,
                "busy_until": 2.5e-3,
            },
            "1": {
                "state": "failed",
                "dispatched": 3,
                "outstanding": 0,
                "busy_until": 0.0,
            },
        },
        "completed": 9,
        "failed": 1,
        "failovers": 1,
        "latency_s": {"p95": 4e-3},
        "queue_wait_s": {"p95": 1e-3},
        "throughput_rps": 1200.0,
    }


def slo_rows(firing=False):
    return [
        {
            "objective": "p95-latency",
            "firing": firing,
            "windows": {
                "fast": {
                    "burn_long": 15.0 if firing else 0.0,
                    "burn_short": 15.0 if firing else 0.0,
                    "max_burn": 14.4,
                    "firing": firing,
                }
            },
        }
    ]


class TestRenderFleetTable:
    def test_pure_and_deterministic(self):
        first = render_fleet_table(fleet_snapshot(), now=1.5e-3)
        second = render_fleet_table(fleet_snapshot(), now=1.5e-3)
        assert first == second

    def test_contents(self):
        frame = render_fleet_table(
            fleet_snapshot(), now=1.5e-3, slo_status=slo_rows(), color=False
        )
        assert "fleet of 2" in frame
        assert "(t=1.500 ms)" in frame
        assert "healthy" in frame and "failed" in frame
        assert "9 done, 1 failed, 1 failovers" in frame
        assert "p95 4.000 ms" in frame
        assert "1200 rps" in frame
        assert "slo: [ok] p95-latency" in frame

    def test_firing_badge(self):
        frame = render_fleet_table(
            fleet_snapshot(), slo_status=slo_rows(firing=True), color=False
        )
        assert "[FIRING] p95-latency" in frame
        assert "fast 15.0/14.4" in frame

    def test_color_off_emits_no_ansi(self):
        frame = render_fleet_table(
            fleet_snapshot(), slo_status=slo_rows(True), color=False
        )
        assert "\x1b[" not in frame

    def test_color_on_paints_states(self):
        frame = render_fleet_table(fleet_snapshot(), color=True)
        assert "\x1b[32m" in frame  # healthy green
        assert "\x1b[31m" in frame  # failed red

    def test_empty_snapshot_renders(self):
        frame = render_fleet_table({}, color=False)
        assert "fleet of 0" in frame


class EchoServable:
    name = "echo"

    def prepare(self, payload):
        return payload

    def execute(self, requests):
        return [2 * request.payload for request in requests]


class TestFleetTop:
    def test_frames_over_a_live_cluster(self):
        clock = SimulatedClock()
        cluster = ServingCluster(
            lambda rid: EchoServable(),
            config=ClusterConfig(
                replicas=2,
                engine=EngineConfig(max_wait_us=0.0),
                close_executors=False,
            ),
            clock=clock,
        )
        with cluster:
            top = FleetTop(cluster, color=False)
            idle = top.frame()
            for x in range(4):
                cluster.submit(x)
            cluster.run_until_idle()
            busy = top.frame()
        assert top.frames_rendered == 2
        assert "fleet of 2" in idle
        assert "4 done" in busy
        assert "\x1b[" not in idle + busy
        assert ANSI_HOME.startswith("\x1b[")  # the loop prefix is separate


class TestMetricsExposition:
    def test_round_trip_one_scrape(self):
        registry = MetricsRegistry()
        registry.counter("scrapes_total", help="demo").inc(3)
        exposition = MetricsExposition(registry.to_prometheus, port=0)
        assert exposition.url.startswith("http://127.0.0.1:")
        thread = threaded_fetch(exposition.url)
        served = exposition.serve_once(timeout=10.0)
        thread.join(timeout=10.0)
        assert served is not None
        assert "scrapes_total 3" in served

    def test_body_matches_what_a_client_reads(self):
        exposition = MetricsExposition(lambda: "line 1\n", port=0)
        bodies = []
        import threading

        thread = threading.Thread(
            target=lambda: bodies.append(fetch_once(exposition.url)),
            daemon=True,
        )
        thread.start()
        served = exposition.serve_once(timeout=10.0)
        thread.join(timeout=10.0)
        assert bodies == [served] == ["line 1\n"]

    def test_timeout_returns_none(self):
        exposition = MetricsExposition(lambda: "never\n", port=0)
        assert exposition.serve_once(timeout=0.05) is None

    def test_serve_metrics_once_announces_url(self):
        urls = []
        registry = MetricsRegistry()
        registry.gauge("fleet_size").set(3)

        import threading

        result = {}

        def serve():
            result["text"] = serve_metrics_once(
                registry.to_prometheus,
                announce=urls.append,
                timeout=10.0,
            )

        # announce fires before serving blocks, but the bind happens
        # inside serve_metrics_once — poll for the URL from the fetcher.
        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        for _ in range(1000):
            if urls:
                break
            import time

            time.sleep(0.005)
        assert urls and urls[0].endswith("/metrics")
        fetcher = threaded_fetch(urls[0])
        thread.join(timeout=10.0)
        fetcher.join(timeout=10.0)
        assert "fleet_size 3" in result["text"]
