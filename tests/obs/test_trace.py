"""Tests for the structured tracer: spans, events, ambient context."""

import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanCollector,
    Tracer,
    current_span,
    current_tracer,
)
from repro.serving.clock import SimulatedClock


class TestSpans:
    def test_nested_spans_record_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert [span.name for span in tracer.collector.spans()] == [
            "outer", "inner",
        ]

    def test_span_ids_are_sequential(self):
        tracer = Tracer()
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [span.span_id for span in tracer.collector.spans()] == [0, 1, 2]

    def test_attributes_and_events(self):
        tracer = Tracer(clock=SimulatedClock())
        with tracer.span("work", size=4) as span:
            span.add_event("milestone", progress=0.5)
            span.set_attr("done", True)
        assert span.attrs == {"size": 4, "done": True}
        assert [event.name for event in span.events] == ["milestone"]
        assert span.events[0].attrs == {"progress": 0.5}

    def test_simulated_clock_stamps_virtual_time(self):
        clock = SimulatedClock()
        tracer = Tracer(clock=clock)
        span = tracer.start_span("tick")
        clock.advance(1.5)
        tracer.end(span)
        assert span.start == 0.0
        assert span.end == 1.5

    def test_end_is_idempotent(self):
        clock = SimulatedClock()
        tracer = Tracer(clock=clock)
        span = tracer.start_span("once")
        clock.advance(1.0)
        tracer.end(span)
        clock.advance(1.0)
        tracer.end(span)
        assert span.end == 1.0

    def test_as_dict_shape(self):
        tracer = Tracer(clock=SimulatedClock())
        with tracer.span("shaped", k=1) as span:
            span.add_event("e")
        payload = span.as_dict()
        assert set(payload) == {
            "span_id", "parent_id", "name", "start", "end", "attrs", "events",
        }
        assert payload["events"][0]["name"] == "e"


class TestAmbientContext:
    def test_default_tracer_is_null(self):
        assert current_tracer() is NULL_TRACER
        assert not current_tracer().enabled
        assert current_span() is None

    def test_activate_sets_and_restores(self):
        tracer = Tracer()
        with tracer.activate():
            assert current_tracer() is tracer
            with tracer.span("ambient") as span:
                assert current_span() is span
        assert current_tracer() is NULL_TRACER

    def test_explicit_parent_crosses_threads(self):
        """Pool threads have no ambient context: the caller captures
        the parent and re-activates it explicitly on the worker."""
        tracer = Tracer()
        parent = tracer.start_span("caller")
        seen = {}

        def worker():
            with tracer.activate(parent):
                with tracer.span("worker") as span:
                    seen["parent_id"] = span.parent_id

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        tracer.end(parent)
        assert seen["parent_id"] == parent.span_id

    def test_null_tracer_spans_are_free(self):
        with NULL_TRACER.span("ignored") as span:
            span.add_event("nothing")
            span.set_attr("k", 1)
        assert isinstance(NULL_TRACER, NullTracer)

    def test_null_tracer_full_interface(self):
        assert NULL_TRACER.now() == 0.0
        span = NULL_TRACER.start_span("ignored", parent=None, k=1)
        assert span.as_dict() == {}
        assert span.span_id == -1
        NULL_TRACER.end(span)
        NULL_TRACER.event("nothing", k=2)
        with NULL_TRACER.activate():
            assert current_tracer() is NULL_TRACER

    def test_wall_clock_fallback_is_monotonic(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            pass
        assert span.end >= span.start

    def test_event_helper_targets_ambient_span(self):
        tracer = Tracer()
        tracer.event("dropped")  # no ambient span: silently ignored
        with tracer.span("holder") as span:
            tracer.event("kept", n=1)
        assert [event.name for event in span.events] == ["kept"]


class TestCollector:
    def test_roots_children_and_find(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        collector = tracer.collector
        assert [span.name for span in collector.roots()] == ["root"]
        assert [
            span.name for span in collector.children_of(root.span_id)
        ] == ["child"]
        assert collector.find("child")[0].parent_id == root.span_id
        assert len(collector) == 2

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("gone"):
            pass
        tracer.collector.clear()
        assert len(tracer.collector) == 0

    def test_shared_collector(self):
        collector = SpanCollector()
        a = Tracer(collector=collector)
        b = Tracer(collector=collector)
        with a.span("from-a"):
            pass
        with b.span("from-b"):
            pass
        assert {span.name for span in collector.spans()} == {
            "from-a", "from-b",
        }


class TestValidation:
    def test_span_requires_name(self):
        with pytest.raises((TypeError, ValueError)):
            Span()  # type: ignore[call-arg]
