"""Cross-validation: the analytic Eq. 9 model vs the field-level circuit.

The paper validates its analytic DDot transformation against Lumerical
INTERCONNECT; here we validate :func:`repro.core.analytic_output` (and
the DPTC's vectorised form) against :class:`repro.optics.DDotCircuit`,
our transfer-matrix substitute.  Agreement must be exact (to float
precision) because both describe the same interference circuit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import DDot, DPTC, DPTCGeometry, NoiseModel, analytic_output
from repro.core.dispersion import dispersion_profile
from repro.optics import DDotCircuit, WDMGrid

unit_floats = st.floats(min_value=-1.0, max_value=1.0)


class TestAnalyticMatchesCircuit:
    @settings(max_examples=60)
    @given(
        x=hnp.arrays(float, 12, elements=unit_floats),
        y=hnp.arrays(float, 12, elements=unit_floats),
    )
    def test_with_dispersion(self, x, y):
        grid = WDMGrid(12)
        circuit = DDotCircuit(grid, include_dispersion=True)
        profile = dispersion_profile(grid)
        assert circuit.dot_product(x, y) == pytest.approx(
            analytic_output(x, y, profile.kappa, profile.phase), abs=1e-10
        )

    @settings(max_examples=60)
    @given(
        x=hnp.arrays(float, 8, elements=unit_floats),
        y=hnp.arrays(float, 8, elements=unit_floats),
        phases=hnp.arrays(
            float, 8, elements=st.floats(min_value=-0.3, max_value=0.3)
        ),
    )
    def test_with_phase_errors(self, x, y, phases):
        """Injected relative phase drift is modelled identically."""
        grid = WDMGrid(8)
        circuit = DDotCircuit(grid, include_dispersion=True)
        profile = dispersion_profile(grid)
        circuit_out = circuit.detect(x, y, phases).differential / 2.0
        analytic = analytic_output(x, y, profile.kappa, profile.phase + phases)
        assert circuit_out == pytest.approx(analytic, abs=1e-10)

    def test_ideal_circuit_matches_ideal_analytic(self):
        grid = WDMGrid(12)
        circuit = DDotCircuit(grid, include_dispersion=False)
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, 12)
        y = rng.uniform(-1, 1, 12)
        assert circuit.dot_product(x, y) == pytest.approx(
            analytic_output(
                x, y, np.full(12, 0.5), np.full(12, -np.pi / 2)
            ),
            abs=1e-12,
        )


class TestDDotMatchesCircuit:
    def test_dispersion_only_paths_agree(self):
        """DDot (analytic, dispersion on, no stochastic noise) equals the
        circuit simulation for operands already in [-1, 1]."""
        model = NoiseModel(
            encoding=NoiseModel.ideal().encoding,
            systematic=NoiseModel.ideal().systematic,
            include_dispersion=True,
        )
        ddot = DDot(12, model)
        circuit = DDotCircuit(WDMGrid(12), include_dispersion=True)
        rng = np.random.default_rng(4)
        for _ in range(20):
            x = rng.uniform(-1, 1, 12)
            y = rng.uniform(-1, 1, 12)
            # beta rescaling changes the encoded values, so compare via
            # the scale-free ratio instead of requiring equal encodings
            got = ddot.dot(x, y)
            want = circuit.dot_product(x / np.max(np.abs(x)), y / np.max(np.abs(y)))
            want *= np.max(np.abs(x)) * np.max(np.abs(y))
            assert got == pytest.approx(want, rel=1e-10)


class TestDPTCMatchesDDotLoop:
    def test_vectorised_dispersion_matches_per_tile_loop(self):
        """The DPTC's closed-form noisy matmul must equal looping the
        analytic DDot over contraction chunks with cyclic channels."""
        geom = DPTCGeometry(4, 4, 5)
        model = NoiseModel(
            encoding=NoiseModel.ideal().encoding,
            systematic=NoiseModel.ideal().systematic,
            include_dispersion=True,
        )
        dptc = DPTC(geom, model)
        rng = np.random.default_rng(8)
        a = rng.uniform(-1, 1, size=(6, 13))
        b = rng.uniform(-1, 1, size=(13, 7))

        profile = dptc.profile
        d = a.shape[1]
        kappa = np.resize(profile.kappa, d)
        phase = np.resize(profile.phase, d)
        beta_a = np.max(np.abs(a))
        beta_b = np.max(np.abs(b))
        expected = np.empty((6, 7))
        for i in range(6):
            for j in range(7):
                expected[i, j] = beta_a * beta_b * analytic_output(
                    a[i] / beta_a, b[:, j] / beta_b, kappa, phase
                )
        assert np.allclose(dptc.matmul(a, b), expected, atol=1e-12)
