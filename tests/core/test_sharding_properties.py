"""Property-based invariants of the sharding primitives.

The splitters are the trust anchors of multi-core execution: every
engine result is only as correct as the partition it runs on.  Two
layers of evidence:

* **hypothesis properties** (when hypothesis is installed, as in CI):
  randomised bounds/slab invariants over the full parameter space —
  ``shard_bounds`` partitions ``[0, batch)`` exactly,
  ``contraction_slabs`` concatenates back to the identity, and
  ``num_shards > dim`` produces empty trailing slabs only.
* **seeded-random sweeps** (always run, no third-party dependency):
  the same invariants plus the engine-level consequence — idle
  trailing cores never change results, bit-for-bit, even under noise.
"""

import numpy as np
import pytest

from repro.core import NoiseModel, ShardedDPTC, contraction_slabs, shard_bounds

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    class TestShardBoundsProperties:
        @given(batch=st.integers(0, 2000), shards=st.integers(1, 64))
        @settings(max_examples=200, deadline=None)
        def test_partitions_batch_exactly(self, batch, shards):
            """Bounds tile [0, batch) contiguously with no gap or overlap."""
            bounds = shard_bounds(batch, shards)
            assert len(bounds) == shards
            assert bounds[0][0] == 0
            assert bounds[-1][1] == batch
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start
            assert all(start <= stop for start, stop in bounds)
            assert sum(stop - start for start, stop in bounds) == batch

        @given(batch=st.integers(0, 2000), shards=st.integers(1, 64))
        @settings(max_examples=200, deadline=None)
        def test_balanced_front_loaded(self, batch, shards):
            """Shard sizes differ by at most one, larger shards first."""
            sizes = [stop - start for start, stop in shard_bounds(batch, shards)]
            assert max(sizes) - min(sizes) <= 1
            assert sizes == sorted(sizes, reverse=True)

        @given(batch=st.integers(0, 64), shards=st.integers(1, 64))
        @settings(max_examples=200, deadline=None)
        def test_excess_shards_are_empty_tail(self, batch, shards):
            """num_shards > batch puts all the emptiness at the tail."""
            bounds = shard_bounds(batch, shards)
            occupied = min(batch, shards)
            assert all(start < stop for start, stop in bounds[:occupied])
            assert all(start == stop for start, stop in bounds[occupied:])

    class TestContractionSlabsProperties:
        @given(
            dim=st.integers(1, 64),
            shards=st.integers(1, 16),
            rows=st.integers(1, 5),
            axis=st.sampled_from([-1, -2, 0, 1]),
            seed=st.integers(0, 2**31 - 1),
        )
        @settings(max_examples=100, deadline=None)
        def test_slabs_concatenate_to_identity(self, dim, shards, rows, axis, seed):
            """Concatenating the slabs along the axis reproduces the array."""
            rng = np.random.default_rng(seed)
            shape = [rows, rows]
            shape[axis % 2] = dim
            x = rng.normal(size=shape)
            slabs = contraction_slabs(x, shards, axis=axis)
            assert len(slabs) == shards
            assert np.array_equal(np.concatenate(slabs, axis=axis), x)

        @given(dim=st.integers(1, 16), shards=st.integers(1, 32))
        @settings(max_examples=100, deadline=None)
        def test_excess_shards_make_empty_trailing_slabs(self, dim, shards):
            x = np.arange(3 * dim, dtype=float).reshape(3, dim)
            slabs = contraction_slabs(x, shards, axis=-1)
            occupied = min(dim, shards)
            assert all(slab.shape[-1] > 0 for slab in slabs[:occupied])
            assert all(slab.shape[-1] == 0 for slab in slabs[occupied:])

    class TestEngineProperties:
        @given(
            batch=st.integers(1, 9),
            m=st.integers(1, 6),
            d=st.integers(1, 30),
            n=st.integers(1, 6),
            num_cores=st.integers(1, 8),
            shard_axis=st.sampled_from(["batch", "contraction"]),
            seed=st.integers(0, 2**31 - 1),
        )
        @settings(max_examples=60, deadline=None)
        def test_ideal_path_bit_exact(
            self, batch, m, d, n, num_cores, shard_axis, seed
        ):
            """Arbitrary shapes/core counts: ideal sharding == np.matmul."""
            rng = np.random.default_rng(seed)
            a = rng.normal(size=(batch, m, d))
            b = rng.normal(size=(batch, d, n))
            engine = ShardedDPTC(
                num_cores=num_cores, shard_axis=shard_axis, parallel=False
            )
            assert np.array_equal(engine.matmul(a, b), np.matmul(a, b))


class TestSeededSweeps:
    """Dependency-free randomised sweeps of the same invariants."""

    def test_shard_bounds_partition_sweep(self):
        rng = np.random.default_rng(0)
        for _ in range(300):
            batch = int(rng.integers(0, 500))
            shards = int(rng.integers(1, 48))
            bounds = shard_bounds(batch, shards)
            assert len(bounds) == shards
            assert bounds[0][0] == 0 and bounds[-1][1] == batch
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start
            sizes = [stop - start for start, stop in bounds]
            assert max(sizes) - min(sizes) <= 1

    def test_contraction_slabs_identity_sweep(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            d = int(rng.integers(1, 40))
            shards = int(rng.integers(1, 12))
            a = rng.normal(size=(4, d))
            b = rng.normal(size=(d, 3))
            a_slabs = contraction_slabs(a, shards, axis=-1)
            b_slabs = contraction_slabs(b, shards, axis=-2)
            assert np.array_equal(np.concatenate(a_slabs, axis=-1), a)
            assert np.array_equal(np.concatenate(b_slabs, axis=-2), b)
            # Paired slabs stay aligned: summed slab products == product.
            acc = np.zeros((4, 3))
            for sa, sb in zip(a_slabs, b_slabs):
                if sa.shape[-1]:
                    acc += sa @ sb
            assert np.allclose(acc, a @ b)

    def test_slabs_are_views(self):
        x = np.arange(12, dtype=float).reshape(3, 4)
        slabs = contraction_slabs(x, 2, axis=-1)
        assert all(slab.base is not None for slab in slabs)
        assert all(np.shares_memory(slab, x) for slab in slabs)

    def test_axis_validation(self):
        with pytest.raises(ValueError):
            contraction_slabs(np.ones((3, 4)), 2, axis=2)
        with pytest.raises(ValueError):
            contraction_slabs(np.ones((3, 4)), 2, axis=-3)
        with pytest.raises(ValueError):
            contraction_slabs(np.ones((3, 4)), 0, axis=-1)

    @pytest.mark.parametrize("shard_axis", ["batch", "contraction"])
    def test_excess_cores_idle_without_changing_results(self, shard_axis):
        """num_cores > dim: trailing cores idle, results bit-identical.

        Streams spawn prefix-stably by core index, so the engine with
        idle cores reproduces the fully-occupied engine bit-for-bit —
        ideal *and* noisy.
        """
        rng = np.random.default_rng(2)
        a = rng.normal(size=(3, 4, 3))  # batch 3, d 3: both axes < 8 cores
        b = rng.normal(size=(3, 3, 4))
        exact = ShardedDPTC(num_cores=8, shard_axis=shard_axis)
        assert np.array_equal(exact.matmul(a, b), np.matmul(a, b))

        occupied = ShardedDPTC(
            num_cores=3, shard_axis=shard_axis, noise=NoiseModel.paper_default()
        )
        oversubscribed = ShardedDPTC(
            num_cores=8, shard_axis=shard_axis, noise=NoiseModel.paper_default()
        )
        assert np.array_equal(
            occupied.matmul(a, b, rng=np.random.default_rng(5)),
            oversubscribed.matmul(a, b, rng=np.random.default_rng(5)),
        )
