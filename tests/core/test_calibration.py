"""Tests for the dispersion-calibration extension."""

import numpy as np
import pytest

from repro.core import (
    CalibratedDPTC,
    DPTC,
    DPTCGeometry,
    NoiseModel,
    additive_correction,
    channel_gains,
    dispersion_error_reduction,
)
from repro.core.dispersion import DispersionProfile, dispersion_profile
from repro.optics import WDMGrid


@pytest.fixture
def profile():
    return dispersion_profile(WDMGrid(12))


def dispersion_only() -> NoiseModel:
    return NoiseModel(
        encoding=NoiseModel.ideal().encoding,
        systematic=NoiseModel.ideal().systematic,
        include_dispersion=True,
    )


class TestChannelGains:
    def test_inverts_multiplicative_factor(self, profile):
        gains = channel_gains(profile, 12)
        assert np.allclose(gains * profile.multiplicative_factor, 1.0)

    def test_cyclic_tiling(self, profile):
        gains = channel_gains(profile, 30)
        assert gains.shape == (30,)
        assert np.allclose(gains[:12], gains[12:24])

    def test_ideal_profile_gains_are_one(self):
        gains = channel_gains(DispersionProfile.ideal(8), 8)
        assert np.allclose(gains, 1.0)

    def test_validation(self, profile):
        with pytest.raises(ValueError):
            channel_gains(profile, 0)

    def test_degenerate_profile_rejected(self):
        degenerate = DispersionProfile(
            kappa=np.array([0.5]), phase=np.array([0.0])  # sin(0) = 0 gain
        )
        with pytest.raises(ValueError):
            channel_gains(degenerate, 4)


class TestAdditiveCorrection:
    def test_zero_at_ideal_profile(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (4, 8))
        b = rng.uniform(-1, 1, (8, 4))
        correction = additive_correction(a, b, DispersionProfile.ideal(8))
        assert np.allclose(correction, 0.0)

    def test_matches_dptc_error_structure(self, profile):
        """The correction equals the additive term the engine injects."""
        geometry = DPTCGeometry(4, 4, 12)
        rng = np.random.default_rng(1)
        a = rng.uniform(-1, 1, (4, 12))
        b = rng.uniform(-1, 1, (12, 4))
        engine = DPTC(geometry, dispersion_only())
        # Remove the multiplicative part with exact gains, leaving only
        # the additive term.
        gains = channel_gains(profile, 12)
        raw = engine.matmul(a, b * gains[:, None])
        beta_a = np.max(np.abs(a))
        b_comp = b * gains[:, None]
        beta_b = np.max(np.abs(b_comp))
        correction = additive_correction(
            a / beta_a, b_comp / beta_b, profile
        ) * beta_a * beta_b
        assert np.allclose(raw - correction, a @ b, atol=1e-12)


class TestCalibratedDPTC:
    def test_dispersion_only_recovers_exact(self):
        engine = CalibratedDPTC(DPTCGeometry(), dispersion_only())
        rng = np.random.default_rng(2)
        a = rng.uniform(-1, 1, (16, 24))
        b = rng.uniform(-1, 1, (24, 16))
        assert np.allclose(engine.matmul(a, b), a @ b, atol=1e-10)

    def test_error_reduction_is_large(self):
        plain, calibrated = dispersion_error_reduction(DPTCGeometry())
        assert plain > 1e-4
        assert calibrated < plain / 100

    def test_ideal_model_passthrough(self):
        engine = CalibratedDPTC(DPTCGeometry(), NoiseModel.ideal())
        rng = np.random.default_rng(3)
        a = rng.normal(size=(8, 12))
        b = rng.normal(size=(12, 8))
        assert np.allclose(engine.matmul(a, b), a @ b)

    def test_stochastic_noise_unaffected(self):
        """Calibration removes the deterministic bias without touching
        the stochastic error floor."""
        rng_data = np.random.default_rng(4)
        a = rng_data.uniform(-1, 1, (16, 24))
        b = rng_data.uniform(-1, 1, (24, 16))
        reference = a @ b
        noise = NoiseModel.paper_default()

        def mean_error(engine_cls):
            errors = []
            for seed in range(10):
                out = engine_cls(DPTCGeometry(), noise).matmul(
                    a, b, rng=np.random.default_rng(seed)
                )
                errors.append(
                    np.linalg.norm(out - reference) / np.linalg.norm(reference)
                )
            return np.mean(errors)

        plain = mean_error(DPTC)
        calibrated = mean_error(CalibratedDPTC)
        assert calibrated == pytest.approx(plain, rel=0.15)

    def test_zero_operands(self):
        engine = CalibratedDPTC(DPTCGeometry(), dispersion_only())
        out = engine.matmul(np.zeros((4, 12)), np.ones((12, 4)))
        assert np.allclose(out, 0.0)

    def test_shape_validation(self):
        engine = CalibratedDPTC(DPTCGeometry(), dispersion_only())
        with pytest.raises(ValueError):
            engine.matmul(np.ones((3, 4)), np.ones((5, 6)))
