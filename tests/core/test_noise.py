"""Tests for the Sec. III-C noise model bundle."""

import numpy as np
import pytest

from repro.core import EncodingNoise, NoiseModel, SystematicNoise


class TestEncodingNoise:
    def test_defaults_match_paper(self):
        noise = EncodingNoise()
        assert noise.magnitude_std == pytest.approx(0.03)
        assert noise.phase_std_deg == pytest.approx(2.0)

    def test_phase_conversion(self):
        assert EncodingNoise(phase_std_deg=180.0).phase_std_rad == pytest.approx(
            np.pi
        )

    def test_magnitude_noise_is_relative(self):
        """delta_x ~ N(0, (sigma*|x|)^2): bigger values drift more."""
        noise = EncodingNoise(magnitude_std=0.1, phase_std_deg=0.0)
        rng = np.random.default_rng(0)
        small = noise.perturb_magnitude(np.full(20_000, 0.1), rng) - 0.1
        large = noise.perturb_magnitude(np.full(20_000, 1.0), rng) - 1.0
        assert np.std(large) == pytest.approx(10 * np.std(small), rel=0.05)

    def test_zero_noise_is_identity(self):
        noise = EncodingNoise(0.0, 0.0)
        rng = np.random.default_rng(0)
        values = np.array([0.1, -0.5, 0.9])
        assert np.array_equal(noise.perturb_magnitude(values, rng), values)
        assert np.array_equal(noise.sample_phase((3,), rng), np.zeros(3))

    def test_phase_sample_statistics(self):
        noise = EncodingNoise(phase_std_deg=2.0)
        rng = np.random.default_rng(1)
        phases = noise.sample_phase((50_000,), rng)
        assert np.std(phases) == pytest.approx(np.radians(2.0), rel=0.03)
        assert np.mean(phases) == pytest.approx(0.0, abs=1e-3)

    def test_rejects_negative_std(self):
        with pytest.raises(ValueError):
            EncodingNoise(magnitude_std=-0.1)
        with pytest.raises(ValueError):
            EncodingNoise(phase_std_deg=-1.0)


class TestSystematicNoise:
    def test_default_matches_paper(self):
        assert SystematicNoise().std == pytest.approx(0.05)

    def test_multiplicative_structure(self):
        """eps is relative: zero outputs stay exactly zero."""
        noise = SystematicNoise(0.5)
        rng = np.random.default_rng(0)
        assert np.array_equal(noise.apply(np.zeros(10), rng), np.zeros(10))

    def test_statistics(self):
        noise = SystematicNoise(0.05)
        rng = np.random.default_rng(2)
        out = noise.apply(np.full(50_000, 2.0), rng)
        assert np.std(out / 2.0) == pytest.approx(0.05, rel=0.03)

    def test_zero_std_identity(self):
        rng = np.random.default_rng(0)
        values = np.array([1.0, -3.0])
        assert np.array_equal(SystematicNoise(0.0).apply(values, rng), values)


class TestNoiseModel:
    def test_ideal_flags(self):
        model = NoiseModel.ideal()
        assert model.is_ideal
        assert not model.include_dispersion

    def test_paper_default_flags(self):
        model = NoiseModel.paper_default()
        assert not model.is_ideal
        assert model.include_dispersion
        assert model.encoding.magnitude_std == pytest.approx(0.03)
        assert model.systematic.std == pytest.approx(0.05)

    def test_dispersion_only_model_not_ideal(self):
        model = NoiseModel(
            encoding=EncodingNoise(0.0, 0.0),
            systematic=SystematicNoise(0.0),
            include_dispersion=True,
        )
        assert not model.is_ideal
