"""Tests for the DPTC crossbar tensor core."""

import numpy as np
import pytest

from repro.core import CHANNEL_CACHE_SIZE, DPTC, DPTCGeometry, NoiseModel
from repro.core.noise import EncodingNoise, SystematicNoise


class TestGeometry:
    def test_paper_default_dimensions(self):
        geom = DPTCGeometry()
        assert (geom.n_h, geom.n_v, geom.n_lambda) == (12, 12, 12)

    def test_macs_per_cycle(self):
        assert DPTCGeometry(12, 12, 12).macs_per_cycle == 1728
        assert DPTCGeometry(8, 8, 8).macs_per_cycle == 512

    def test_ops_per_cycle_is_twice_macs(self):
        geom = DPTCGeometry(4, 5, 6)
        assert geom.ops_per_cycle == 2 * geom.macs_per_cycle

    def test_n_ddots(self):
        assert DPTCGeometry(3, 7, 12).n_ddots == 21

    def test_tile_counts_exact_fit(self):
        geom = DPTCGeometry(12, 12, 12)
        assert geom.tile_counts(24, 36, 12) == (2, 3, 1)

    def test_tile_counts_round_up(self):
        geom = DPTCGeometry(12, 12, 12)
        assert geom.tile_counts(13, 1, 25) == (2, 1, 3)

    def test_cycles_deit_attention_shape(self):
        """197 x 64 x 197 (one DeiT-T attention head QK^T)."""
        assert DPTCGeometry().cycles(197, 64, 197) == 17 * 6 * 17

    def test_utilization_perfect_fit(self):
        assert DPTCGeometry(12, 12, 12).utilization(12, 12, 12) == pytest.approx(1.0)

    def test_utilization_poor_fit(self):
        util = DPTCGeometry(12, 12, 12).utilization(13, 13, 13)
        assert util == pytest.approx(13**3 / (8 * 1728))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            DPTCGeometry(0, 12, 12)
        with pytest.raises(ValueError):
            DPTCGeometry().cycles(0, 5, 5)


class TestEncodingCostModel:
    """Eq. 6 and the (2*Nh*Nv)/(Nh+Nv) sharing claim."""

    def test_shared_cost(self):
        geom = DPTCGeometry(12, 12, 12)
        assert geom.encoding_ops_shared() == 12 * 12 + 12 * 12

    def test_unshared_cost(self):
        geom = DPTCGeometry(12, 12, 12)
        assert geom.encoding_ops_unshared() == 2 * 12 * 12 * 12

    def test_paper_12x_saving(self):
        assert DPTCGeometry(12, 12, 12).encoding_saving() == pytest.approx(12.0)

    def test_saving_formula(self):
        geom = DPTCGeometry(8, 24, 12)
        expected = 2 * 8 * 24 / (8 + 24)
        assert geom.encoding_saving() == pytest.approx(expected)

    def test_tiled_cost_scales(self):
        geom = DPTCGeometry()
        assert geom.encoding_ops_shared(3, 2) == 6 * geom.encoding_ops_shared()


class TestIdealExecution:
    def test_matches_numpy(self):
        dptc = DPTC(noise=NoiseModel.ideal())
        rng = np.random.default_rng(0)
        a = rng.normal(size=(30, 50))
        b = rng.normal(size=(50, 20))
        assert np.allclose(dptc.matmul(a, b), a @ b)

    def test_tile_matmul_shapes_enforced(self):
        dptc = DPTC(DPTCGeometry(4, 6, 5), noise=NoiseModel.ideal())
        a = np.ones((4, 5))
        b = np.ones((5, 6))
        assert np.allclose(dptc.tile_matmul(a, b), a @ b)
        with pytest.raises(ValueError):
            dptc.tile_matmul(np.ones((5, 5)), b)
        with pytest.raises(ValueError):
            dptc.tile_matmul(a, np.ones((6, 6)))

    def test_incompatible_shapes_rejected(self):
        dptc = DPTC(noise=NoiseModel.ideal())
        with pytest.raises(ValueError):
            dptc.matmul(np.ones((3, 4)), np.ones((5, 6)))

    def test_grid_channel_mismatch_rejected(self):
        from repro.optics import WDMGrid

        with pytest.raises(ValueError):
            DPTC(DPTCGeometry(12, 12, 12), grid=WDMGrid(8))


class TestNoisyExecution:
    def test_zero_matrix_stays_zero(self):
        dptc = DPTC(noise=NoiseModel.paper_default())
        out = dptc.matmul(np.zeros((5, 12)), np.ones((12, 5)))
        assert np.array_equal(out, np.zeros((5, 5)))

    def test_relative_error_reasonable(self):
        dptc = DPTC(noise=NoiseModel.paper_default())
        rng = np.random.default_rng(1)
        a = rng.normal(size=(64, 96))
        b = rng.normal(size=(96, 48))
        out = dptc.matmul(a, b, rng=rng)
        rel = np.linalg.norm(out - a @ b) / np.linalg.norm(a @ b)
        assert rel < 0.15

    def test_unbiased(self):
        model = NoiseModel(
            encoding=EncodingNoise(0.03, 2.0),
            systematic=SystematicNoise(0.05),
            include_dispersion=False,
        )
        dptc = DPTC(noise=model)
        rng = np.random.default_rng(2)
        a = rng.uniform(-1, 1, size=(8, 12))
        b = rng.uniform(-1, 1, size=(12, 8))
        acc = np.zeros((8, 8))
        n = 600
        for _ in range(n):
            acc += dptc.matmul(a, b, rng=rng)
        # max-over-64-elements of a 600-sample mean: ~4 sigma headroom
        assert np.allclose(acc / n, a @ b, atol=0.05)

    def test_dispersion_only_is_deterministic(self):
        model = NoiseModel(
            encoding=EncodingNoise(0.0, 0.0),
            systematic=SystematicNoise(0.0),
            include_dispersion=True,
        )
        dptc = DPTC(noise=model)
        rng = np.random.default_rng(3)
        a = rng.normal(size=(10, 24))
        b = rng.normal(size=(24, 10))
        out1 = dptc.matmul(a, b)
        out2 = dptc.matmul(a, b)
        assert np.array_equal(out1, out2)
        rel = np.linalg.norm(out1 - a @ b) / np.linalg.norm(a @ b)
        assert rel < 0.02

    def test_scale_invariance_of_relative_error(self):
        """beta normalisation means absolute operand scale is irrelevant."""
        dptc = DPTC(noise=NoiseModel.paper_default())
        a = np.random.default_rng(5).normal(size=(16, 24))
        b = np.random.default_rng(6).normal(size=(24, 16))
        out_small = dptc.matmul(a, b, rng=np.random.default_rng(7))
        out_large = dptc.matmul(1e3 * a, 1e3 * b, rng=np.random.default_rng(7))
        assert np.allclose(out_large, 1e6 * out_small, rtol=1e-9)

    def test_seeded_reproducibility(self):
        dptc = DPTC(noise=NoiseModel.paper_default())
        a = np.ones((4, 12))
        b = np.ones((12, 4))
        out1 = dptc.matmul(a, b, rng=np.random.default_rng(0))
        out2 = dptc.matmul(a, b, rng=np.random.default_rng(0))
        assert np.array_equal(out1, out2)


class TestChannelCacheLRU:
    """The per-contraction-length dispersion cache is a bounded LRU."""

    def test_cache_never_exceeds_cap(self):
        dptc = DPTC(noise=NoiseModel.paper_default())
        rng = np.random.default_rng(0)
        for d in range(1, 3 * CHANNEL_CACHE_SIZE + 1):
            a = rng.normal(size=(2, d))
            b = rng.normal(size=(d, 2))
            dptc.matmul(a, b, rng=rng)
            assert len(dptc._channel_cache) <= CHANNEL_CACHE_SIZE

    def test_eviction_never_changes_results(self):
        """Evicted entries are recomputed, bit-identically: a hammered
        engine matches a fresh one on every contraction length."""
        hammered = DPTC(noise=NoiseModel.paper_default())
        rng = np.random.default_rng(1)
        lengths = list(range(1, 2 * CHANNEL_CACHE_SIZE + 1))
        cases = {
            d: (rng.normal(size=(3, d)), rng.normal(size=(d, 3)))
            for d in lengths
        }
        for d in lengths:  # fill far past the cap, evicting early entries
            hammered.matmul(*cases[d], rng=np.random.default_rng(d))
        for d in lengths:  # revisit every length, including evicted ones
            fresh = DPTC(noise=NoiseModel.paper_default())
            want = fresh.matmul(*cases[d], rng=np.random.default_rng(d))
            got = hammered.matmul(*cases[d], rng=np.random.default_rng(d))
            assert np.array_equal(want, got)

    def test_recently_used_entries_survive(self):
        dptc = DPTC(noise=NoiseModel.paper_default())
        rng = np.random.default_rng(2)
        dptc.matmul(rng.normal(size=(2, 7)), rng.normal(size=(7, 2)), rng=rng)
        for d in range(10, 10 + CHANNEL_CACHE_SIZE - 1):
            dptc.matmul(
                rng.normal(size=(2, d)), rng.normal(size=(d, 2)), rng=rng
            )
            # Touching d=7 each round keeps it most-recently-used.
            dptc.matmul(
                rng.normal(size=(2, 7)), rng.normal(size=(7, 2)), rng=rng
            )
        assert 7 in dptc._channel_cache


class TestSampleNoiseFusedDraw:
    """The fused standard-normal draw is bit-identical to the five
    sequential per-component draws, in the documented order
    (magnitude A, magnitude B, phase A, phase B, systematic)."""

    A_SHAPE = (3, 4, 24)
    B_SHAPE = (3, 24, 5)
    OUT_SHAPE = (3, 4, 5)

    def sequential_draw(self, noise, rng):
        """Component-by-component oracle using the pre-fusion recipe."""
        draws = []
        for shape, std, base in (
            (self.A_SHAPE, noise.encoding.magnitude_std, 1.0),
            (self.B_SHAPE, noise.encoding.magnitude_std, 1.0),
            (self.A_SHAPE, noise.encoding.phase_std_rad, 0.0),
            (self.B_SHAPE, noise.encoding.phase_std_rad, 0.0),
            (self.OUT_SHAPE, noise.systematic.std, 1.0),
        ):
            if std == 0.0:
                draws.append(base)
            else:
                block = rng.normal(0.0, std, shape)
                if base != 0.0:
                    block += base
                draws.append(block)
        return draws

    def assert_draw_matches(self, noise):
        dptc = DPTC(noise=noise)
        draw = dptc.sample_noise(
            self.A_SHAPE, self.B_SHAPE, np.random.default_rng(9)
        )
        want = self.sequential_draw(noise, np.random.default_rng(9))
        got = (
            draw.magnitude_a,
            draw.magnitude_b,
            draw.phase_a,
            draw.phase_b,
            draw.systematic,
        )
        for expected, actual in zip(want, got):
            if isinstance(expected, float):
                assert actual == expected  # scalar collapse, no draw
            else:
                assert np.array_equal(actual, expected)

    def test_full_model_matches_sequential(self):
        self.assert_draw_matches(NoiseModel.paper_default())

    def test_magnitude_only(self):
        self.assert_draw_matches(
            NoiseModel(
                encoding=EncodingNoise(0.03, 0.0),
                systematic=SystematicNoise(0.0),
            )
        )

    def test_phase_only(self):
        self.assert_draw_matches(
            NoiseModel(
                encoding=EncodingNoise(0.0, 2.0),
                systematic=SystematicNoise(0.0),
            )
        )

    def test_systematic_only(self):
        self.assert_draw_matches(
            NoiseModel(
                encoding=EncodingNoise(0.0, 0.0),
                systematic=SystematicNoise(0.05),
            )
        )

    def test_all_ideal_components_consume_no_stream(self):
        """An all-zero-std model collapses every component to a scalar
        and leaves the generator untouched."""
        dptc = DPTC(
            noise=NoiseModel(
                encoding=EncodingNoise(0.0, 0.0),
                systematic=SystematicNoise(0.0),
                include_dispersion=True,
            )
        )
        rng = np.random.default_rng(4)
        draw = dptc.sample_noise(self.A_SHAPE, self.B_SHAPE, rng)
        assert draw.magnitude_a == 1.0 and draw.magnitude_b == 1.0
        assert draw.phase_a == 0.0 and draw.phase_b == 0.0
        assert draw.systematic == 1.0
        # Stream untouched: the next value equals a fresh generator's.
        assert rng.standard_normal() == np.random.default_rng(4).standard_normal()

    def test_mixed_model_interleaves_correctly(self):
        """Zero-std components are skipped without consuming stream, so
        the live components read a contiguous prefix of the stream."""
        self.assert_draw_matches(
            NoiseModel(
                encoding=EncodingNoise(0.03, 0.0),
                systematic=SystematicNoise(0.05),
            )
        )
