"""Tests for the engine hot path: chunked pipelining + shm transport.

The load-bearing invariant is *bit-equality*: pipelining only reorders
the SAMPLE/ENCODE/COMPUTE/DETECT stages in wall-clock time — the RNG
draws, their order, and every floating-point operation are unchanged.
So every pipelined configuration must reproduce the sequential
per-chunk oracle exactly, across depths, backends, and shard axes,
including under close-while-busy shutdown races.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import (
    CalibratedDPTC,
    DPTC,
    NoiseModel,
    ShardedDPTC,
    chunk_bounds,
    pipelined_matmul,
    profile_stages,
)
from repro.core.hotpath import (
    attach_segment,
    pack_arrays,
    release_segment,
    slice_batch_operand,
    unpack_spec,
)


def operands(seed, a_shape, b_shape):
    rng = np.random.default_rng(seed)
    return rng.normal(size=a_shape), rng.normal(size=b_shape)


def chunk_oracle(core, a, b, seed, chunk_size):
    """Sequential per-chunk engine calls: the bit-equality ground truth."""
    stream = np.random.default_rng(seed)
    return np.concatenate(
        [
            core.matmul(a[start:stop], b[start:stop], rng=stream)
            for start, stop in chunk_bounds(a.shape[0], chunk_size)
        ],
        axis=0,
    )


class TestChunkBounds:
    def test_covers_batch_contiguously(self):
        bounds = chunk_bounds(10, 3)
        assert bounds == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_exact_division_has_no_remainder_chunk(self):
        assert chunk_bounds(8, 4) == [(0, 4), (4, 8)]

    def test_chunk_larger_than_batch(self):
        assert chunk_bounds(3, 100) == [(0, 3)]

    def test_zero_batch_yields_no_chunks(self):
        assert chunk_bounds(0, 4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_bounds(-1, 4)
        with pytest.raises(ValueError):
            chunk_bounds(4, 0)


class TestSliceBatchOperand:
    def test_full_rank_operand_is_sliced(self):
        x = np.arange(24.0).reshape(4, 3, 2)
        sliced = slice_batch_operand(x, batch_rank=1, start=1, stop=3)
        assert np.array_equal(sliced, x[1:3])

    def test_2d_weight_passes_whole(self):
        w = np.arange(6.0).reshape(3, 2)
        assert slice_batch_operand(w, batch_rank=1, start=0, stop=1) is w

    def test_size_one_leading_axis_passes_whole(self):
        x = np.arange(6.0).reshape(1, 3, 2)
        assert slice_batch_operand(x, batch_rank=1, start=2, stop=4) is x


class TestPipelinedBitEquality:
    """pipelined_matmul == the sequential per-chunk oracle, always."""

    @pytest.fixture(scope="class")
    def core(self):
        return DPTC(noise=NoiseModel.paper_default())

    @pytest.fixture(scope="class")
    def stacked(self):
        a, b = operands(3, (13, 5, 24), (13, 24, 5))
        a[4] = 0.0  # all-zero stack: the draw-less short-circuit
        return a, b

    @pytest.mark.parametrize("chunk_size", [1, 3, 5, 13, 50])
    @pytest.mark.parametrize("depth", [0, 1, 2, 4])
    def test_matches_chunk_oracle(self, core, stacked, chunk_size, depth):
        a, b = stacked
        want = chunk_oracle(core, a, b, seed=42, chunk_size=chunk_size)
        with ThreadPoolExecutor(max_workers=1) as prefetch:
            got = pipelined_matmul(
                core, a, b, np.random.default_rng(42),
                chunk_size=chunk_size, pipeline_depth=depth,
                prefetch=prefetch if depth else None,
            )
        assert np.array_equal(want, got)

    def test_single_chunk_equals_unchunked(self, core, stacked):
        a, b = stacked
        want = core.matmul(a, b, rng=np.random.default_rng(11))
        got = pipelined_matmul(
            core, a, b, np.random.default_rng(11), chunk_size=a.shape[0]
        )
        assert np.array_equal(want, got)

    def test_ideal_core_bypasses_chunking_exactly(self, stacked):
        a, b = stacked
        got = pipelined_matmul(
            DPTC(), a, b, np.random.default_rng(0), chunk_size=2
        )
        assert np.array_equal(got, np.matmul(a, b))

    def test_matrix_operands_have_no_batch_to_chunk(self, core):
        a, b = operands(5, (4, 12), (12, 4))
        want = core.matmul(a, b, rng=np.random.default_rng(1))
        got = pipelined_matmul(
            core, a, b, np.random.default_rng(1), chunk_size=2
        )
        assert np.array_equal(want, got)

    def test_broadcast_weight_encoded_per_chunk(self, core):
        """A shared 2-D weight rides whole into every chunk — exactly
        like the per-chunk oracle encodes it once per call."""
        a, w = operands(6, (9, 4, 16), (16, 4))
        stream = np.random.default_rng(13)
        want = np.concatenate(
            [
                core.matmul(a[start:stop], w, rng=stream)
                for start, stop in chunk_bounds(a.shape[0], 4)
            ],
            axis=0,
        )
        got = pipelined_matmul(
            core, a, w, np.random.default_rng(13), chunk_size=4
        )
        assert np.array_equal(want, got)

    def test_calibrated_core_pipeline(self, stacked):
        a, b = stacked
        core = CalibratedDPTC(noise=NoiseModel.paper_default())
        want = chunk_oracle(core, a, b, seed=21, chunk_size=4)
        with ThreadPoolExecutor(max_workers=1) as prefetch:
            got = pipelined_matmul(
                core, a, b, np.random.default_rng(21),
                chunk_size=4, pipeline_depth=2, prefetch=prefetch,
            )
        assert np.array_equal(want, got)

    def test_shutdown_prefetch_falls_back_inline(self, core, stacked):
        """A prefetch executor that is already closed (close-while-busy)
        must not change results — and must not deadlock."""
        a, b = stacked
        want = chunk_oracle(core, a, b, seed=9, chunk_size=3)
        prefetch = ThreadPoolExecutor(max_workers=1)
        prefetch.shutdown(wait=True)
        got = pipelined_matmul(
            core, a, b, np.random.default_rng(9),
            chunk_size=3, pipeline_depth=2, prefetch=prefetch,
        )
        assert np.array_equal(want, got)


class TestShardedChunkedExecution:
    """ShardedDPTC with chunk_size: pipelined == unpipelined == sequential."""

    @pytest.fixture(scope="class")
    def stacked(self):
        return operands(8, (9, 5, 24), (9, 24, 5))

    @pytest.mark.parametrize("shard_axis", ["batch", "contraction"])
    @pytest.mark.parametrize("depth", [0, 1, 2])
    def test_thread_backend_matches_sequential(self, stacked, shard_axis, depth):
        a, b = stacked
        sequential = ShardedDPTC(
            num_cores=3, noise=NoiseModel.paper_default(),
            shard_axis=shard_axis, parallel=False, chunk_size=2,
        )
        want = sequential.matmul(a, b, rng=np.random.default_rng(5))
        sequential.close()
        engine = ShardedDPTC(
            num_cores=3, noise=NoiseModel.paper_default(),
            shard_axis=shard_axis, chunk_size=2, pipeline_depth=depth,
        )
        got = engine.matmul(a, b, rng=np.random.default_rng(5))
        engine.close()
        assert np.array_equal(want, got)

    def test_unchunked_engine_unchanged_by_knobs(self, stacked):
        """chunk_size=None keeps the exact pre-pipelining draw order."""
        a, b = stacked
        plain = ShardedDPTC(num_cores=2, noise=NoiseModel.paper_default())
        knobbed = ShardedDPTC(
            num_cores=2, noise=NoiseModel.paper_default(), pipeline_depth=3
        )
        want = plain.matmul(a, b, rng=np.random.default_rng(2))
        got = knobbed.matmul(a, b, rng=np.random.default_rng(2))
        plain.close()
        knobbed.close()
        assert np.array_equal(want, got)

    def test_single_core_chunked_matches_plain_chunk_oracle(self, stacked):
        a, b = stacked
        engine = ShardedDPTC(
            num_cores=1, noise=NoiseModel.paper_default(),
            chunk_size=4, pipeline_depth=1,
        )
        # num_cores=1 spawns one child stream off the call's generator.
        stream = np.random.default_rng(3).spawn(1)[0]
        want = np.concatenate(
            [
                DPTC(noise=NoiseModel.paper_default()).matmul(
                    a[s:e], b[s:e], rng=stream
                )
                for s, e in chunk_bounds(a.shape[0], 4)
            ],
            axis=0,
        )
        got = engine.matmul(a, b, rng=np.random.default_rng(3))
        engine.close()
        assert np.array_equal(want, got)

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            ShardedDPTC(num_cores=2, chunk_size=0)
        with pytest.raises(ValueError):
            ShardedDPTC(num_cores=2, pipeline_depth=-1)

    def test_close_while_busy_no_deadlock_same_result(self, stacked):
        """close() racing an in-flight chunked matmul must neither
        deadlock nor change the result (inline prepare fallback)."""
        a, b = stacked
        oracle = ShardedDPTC(
            num_cores=2, noise=NoiseModel.paper_default(),
            parallel=False, chunk_size=1,
        )
        want = oracle.matmul(a, b, rng=np.random.default_rng(17))
        oracle.close()
        engine = ShardedDPTC(
            num_cores=2, noise=NoiseModel.paper_default(),
            chunk_size=1, pipeline_depth=3,
        )
        with ThreadPoolExecutor(max_workers=1) as runner:
            future = runner.submit(
                engine.matmul, a, b, np.random.default_rng(17)
            )
            time.sleep(0.005)  # let some chunks enter the pipeline
            closer = threading.Thread(target=engine.close)
            closer.start()
            got = future.result(timeout=60)
            closer.join(timeout=60)
            assert not closer.is_alive()
        engine.close()
        assert np.array_equal(want, got)


class TestProcessBackendChunked:
    """Parent-side predraw + shm transport stays bit-equal (one heavy
    engine reused: process pools are slow to spawn)."""

    def test_chunked_process_matches_sequential(self):
        a, b = operands(10, (6, 4, 16), (6, 16, 4))
        a[2] = 0.0  # all-zero chunk short-circuits parent-side
        sequential = ShardedDPTC(
            num_cores=2, noise=NoiseModel.paper_default(),
            parallel=False, chunk_size=2,
        )
        want = sequential.matmul(a, b, rng=np.random.default_rng(23))
        sequential.close()
        engine = ShardedDPTC(
            num_cores=2, noise=NoiseModel.paper_default(),
            backend="process", chunk_size=2,
        )
        got_shm = engine.matmul(a, b, rng=np.random.default_rng(23))
        engine.close()
        inline = ShardedDPTC(
            num_cores=2, noise=NoiseModel.paper_default(),
            backend="process", chunk_size=2, shared_memory=False,
        )
        got_inline = inline.matmul(a, b, rng=np.random.default_rng(23))
        inline.close()
        assert np.array_equal(want, got_shm)
        assert np.array_equal(want, got_inline)


class TestSharedMemoryTransport:
    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(0)
        arrays = [
            rng.normal(size=(3, 5)),
            np.arange(7, dtype=np.int64),
            rng.normal(size=(2, 2, 2)),
        ]
        segment, specs = pack_arrays(arrays)
        try:
            for array, spec in zip(arrays, specs):
                assert np.array_equal(unpack_spec(segment, spec), array)
            offsets = [spec[0] for spec in specs]
            assert all(offset % 64 == 0 for offset in offsets)
            assert offsets == sorted(offsets)
        finally:
            release_segment(segment, unlink=True)

    def test_attach_is_untracked_and_sees_owner_data(self):
        payload = np.arange(12.0).reshape(3, 4)
        segment, specs = pack_arrays([payload])
        try:
            attached = attach_segment(segment.name)
            try:
                assert np.array_equal(unpack_spec(attached, specs[0]), payload)
            finally:
                release_segment(attached)
        finally:
            release_segment(segment, unlink=True)

    def test_empty_pack_allocates_minimal_segment(self):
        segment, specs = pack_arrays([])
        try:
            assert specs == []
        finally:
            release_segment(segment, unlink=True)

    def test_non_contiguous_views_pack_by_value(self):
        base = np.arange(24.0).reshape(4, 6)
        view = base[::2, ::3]  # non-contiguous
        segment, specs = pack_arrays([view])
        try:
            assert np.array_equal(unpack_spec(segment, specs[0]), view)
        finally:
            release_segment(segment, unlink=True)


class TestProfileStages:
    def test_reports_every_stage(self):
        core = DPTC(noise=NoiseModel.paper_default())
        a, b = operands(1, (4, 6, 12), (4, 12, 6))
        times = profile_stages(core, a, b, seed=0, repeats=1)
        assert set(times) == {"sample", "encode", "compute", "detect", "total"}
        assert all(value >= 0.0 for value in times.values())

    def test_ideal_core_degrades_to_compute_detect_profile(self):
        # An ideal (noiseless) engine has no SAMPLE/ENCODE stages; the
        # profile degrades instead of raising, so `repro hotpath-bench
        # --noise off` works.
        a, b = operands(2, (4, 6, 12), (4, 12, 6))
        times = profile_stages(DPTC(), a, b, seed=0, repeats=1)
        assert set(times) == {"compute", "detect", "total"}
        assert times["detect"] == 0.0
        assert times["compute"] >= 0.0 and times["total"] >= 0.0
