"""Tests for contraction-dimension sharding (K-axis slabs, Sec. IV).

The contract under test: each core executes a contiguous
``[..., m, d/N] x [..., d/N, n]`` slab through its own DPTC with its
own RNG stream, the :class:`DigitalAccumulator` sums the per-core
partial products in core order, and the *ideal* path stays
bit-identical to single-core ``np.matmul`` at every core count —
including non-divisible ``d % num_cores`` splits — because the
hardware's post-photodetection digital accumulation is exact.
"""

import numpy as np
import pytest

from repro.core import (
    DPTC,
    CalibratedDPTC,
    DigitalAccumulator,
    NoiseModel,
    ShardedDPTC,
)
from repro.core.noise import EncodingNoise, SystematicNoise


def operands(seed, a_shape, b_shape):
    rng = np.random.default_rng(seed)
    return rng.normal(size=a_shape), rng.normal(size=b_shape)


def contraction_engine(num_cores, noise=None, **kwargs):
    return ShardedDPTC(
        num_cores=num_cores, shard_axis="contraction", noise=noise, **kwargs
    )


class TestDigitalAccumulator:
    def test_sums_in_core_order(self):
        partials = [np.full((2, 2), float(i)) for i in range(4)]
        out = DigitalAccumulator.accumulate(partials)
        assert np.array_equal(out, np.full((2, 2), 6.0))

    def test_single_partial_is_copied(self):
        partial = np.ones((2, 3))
        out = DigitalAccumulator.accumulate([partial])
        assert np.array_equal(out, partial)
        out += 1.0  # the accumulator owns its buffer
        assert np.array_equal(partial, np.ones((2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DigitalAccumulator.accumulate([])


#: Shape cases: (a_shape, b_shape).  d values chosen so the sweep hits
#: divisible and non-divisible splits at every core count.
SHAPE_CASES = [
    ((8, 5, 24), (8, 24, 4)),  # d divisible by 1/2/4/8
    ((7, 5, 25), (7, 25, 4)),  # d=25: non-divisible at every multi-core count
    ((3, 5, 6), (3, 6, 4)),  # num_cores can exceed d (cores idle)
    ((6, 5, 25), (25, 4)),  # broadcast 2-D weight
    ((2, 3, 5, 23), (2, 3, 23, 4)),  # nested batch axes, prime d
    ((5, 25), (25, 4)),  # no batch axes at all
    ((1, 5, 13), (1, 13, 4)),  # size-1 leading axis
]


class TestIdealEquivalence:
    @pytest.mark.parametrize("a_shape,b_shape", SHAPE_CASES)
    @pytest.mark.parametrize("num_cores", [1, 2, 4, 8])
    def test_bit_exact_with_numpy(self, num_cores, a_shape, b_shape):
        a, b = operands(0, a_shape, b_shape)
        engine = contraction_engine(num_cores)
        assert np.array_equal(engine.matmul(a, b), np.matmul(a, b))

    @pytest.mark.parametrize("num_cores", [2, 3, 4, 8])
    def test_bit_exact_with_single_core_engine(self, num_cores):
        a, b = operands(1, (9, 6, 25), (9, 25, 5))
        single = DPTC(noise=NoiseModel.ideal())
        engine = contraction_engine(num_cores)
        assert np.array_equal(engine.matmul(a, b), single.matmul(a, b))

    def test_zero_size_batch_axis(self):
        """An empty batch stack returns an empty result, like DPTC."""
        a = np.zeros((0, 3, 8))
        b = np.zeros((0, 8, 2))
        for noise in (NoiseModel.ideal(), NoiseModel.paper_default()):
            out = contraction_engine(4, noise=noise).matmul(a, b)
            assert out.shape == (0, 3, 2)

    def test_sequential_matches_parallel(self):
        a, b = operands(2, (6, 4, 25), (6, 25, 4))
        parallel = contraction_engine(3, parallel=True)
        sequential = contraction_engine(3, parallel=False)
        assert np.array_equal(parallel.matmul(a, b), sequential.matmul(a, b))
        parallel.close()


class TestDegenerateModes:
    def test_single_core_is_plain_batched_engine_ideal(self):
        a, b = operands(3, (5, 4, 12), (5, 12, 4))
        assert np.array_equal(
            contraction_engine(1).matmul(a, b), np.matmul(a, b)
        )

    def test_single_core_matches_batch_axis_noisy(self):
        """num_cores=1 contraction == num_cores=1 batch == one DPTC:
        identical stream discipline, bit-equal noisy output."""
        a, b = operands(4, (5, 4, 12), (5, 12, 4))
        noise = NoiseModel.paper_default()
        k_out = contraction_engine(1, noise=noise).matmul(
            a, b, rng=np.random.default_rng(11)
        )
        b_out = ShardedDPTC(num_cores=1, shard_axis="batch", noise=noise).matmul(
            a, b, rng=np.random.default_rng(11)
        )
        single = DPTC(noise=noise).matmul(
            a, b, rng=np.random.default_rng(11).spawn(1)[0]
        )
        assert np.array_equal(k_out, b_out)
        assert np.array_equal(k_out, single)

    def test_single_element_contraction_runs_on_core0(self):
        """d=1 cannot be split: one slab on core 0, any core count."""
        a, b = operands(5, (4, 3, 1), (4, 1, 2))
        noise = NoiseModel.paper_default()
        out_multi = contraction_engine(4, noise=noise).matmul(
            a, b, rng=np.random.default_rng(3)
        )
        out_single = contraction_engine(1, noise=noise).matmul(
            a, b, rng=np.random.default_rng(3)
        )
        assert np.array_equal(out_multi, out_single)


class TestNoisyContraction:
    @pytest.mark.parametrize("num_cores", [2, 4, 8])
    def test_fixed_seed_reproducible(self, num_cores):
        a, b = operands(6, (7, 5, 25), (7, 25, 5))
        engine = contraction_engine(num_cores, noise=NoiseModel.paper_default())
        first = engine.matmul(a, b, rng=np.random.default_rng(11))
        second = engine.matmul(a, b, rng=np.random.default_rng(11))
        assert np.array_equal(first, second)

    def test_partials_actually_split_the_contraction(self):
        """Noisy sharded output differs from single-core noisy output
        (different per-slab normalisation and streams) but both stay
        within the noise envelope of the exact product."""
        a, b = operands(7, (6, 5, 24), (6, 24, 5))
        noise = NoiseModel.paper_default()
        sharded = contraction_engine(4, noise=noise).matmul(
            a, b, rng=np.random.default_rng(2)
        )
        single = DPTC(noise=noise).matmul(a, b, rng=np.random.default_rng(2))
        assert not np.allclose(sharded, single)

    def test_noise_statistics_match_single_core(self):
        model = NoiseModel(
            encoding=EncodingNoise(0.03, 2.0),
            systematic=SystematicNoise(0.05),
            include_dispersion=False,
        )
        a, b = operands(8, (8, 6, 24), (8, 24, 6))
        exact = np.matmul(a, b)
        scale = np.linalg.norm(exact)

        def mean_error(engine):
            draws = [
                np.linalg.norm(
                    engine.matmul(a, b, rng=np.random.default_rng(50 + s)) - exact
                )
                / scale
                for s in range(25)
            ]
            return np.mean(draws)

        single = mean_error(DPTC(noise=model))
        sharded = mean_error(contraction_engine(4, noise=model))
        assert sharded == pytest.approx(single, rel=0.3)

    def test_broadcast_weight_slab_shared_per_core(self):
        """A 2-D weight splits along K like the activations do."""
        a, b = operands(9, (6, 5, 25), (25, 4))
        engine = contraction_engine(4, noise=NoiseModel.paper_default())
        out = engine.matmul(a, b, rng=np.random.default_rng(8))
        assert out.shape == (6, 5, 4)
        exact = a @ b
        assert np.linalg.norm(out - exact) / np.linalg.norm(exact) < 0.5

    def test_unseeded_noisy_call_runs(self):
        a, b = operands(10, (4, 5, 12), (4, 12, 5))
        engine = contraction_engine(2, noise=NoiseModel.paper_default())
        out = engine.matmul(a, b)
        assert out.shape == (4, 5, 5)
        assert not np.allclose(out, np.matmul(a, b))


class TestPerCoreState:
    def test_calibrated_cores(self):
        """Per-core calibration survives the K split: on the
        deterministic dispersion-only path the calibrated sharded
        engine recovers the exact product slab by slab."""
        noise = NoiseModel(
            encoding=EncodingNoise(0.0, 0.0),
            systematic=SystematicNoise(0.0),
            include_dispersion=True,
        )
        a, b = operands(11, (6, 5, 24), (6, 24, 5))
        engine = contraction_engine(3, noise=noise, core_cls=CalibratedDPTC)
        assert all(isinstance(core, CalibratedDPTC) for core in engine.cores)
        exact = np.matmul(a, b)
        assert np.allclose(engine.matmul(a, b), exact, rtol=1e-9, atol=1e-9)

    def test_close_is_idempotent_and_pool_recreated(self):
        engine = contraction_engine(2, noise=NoiseModel.paper_default())
        a, b = operands(12, (4, 3, 12), (4, 12, 3))
        first = engine.matmul(a, b, rng=np.random.default_rng(1))
        engine.close()
        engine.close()
        again = engine.matmul(a, b, rng=np.random.default_rng(1))
        assert np.array_equal(first, again)
        engine.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedDPTC(num_cores=2, shard_axis="tile")
        with pytest.raises(ValueError):
            contraction_engine(2).matmul(np.ones(12), np.ones((12, 4)))
