"""Equivalence suite for the batched DPTC execution engine.

The vectorised whole-batch engine (:meth:`DPTC.matmul`) is validated
against the preserved per-matrix reference loop
(:meth:`DPTC.matmul_reference`) three ways:

* the ideal batched path is bit-exact with :func:`np.matmul`;
* the noisy batched path matches the reference loop *exactly* under a
  shared pre-sampled noise draw (the sampling order is preserved);
* with independent per-matrix sampling — the original engine's RNG
  discipline — the two paths match *distributionally* (mean/std of the
  relative error over seeds).

Mixed-rank broadcasting (2-D weight against stacked activations) must
follow numpy semantics throughout.
"""

import numpy as np
import pytest

from repro.core import DPTC, DPTCGeometry, NoiseModel
from repro.core.noise import EncodingNoise, SystematicNoise


@pytest.fixture
def ideal():
    return DPTC(noise=NoiseModel.ideal())


@pytest.fixture
def noisy():
    return DPTC(noise=NoiseModel.paper_default())


def random_operands(rng, a_shape, b_shape):
    return rng.normal(size=a_shape), rng.normal(size=b_shape)


BATCH_SHAPE_CASES = [
    ((4, 6), (6, 3)),  # plain 2-D
    ((5, 4, 6), (5, 6, 3)),  # matched 3-D batch
    ((5, 4, 6), (6, 3)),  # 3-D activations x 2-D weight
    ((4, 6), (5, 6, 3)),  # 2-D x 3-D
    ((2, 8, 5, 6), (2, 8, 6, 5)),  # [batch, heads, m, d] attention stack
    ((1, 4, 6), (5, 6, 3)),  # size-1 batch broadcast
    ((2, 1, 4, 6), (3, 6, 3)),  # nested broadcast
]


class TestIdealBatched:
    @pytest.mark.parametrize("a_shape,b_shape", BATCH_SHAPE_CASES)
    def test_bit_exact_with_numpy(self, ideal, a_shape, b_shape):
        a, b = random_operands(np.random.default_rng(0), a_shape, b_shape)
        out = ideal.matmul(a, b)
        assert out.shape == np.matmul(a, b).shape
        assert np.array_equal(out, np.matmul(a, b))

    @pytest.mark.parametrize("a_shape,b_shape", BATCH_SHAPE_CASES)
    def test_reference_loop_matches_numpy(self, ideal, a_shape, b_shape):
        a, b = random_operands(np.random.default_rng(1), a_shape, b_shape)
        assert np.allclose(ideal.matmul_reference(a, b), np.matmul(a, b))


class TestNoisyBatchedExactEquivalence:
    """Batched engine == reference loop under one shared noise draw."""

    @pytest.mark.parametrize("a_shape,b_shape", BATCH_SHAPE_CASES)
    def test_shared_draw_is_exact(self, noisy, a_shape, b_shape):
        rng = np.random.default_rng(2)
        a, b = random_operands(rng, a_shape, b_shape)
        draw = noisy.sample_noise(a.shape, b.shape, np.random.default_rng(3))
        fast = noisy.matmul(a, b, draw=draw)
        loop = noisy.matmul_reference(a, b, draw=draw)
        assert fast.shape == loop.shape
        assert np.allclose(fast, loop, rtol=1e-12, atol=1e-12)

    def test_shared_seed_is_exact(self, noisy):
        """Same seeded generator -> identical RNG stream -> same result."""
        rng = np.random.default_rng(4)
        a, b = random_operands(rng, (6, 5, 12), (6, 12, 4))
        fast = noisy.matmul(a, b, rng=np.random.default_rng(7))
        loop = noisy.matmul_reference(
            a, b, draw=noisy.sample_noise(a.shape, b.shape, np.random.default_rng(7))
        )
        assert np.allclose(fast, loop, rtol=1e-12, atol=1e-12)

    def test_two_dim_stream_matches_reference(self, noisy):
        """For 2-D operands the batched engine consumes the RNG exactly
        like the per-matrix path (the seed's single-matrix behaviour)."""
        rng = np.random.default_rng(5)
        a, b = random_operands(rng, (8, 24), (24, 6))
        fast = noisy.matmul(a, b, rng=np.random.default_rng(11))
        loop = noisy.matmul_reference(a, b, rng=np.random.default_rng(11))
        assert np.allclose(fast, loop, rtol=1e-12, atol=1e-12)


class TestNoisyBatchedDistributionalEquivalence:
    """Independent sampling orders agree in error statistics."""

    def test_error_mean_std_over_seeds(self, noisy):
        rng = np.random.default_rng(6)
        a, b = random_operands(rng, (8, 6, 12), (8, 12, 6))
        exact = np.matmul(a, b)
        scale = np.linalg.norm(exact)

        def errors(method):
            out = []
            for seed in range(25):
                result = method(a, b, rng=np.random.default_rng(100 + seed))
                out.append(np.linalg.norm(result - exact) / scale)
            return np.asarray(out)

        fast = errors(noisy.matmul)
        loop = errors(noisy.matmul_reference)
        assert fast.mean() == pytest.approx(loop.mean(), rel=0.25)
        assert fast.std() == pytest.approx(loop.std(), abs=0.5 * loop.std() + 1e-4)

    def test_unbiased_over_batch(self):
        model = NoiseModel(
            encoding=EncodingNoise(0.03, 2.0),
            systematic=SystematicNoise(0.05),
            include_dispersion=False,
        )
        dptc = DPTC(noise=model)
        rng = np.random.default_rng(8)
        a = rng.uniform(-1, 1, size=(4, 6, 12))
        b = rng.uniform(-1, 1, size=(4, 12, 6))
        acc = np.zeros((4, 6, 6))
        n = 400
        for _ in range(n):
            acc += dptc.matmul(a, b, rng=rng)
        assert np.allclose(acc / n, np.matmul(a, b), atol=0.06)


class TestBroadcastSemantics:
    def test_weight_encoded_once_per_batch(self, noisy):
        """A broadcast 2-D operand carries one noise realisation: the
        draw arrays live at the pre-broadcast shape."""
        a = np.random.default_rng(9).normal(size=(3, 4, 12))
        w = np.random.default_rng(10).normal(size=(12, 5))
        draw = noisy.sample_noise(a.shape, w.shape, np.random.default_rng(0))
        assert draw.magnitude_a.shape == (3, 4, 12)
        assert draw.magnitude_b.shape == (12, 5)
        assert draw.systematic.shape == (3, 4, 5)

    def test_vector_operands_rejected(self, noisy, ideal):
        for dptc in (noisy, ideal):
            with pytest.raises(ValueError):
                dptc.matmul(np.ones(12), np.ones((12, 4)))
            with pytest.raises(ValueError):
                dptc.matmul(np.ones((4, 12)), np.ones(12))

    def test_incompatible_batch_rejected(self, noisy, ideal):
        for dptc in (noisy, ideal):
            with pytest.raises(ValueError):
                dptc.matmul(np.ones((2, 4, 6)), np.ones((3, 6, 5)))

    def test_incompatible_contraction_rejected(self, noisy):
        with pytest.raises(ValueError):
            noisy.matmul(np.ones((2, 4, 6)), np.ones((2, 5, 3)))


class TestZeroSliceMasking:
    def test_zero_slices_stay_zero(self, noisy):
        rng = np.random.default_rng(12)
        a = rng.normal(size=(4, 5, 12))
        b = rng.normal(size=(4, 12, 5))
        a[1] = 0.0
        b[3] = 0.0
        out = noisy.matmul(a, b, rng=np.random.default_rng(0))
        assert np.array_equal(out[1], np.zeros((5, 5)))
        assert np.array_equal(out[3], np.zeros((5, 5)))
        assert not np.allclose(out[0], 0.0)

    def test_zero_operand_consumes_no_rng(self, noisy):
        """An all-zero operand short-circuits before sampling, like the
        reference loop, so a shared generator stays stream-aligned."""
        rng_fast = np.random.default_rng(21)
        rng_loop = np.random.default_rng(21)
        b = np.ones((12, 4))
        assert np.array_equal(
            noisy.matmul(np.zeros((4, 12)), b, rng=rng_fast), np.zeros((4, 4))
        )
        assert np.array_equal(
            noisy.matmul_reference(np.zeros((4, 12)), b, rng=rng_loop),
            np.zeros((4, 4)),
        )
        a2 = np.random.default_rng(22).normal(size=(4, 12))
        assert np.allclose(
            noisy.matmul(a2, b, rng=rng_fast),
            noisy.matmul_reference(a2, b, rng=rng_loop),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_zero_slices_match_reference(self, noisy):
        rng = np.random.default_rng(13)
        a = rng.normal(size=(3, 4, 12))
        b = rng.normal(size=(3, 12, 4))
        a[0] = 0.0
        draw = noisy.sample_noise(a.shape, b.shape, np.random.default_rng(1))
        assert np.allclose(
            noisy.matmul(a, b, draw=draw),
            noisy.matmul_reference(a, b, draw=draw),
            rtol=1e-12,
            atol=1e-12,
        )


class TestGeometryIndependence:
    def test_wavelength_profile_follows_contraction(self):
        """Dispersion tracks the contraction dim identically in batched
        and reference paths (cyclic channel assignment)."""
        noise = NoiseModel(
            encoding=EncodingNoise(0.0, 0.0),
            systematic=SystematicNoise(0.0),
            include_dispersion=True,
        )
        dptc = DPTC(DPTCGeometry(12, 12, 8), noise=noise)
        rng = np.random.default_rng(14)
        a = rng.normal(size=(3, 6, 20))
        b = rng.normal(size=(3, 20, 6))
        # Deterministic model: no RNG consumed, exact agreement expected.
        assert np.allclose(
            dptc.matmul(a, b),
            dptc.matmul_reference(a, b),
            rtol=1e-12,
            atol=1e-12,
        )
