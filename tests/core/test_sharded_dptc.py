"""Tests for multi-core sharded DPTC execution.

Edge cases the ISSUE names explicitly: ``num_cores`` greater than the
batch size, non-divisible shard splits, per-core RNG reproducibility
under a fixed seed, and exact ideal-path equivalence with the
single-core batched engine.
"""

import numpy as np
import pytest

from repro.core import (
    DPTC,
    CalibratedDPTC,
    NoiseModel,
    ShardedDPTC,
    shard_bounds,
)
from repro.core.noise import EncodingNoise, SystematicNoise


def operands(seed, a_shape, b_shape):
    rng = np.random.default_rng(seed)
    return rng.normal(size=a_shape), rng.normal(size=b_shape)


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_non_divisible_front_loads_remainder(self):
        assert shard_bounds(7, 4) == [(0, 2), (2, 4), (4, 6), (6, 7)]

    def test_more_shards_than_items(self):
        bounds = shard_bounds(3, 8)
        assert bounds[:3] == [(0, 1), (1, 2), (2, 3)]
        assert all(start == stop for start, stop in bounds[3:])

    def test_covers_batch_exactly(self):
        for batch in (1, 5, 16, 33):
            for shards in (1, 2, 7, 64):
                bounds = shard_bounds(batch, shards)
                assert len(bounds) == shards
                assert bounds[0][0] == 0 and bounds[-1][1] == batch
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_bounds(4, 0)
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)


SHAPE_CASES = [
    ((8, 5, 12), (8, 12, 4)),  # evenly divisible batch
    ((7, 5, 12), (7, 12, 4)),  # non-divisible shards
    ((3, 5, 12), (3, 12, 4)),  # num_cores > batch (cores idle)
    ((6, 5, 12), (12, 4)),  # broadcast 2-D weight
    ((2, 3, 5, 12), (2, 3, 12, 4)),  # nested batch axes
    ((5, 12), (12, 4)),  # no batch axes at all
    ((1, 5, 12), (1, 12, 4)),  # size-1 leading axis
]


class TestIdealEquivalence:
    @pytest.mark.parametrize("a_shape,b_shape", SHAPE_CASES)
    @pytest.mark.parametrize("num_cores", [1, 2, 4, 8])
    def test_bit_exact_with_single_core(self, num_cores, a_shape, b_shape):
        a, b = operands(0, a_shape, b_shape)
        single = DPTC(noise=NoiseModel.ideal())
        sharded = ShardedDPTC(num_cores=num_cores)
        assert np.array_equal(sharded.matmul(a, b), single.matmul(a, b))

    def test_zero_size_batch_axis(self):
        """An empty batch stack returns an empty result, like DPTC."""
        a = np.zeros((0, 3, 4))
        b = np.zeros((0, 4, 2))
        for noise in (NoiseModel.ideal(), NoiseModel.paper_default()):
            out = ShardedDPTC(num_cores=2, noise=noise).matmul(a, b)
            assert out.shape == (0, 3, 2)

    def test_bit_exact_with_numpy(self):
        a, b = operands(1, (9, 6, 16), (9, 16, 5))
        assert np.array_equal(
            ShardedDPTC(num_cores=4).matmul(a, b), np.matmul(a, b)
        )

    def test_sequential_matches_parallel(self):
        a, b = operands(2, (6, 4, 12), (6, 12, 4))
        parallel = ShardedDPTC(num_cores=3, parallel=True)
        sequential = ShardedDPTC(num_cores=3, parallel=False)
        assert np.array_equal(parallel.matmul(a, b), sequential.matmul(a, b))
        parallel.close()


class TestNoisySharding:
    @pytest.mark.parametrize("num_cores", [2, 4, 8])
    def test_fixed_seed_reproducible(self, num_cores):
        """Per-core streams spawn deterministically from the seed."""
        a, b = operands(3, (7, 5, 12), (7, 12, 5))
        engine = ShardedDPTC(num_cores=num_cores, noise=NoiseModel.paper_default())
        first = engine.matmul(a, b, rng=np.random.default_rng(11))
        second = engine.matmul(a, b, rng=np.random.default_rng(11))
        assert np.array_equal(first, second)

    def test_per_core_streams_are_independent(self):
        """Identical shard inputs on different cores draw different noise."""
        rng = np.random.default_rng(4)
        slice_a = rng.normal(size=(5, 12))
        slice_b = rng.normal(size=(12, 5))
        a = np.stack([slice_a, slice_a])
        b = np.stack([slice_b, slice_b])
        engine = ShardedDPTC(num_cores=2, noise=NoiseModel.paper_default())
        out = engine.matmul(a, b, rng=np.random.default_rng(5))
        assert not np.allclose(out[0], out[1])

    def test_core_streams_stable_under_batch_size(self):
        """Core i's draws depend only on the seed and the core index:
        dropping the tail of the batch (idling the last cores) must not
        change the leading shards' results."""
        a, b = operands(6, (8, 5, 12), (8, 12, 5))
        engine = ShardedDPTC(num_cores=4, noise=NoiseModel.paper_default())
        full = engine.matmul(a, b, rng=np.random.default_rng(9))
        # 6 items over 4 cores: shards [0:2], [2:4], [4:5], [5:6].
        short = engine.matmul(a[:6], b[:6], rng=np.random.default_rng(9))
        assert np.array_equal(short[:2], full[:2])

    def test_core_streams_stable_under_num_cores(self):
        """Per-core stream independence is prefix-stable in num_cores:
        ``rng.spawn`` children are indexed by core, so growing the grid
        beyond the occupied cores reproduces the same results bit-for-
        bit (the test PR 2 deferred)."""
        a, b = operands(11, (3, 5, 12), (3, 12, 5))  # 3 items: 1 per core
        small = ShardedDPTC(num_cores=3, noise=NoiseModel.paper_default())
        large = ShardedDPTC(num_cores=8, noise=NoiseModel.paper_default())
        assert np.array_equal(
            small.matmul(a, b, rng=np.random.default_rng(21)),
            large.matmul(a, b, rng=np.random.default_rng(21)),
        )

    def test_different_num_cores_draw_independent_streams(self):
        """Changing the split re-shards work onto *different* per-core
        streams: with 2 vs 4 occupied cores the same inputs see
        different noise (per-core independence, not a shared stream)."""
        a, b = operands(12, (4, 5, 12), (4, 12, 5))
        two = ShardedDPTC(num_cores=2, noise=NoiseModel.paper_default())
        four = ShardedDPTC(num_cores=4, noise=NoiseModel.paper_default())
        out2 = two.matmul(a, b, rng=np.random.default_rng(33))
        out4 = four.matmul(a, b, rng=np.random.default_rng(33))
        # Core 0's shard shrinks from 2 items to 1; the shared first
        # item sees the same stream but a different draw shape, and the
        # remaining items move to fresh cores: outputs must differ.
        assert not np.allclose(out2[2:], out4[2:])

    def test_noise_statistics_match_single_core(self):
        model = NoiseModel(
            encoding=EncodingNoise(0.03, 2.0),
            systematic=SystematicNoise(0.05),
            include_dispersion=False,
        )
        a, b = operands(7, (8, 6, 12), (8, 12, 6))
        exact = np.matmul(a, b)
        scale = np.linalg.norm(exact)

        def mean_error(engine):
            draws = [
                np.linalg.norm(
                    engine.matmul(a, b, rng=np.random.default_rng(50 + s)) - exact
                )
                / scale
                for s in range(25)
            ]
            return np.mean(draws)

        single = mean_error(DPTC(noise=model))
        sharded = mean_error(ShardedDPTC(num_cores=4, noise=model))
        assert sharded == pytest.approx(single, rel=0.3)

    def test_unseeded_noisy_call_runs(self):
        a, b = operands(8, (4, 5, 12), (4, 12, 5))
        engine = ShardedDPTC(num_cores=2, noise=NoiseModel.paper_default())
        out = engine.matmul(a, b)
        assert out.shape == (4, 5, 5)
        assert not np.allclose(out, np.matmul(a, b))


class TestPerCoreState:
    def test_cores_are_distinct_instances(self):
        engine = ShardedDPTC(num_cores=4)
        assert len({id(core) for core in engine.cores}) == 4
        assert len({id(core._channel_cache) for core in engine.cores}) == 4

    def test_calibrated_cores(self):
        """Per-core calibration state: sharded CalibratedDPTC matches the
        single calibrated core exactly on the deterministic dispersion
        path (no stochastic noise, no RNG consumed)."""
        noise = NoiseModel(
            encoding=EncodingNoise(0.0, 0.0),
            systematic=SystematicNoise(0.0),
            include_dispersion=True,
        )
        a, b = operands(9, (6, 5, 12), (6, 12, 5))
        single = CalibratedDPTC(noise=noise)
        sharded = ShardedDPTC(num_cores=3, noise=noise, core_cls=CalibratedDPTC)
        assert all(isinstance(core, CalibratedDPTC) for core in sharded.cores)
        assert np.allclose(
            sharded.matmul(a, b), single.matmul(a, b), rtol=1e-12, atol=1e-12
        )

    def test_tile_matmul_delegates_to_core0(self):
        engine = ShardedDPTC(num_cores=2)
        geometry = engine.geometry
        a = np.ones((geometry.n_h, geometry.n_lambda))
        b = np.ones((geometry.n_lambda, geometry.n_v))
        assert np.array_equal(engine.tile_matmul(a, b), a @ b)

    def test_close_is_idempotent(self):
        engine = ShardedDPTC(num_cores=2)
        a, b = operands(10, (4, 3, 12), (4, 12, 3))
        engine.matmul(a, b)
        engine.close()
        engine.close()
        # Pool is recreated lazily after close.
        assert np.array_equal(engine.matmul(a, b), np.matmul(a, b))

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedDPTC(num_cores=0)
        with pytest.raises(ValueError):
            ShardedDPTC(num_cores=2).matmul(np.ones(12), np.ones((12, 4)))
        with pytest.raises(ValueError):
            ShardedDPTC(num_cores=2).matmul(
                np.ones((2, 4, 6)), np.ones((3, 6, 5))
            )
