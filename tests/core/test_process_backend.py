"""Tests for the process-pool shard backend.

The contract: ``backend="process"`` executes shards on a
``ProcessPoolExecutor`` whose workers rebuild their per-core DPTC
replicas deterministically (constructor args pickled once per worker
via the pool initializer), and every job carries the core's pre-spawned
RNG stream — so for equal seeds the process backend is *bit-equal* to
the thread backend and to sequential execution, independent of which
worker runs which core.  ``close()`` releases both pool types and
detaches the garbage-collection finalizer.

Process pools are slow to spin up (spawn start method), so the
workloads here are tiny and engines are reused where possible.
"""

import gc

import numpy as np
import pytest

from repro.core import CalibratedDPTC, NoiseModel, ShardedDPTC


def operands(seed, a_shape, b_shape):
    rng = np.random.default_rng(seed)
    return rng.normal(size=a_shape), rng.normal(size=b_shape)


@pytest.fixture(scope="module", params=["batch", "contraction"])
def process_engine(request):
    """One noisy 2-core process-backed engine per shard axis."""
    engine = ShardedDPTC(
        num_cores=2,
        noise=NoiseModel.paper_default(),
        shard_axis=request.param,
        backend="process",
    )
    yield engine
    engine.close()


class TestBitEquality:
    def test_process_matches_thread_and_sequential(self, process_engine):
        a, b = operands(0, (4, 5, 13), (4, 13, 5))
        thread = ShardedDPTC(
            num_cores=2,
            noise=NoiseModel.paper_default(),
            shard_axis=process_engine.shard_axis,
        )
        sequential = ShardedDPTC(
            num_cores=2,
            noise=NoiseModel.paper_default(),
            shard_axis=process_engine.shard_axis,
            parallel=False,
        )
        out_p = process_engine.matmul(a, b, rng=np.random.default_rng(7))
        out_t = thread.matmul(a, b, rng=np.random.default_rng(7))
        out_s = sequential.matmul(a, b, rng=np.random.default_rng(7))
        thread.close()
        assert np.array_equal(out_p, out_t)
        assert np.array_equal(out_p, out_s)

    def test_repeated_runs_reproducible(self, process_engine):
        a, b = operands(1, (4, 5, 13), (4, 13, 5))
        first = process_engine.matmul(a, b, rng=np.random.default_rng(3))
        second = process_engine.matmul(a, b, rng=np.random.default_rng(3))
        assert np.array_equal(first, second)

    def test_ideal_path_bit_exact(self, process_engine):
        """Ideal noise never reaches the pool but the engine front-end
        must stay exact regardless of backend."""
        a, b = operands(2, (4, 5, 13), (4, 13, 5))
        engine = ShardedDPTC(
            num_cores=2, shard_axis=process_engine.shard_axis, backend="process"
        )
        assert np.array_equal(engine.matmul(a, b), np.matmul(a, b))
        engine.close()


class TestWorkerStateReconstruction:
    def test_calibrated_core_cls_rebuilt_in_workers(self):
        """core_cls ships to the workers: a CalibratedDPTC grid run on
        the process backend matches the thread backend bit-for-bit."""
        noise = NoiseModel.paper_default()
        a, b = operands(3, (4, 5, 13), (4, 13, 5))
        process = ShardedDPTC(
            num_cores=2, noise=noise, core_cls=CalibratedDPTC, backend="process"
        )
        thread = ShardedDPTC(
            num_cores=2, noise=noise, core_cls=CalibratedDPTC, backend="thread"
        )
        out_p = process.matmul(a, b, rng=np.random.default_rng(9))
        out_t = thread.matmul(a, b, rng=np.random.default_rng(9))
        process.close()
        thread.close()
        assert np.array_equal(out_p, out_t)


class TestPoolLifecycle:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_close_releases_pool_and_finalizer(self, backend):
        engine = ShardedDPTC(
            num_cores=2, noise=NoiseModel.paper_default(), backend=backend
        )
        a, b = operands(4, (4, 3, 12), (4, 12, 3))
        engine.matmul(a, b, rng=np.random.default_rng(0))
        assert engine._pool is not None
        assert engine._finalizer is not None and engine._finalizer.alive
        finalizer = engine._finalizer
        engine.close()
        assert engine._pool is None
        assert engine._finalizer is None
        assert not finalizer.alive  # detached: nothing left to leak
        engine.close()  # idempotent

    def test_finalizer_shuts_down_dropped_engine(self):
        """An engine dropped without close() releases its pool via the
        weakref finalizer (no leaked executors)."""
        engine = ShardedDPTC(num_cores=2, noise=NoiseModel.paper_default())
        a, b = operands(5, (4, 3, 12), (4, 12, 3))
        engine.matmul(a, b, rng=np.random.default_rng(0))
        pool = engine._pool
        finalizer = engine._finalizer
        assert finalizer.alive
        del engine
        gc.collect()
        assert not finalizer.alive  # finalizer ran at collection
        assert pool._shutdown

    def test_pool_recreated_after_close(self):
        engine = ShardedDPTC(
            num_cores=2, noise=NoiseModel.paper_default(), backend="thread"
        )
        a, b = operands(6, (4, 3, 12), (4, 12, 3))
        first = engine.matmul(a, b, rng=np.random.default_rng(1))
        engine.close()
        again = engine.matmul(a, b, rng=np.random.default_rng(1))
        assert np.array_equal(first, again)
        engine.close()

    def test_backend_validation(self):
        with pytest.raises(ValueError):
            ShardedDPTC(num_cores=2, backend="greenlet")
