"""Tests for the DDot dispersion profile (Fig. 3 reproduction)."""

import numpy as np
import pytest

from repro.core import DispersionProfile, dispersion_profile
from repro.optics import WDMGrid


class TestIdealProfile:
    def test_design_point(self):
        profile = DispersionProfile.ideal(12)
        assert np.allclose(profile.kappa, 0.5)
        assert np.allclose(profile.phase, -np.pi / 2)

    def test_factors_at_design_point(self):
        profile = DispersionProfile.ideal(8)
        assert np.allclose(profile.multiplicative_factor, 1.0)
        assert np.allclose(profile.additive_factor, 0.0)

    def test_deviations_zero(self):
        profile = DispersionProfile.ideal(4)
        assert profile.max_kappa_deviation() == 0.0
        assert profile.max_phase_deviation_deg() == 0.0


class TestFig3Reproduction:
    """The paper's dispersion numbers for 25 DWDM channels."""

    @pytest.fixture
    def profile(self):
        return dispersion_profile(WDMGrid(25))

    def test_max_kappa_deviation(self, profile):
        assert profile.max_kappa_deviation() == pytest.approx(0.018, rel=0.1)

    def test_max_phase_deviation(self, profile):
        assert profile.max_phase_deviation_deg() == pytest.approx(0.28, abs=0.02)

    def test_multiplicative_factor_second_order_flat(self, profile):
        """The design point is a local optimum: the x*y gain stays within
        ~0.1 % even at the worst channel (the robustness argument)."""
        assert np.max(np.abs(profile.multiplicative_factor - 1.0)) < 1e-3

    def test_additive_factor_small(self, profile):
        assert np.max(np.abs(profile.additive_factor)) < 0.02


class TestScalingWithChannels:
    def test_more_channels_more_dispersion(self):
        few = dispersion_profile(WDMGrid(5))
        many = dispersion_profile(WDMGrid(25))
        assert many.max_kappa_deviation() > few.max_kappa_deviation()
        assert many.max_phase_deviation_deg() > few.max_phase_deviation_deg()

    def test_112_channels_still_usable(self):
        """Wavelength scaling claim: the full FSR-limited comb keeps the
        multiplicative error below ~2 %."""
        profile = dispersion_profile(WDMGrid(112))
        assert np.max(np.abs(profile.multiplicative_factor - 1.0)) < 0.02


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DispersionProfile(kappa=np.zeros(3), phase=np.zeros(4))

    def test_n_channels(self):
        assert dispersion_profile(WDMGrid(7)).n_channels == 7
