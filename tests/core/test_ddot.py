"""Tests for the analytic DDot dot-product engine."""

import numpy as np
import pytest

from repro.core import DDot, NoiseModel, analytic_output
from repro.core.noise import EncodingNoise, SystematicNoise


@pytest.fixture
def ideal():
    return DDot(12, NoiseModel.ideal())


class TestIdealDDot:
    def test_exact_dot_product(self, ideal):
        rng = np.random.default_rng(0)
        x = rng.uniform(-5, 5, 12)
        y = rng.uniform(-5, 5, 12)
        assert ideal.dot(x, y) == pytest.approx(float(x @ y), rel=1e-12)

    def test_full_range_no_decomposition(self, ideal):
        """Signed operands and signed output in a single shot."""
        assert ideal.dot(np.array([-2.0, 3.0]), np.array([4.0, -1.0])) == pytest.approx(
            -11.0
        )

    def test_operands_beyond_unit_range_are_rescaled(self, ideal):
        """The beta normalisation makes any dynamic range encodable."""
        x = np.array([100.0, -50.0])
        y = np.array([0.001, 0.002])
        assert ideal.dot(x, y) == pytest.approx(float(x @ y), rel=1e-12)

    def test_zero_operand_returns_zero(self, ideal):
        assert ideal.dot(np.zeros(4), np.ones(4)) == 0.0

    def test_short_vectors_accepted(self, ideal):
        assert ideal.dot(np.array([1.0]), np.array([2.0])) == pytest.approx(2.0)

    def test_rejects_vector_longer_than_wavelengths(self, ideal):
        with pytest.raises(ValueError):
            ideal.dot(np.zeros(13), np.zeros(13))

    def test_rejects_shape_mismatch(self, ideal):
        with pytest.raises(ValueError):
            ideal.dot(np.zeros(3), np.zeros(4))

    def test_rejects_bad_wavelength_count(self):
        with pytest.raises(ValueError):
            DDot(0)


class TestAnalyticOutput:
    def test_design_point_is_exact_dot(self):
        x = np.array([0.5, -0.7])
        y = np.array([0.3, 0.9])
        kappa = np.full(2, 0.5)
        phase = np.full(2, -np.pi / 2)
        assert analytic_output(x, y, kappa, phase) == pytest.approx(float(x @ y))

    def test_additive_term_sign(self):
        """kappa > 1/2 weights x^2 negatively (Eq. 9 structure)."""
        x = np.array([1.0])
        y = np.array([0.0])
        out = analytic_output(x, y, np.array([0.6]), np.array([-np.pi / 2]))
        assert out == pytest.approx(-(2 * 0.6 - 1) * 0.5)

    def test_phase_error_reduces_product_gain(self):
        x = np.array([1.0])
        y = np.array([1.0])
        ideal_out = analytic_output(x, y, np.array([0.5]), np.array([-np.pi / 2]))
        drifted = analytic_output(
            x, y, np.array([0.5]), np.array([-np.pi / 2 + 0.3])
        )
        assert abs(drifted) < abs(ideal_out)


class TestNoisyDDot:
    def test_noise_perturbs_result(self):
        ddot = DDot(12, NoiseModel.paper_default())
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, 12)
        y = rng.uniform(-1, 1, 12)
        assert ddot.dot(x, y, rng) != pytest.approx(float(x @ y), abs=1e-9)

    def test_noise_unbiased(self):
        model = NoiseModel(
            encoding=EncodingNoise(0.03, 2.0),
            systematic=SystematicNoise(0.05),
            include_dispersion=False,
        )
        ddot = DDot(12, model)
        rng = np.random.default_rng(9)
        x = rng.uniform(0.3, 1.0, 12)
        y = rng.uniform(0.3, 1.0, 12)
        samples = [ddot.dot(x, y, rng) for _ in range(500)]
        assert np.mean(samples) == pytest.approx(float(x @ y), rel=0.02)

    def test_relative_error_band(self):
        """Paper Fig. 6: ~2-4 % relative error for length-12 dot products."""
        ddot = DDot(12, NoiseModel.paper_default())
        rng = np.random.default_rng(11)
        errors = []
        for _ in range(300):
            x = rng.uniform(-1, 1, 12)
            y = rng.uniform(-1, 1, 12)
            ideal_val = float(x @ y)
            if abs(ideal_val) < 0.5:
                continue
            errors.append(abs(ddot.dot(x, y, rng) - ideal_val) / abs(ideal_val))
        assert 0.01 < float(np.mean(errors)) < 0.10

    def test_seeded_reproducibility(self):
        ddot = DDot(8, NoiseModel.paper_default())
        x = np.linspace(-1, 1, 8)
        y = np.linspace(0.5, -0.5, 8)
        a = ddot.dot(x, y, np.random.default_rng(3))
        b = ddot.dot(x, y, np.random.default_rng(3))
        assert a == b

    def test_dispersion_only_model_deterministic(self):
        model = NoiseModel(
            encoding=EncodingNoise(0.0, 0.0),
            systematic=SystematicNoise(0.0),
            include_dispersion=True,
        )
        ddot = DDot(12, model)
        x = np.linspace(-1, 1, 12)
        y = np.linspace(1, -1, 12)
        assert ddot.dot(x, y) == ddot.dot(x, y)
        assert ddot.dot(x, y) == pytest.approx(float(x @ y), abs=0.05)
