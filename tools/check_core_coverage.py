#!/usr/bin/env python
"""Enforce line-coverage floors on the gated packages.

Reads a Cobertura-style ``coverage.xml`` (as written by ``pytest
--cov=repro --cov-report=xml``) and fails when the aggregate line
coverage of the files under a gated prefix drops below its floor.

The core engines are the trust anchors of the repo — every benchmark
gate and every model result flows through them — and the serving and
cluster subsystems are the request-facing layers on top, so all three
are gated in CI while the rest of the tree is only reported.  Lines that execute
inside process-pool *workers* (the ``backend="process"`` shard path)
are invisible to the parent-process collector; the floors account for
that.

Usage:
    python tools/check_core_coverage.py coverage.xml            # registered gates
    python tools/check_core_coverage.py coverage.xml --prefix repro/core/ --floor 85
    python tools/check_core_coverage.py coverage.xml \
        --gate repro/core/=85 --gate repro/serving/=85 --gate repro/cluster/=85
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ET

#: The gated packages and their floors; running the tool with no
#: --gate/--prefix arguments enforces exactly these (what CI does).
REGISTERED_GATES: list[tuple[str, float]] = [
    ("repro/core/", 85.0),
    ("repro/serving/", 85.0),
    ("repro/cluster/", 85.0),
    # The shared cache tier holds fleet-wide KV custody (refcounts,
    # holder counts, TTL); a miscount silently corrupts every replica,
    # so its file is gated tighter than its package.
    ("repro/cluster/store", 90.0),
    # The hot path reorders RNG-consuming stages across threads and
    # processes; an untested branch there is a silent bit-equality
    # break, so its file is gated tighter than its package.
    ("repro/core/hotpath", 90.0),
    # The tracing/telemetry substrate promises byte-determinism and a
    # zero-cost disabled path; an untested branch is a silent
    # determinism or overhead regression, so the package gates at 90.
    ("repro/obs/", 90.0),
]


def core_line_coverage(xml_path: str, prefix: str) -> tuple[int, int, dict]:
    """(covered, total, per-file) line counts for files under ``prefix``."""
    tree = ET.parse(xml_path)
    per_file: dict[str, tuple[int, int]] = {}
    for cls in tree.iter("class"):
        filename = (cls.get("filename") or "").replace("\\", "/")
        if prefix not in filename:
            continue
        covered = total = 0
        for line in cls.iter("line"):
            total += 1
            if int(line.get("hits", "0")) > 0:
                covered += 1
        if total:
            old_covered, old_total = per_file.get(filename, (0, 0))
            per_file[filename] = (old_covered + covered, old_total + total)
    covered = sum(c for c, _ in per_file.values())
    total = sum(t for _, t in per_file.values())
    return covered, total, per_file


def check_gate(xml_path: str, prefix: str, floor: float) -> int:
    """Print and gate one prefix; 0 ok, 1 below floor, 2 no files."""
    covered, total, per_file = core_line_coverage(xml_path, prefix)
    if total == 0:
        print(f"error: no files matching {prefix!r} in {xml_path}")
        return 2

    for filename in sorted(per_file):
        file_covered, file_total = per_file[filename]
        pct = 100.0 * file_covered / file_total
        print(f"  {filename:40s} {file_covered:4d}/{file_total:4d}  {pct:5.1f}%")
    pct = 100.0 * covered / total
    print(f"{prefix} line coverage: {covered}/{total} = {pct:.1f}% "
          f"(floor {floor:.1f}%)")
    if pct < floor:
        print(f"FAIL: {prefix} coverage below the floor")
        return 1
    print("OK")
    return 0


def parse_gate(spec: str) -> tuple[str, float]:
    """``prefix=floor`` -> (prefix, floor)."""
    prefix, sep, floor = spec.partition("=")
    if not sep or not prefix:
        raise argparse.ArgumentTypeError(
            f"gate must look like 'repro/serving/=85', got {spec!r}"
        )
    return prefix, float(floor)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="path to coverage.xml")
    parser.add_argument(
        "--prefix",
        default=None,
        help="path fragment selecting the gated files (with --floor, "
        "overrides the registered gates)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=None,
        help="minimum aggregate line coverage percent (default: 85)",
    )
    parser.add_argument(
        "--gate",
        action="append",
        type=parse_gate,
        metavar="PREFIX=FLOOR",
        help="gate multiple packages (repeatable, e.g. --gate repro/core/=85 "
        "--gate repro/serving/=85); overrides --prefix/--floor",
    )
    args = parser.parse_args(argv)

    if args.gate:
        gates = args.gate
    elif args.prefix is not None or args.floor is not None:
        gates = [
            (
                args.prefix if args.prefix is not None else "repro/core/",
                args.floor if args.floor is not None else 85.0,
            )
        ]
    else:
        gates = REGISTERED_GATES
    worst = 0
    for prefix, floor in gates:
        worst = max(worst, check_gate(args.report, prefix, floor))
    return worst


if __name__ == "__main__":
    sys.exit(main())
