"""LLM generation on a photonic accelerator: the Sec. VI-B analysis.

Run with::

    python examples/llm_decode_analysis.py

Walks the paper's discussion of large-language-model support:

1. prefill vs decode asymmetry (compute-bound vs memory-bound phases);
2. KV-cache growth with context length, against on-chip SRAM capacity;
3. batching as the utilization lever;
4. the recompute-vs-cache trade — photonic compute is fast enough that
   re-projecting K/V can beat caching when memory is the bottleneck.
"""

from repro.analysis import analyze_decode, batch_to_saturate, render_table
from repro.arch import lt_base, workload_latency
from repro.workloads import (
    gpt2_large,
    gpt2_medium,
    gpt2_small,
    kv_cache_bytes,
    kv_recompute_trace,
    prefill_trace,
)


def main() -> None:
    accelerator = lt_base(8)

    print("=== phase asymmetry (GPT-2-small, 512-token context) ===")
    model = gpt2_small()
    prefill = workload_latency(accelerator, prefill_trace(model, 512))
    decode = analyze_decode(accelerator, model, 512)
    print(f"prefill (512 tokens): {prefill * 1e6:8.1f} us  (compute-shaped GEMMs)")
    print(
        f"decode  (1 token)   : {decode.latency * 1e6:8.1f} us  "
        f"memory_bound={decode.memory_bound}, "
        f"compute util {100 * decode.compute_utilization:.0f} %"
    )

    print("\n=== KV cache vs on-chip SRAM ===")
    rows = []
    for context in (128, 512, 2048, 8192):
        rows.append(
            {
                "context": context,
                "kv_cache_mb": kv_cache_bytes(model, context, 8) / 1e6,
                "fits_in_2mb_sram": kv_cache_bytes(model, context, 8)
                <= accelerator.global_sram_bytes,
            }
        )
    print(render_table(rows))

    print("=== batching to feed the photonic cores ===")
    rows = []
    for config in (gpt2_small(), gpt2_medium(), gpt2_large()):
        for batch in (1, 16, 64):
            analysis = analyze_decode(accelerator, config, 512, batch)
            rows.append(
                {
                    "model": config.name,
                    "batch": batch,
                    "compute_util_pct": 100 * analysis.compute_utilization,
                    "tokens_per_s": batch / analysis.latency,
                }
            )
    print(render_table(rows))
    saturation = batch_to_saturate(accelerator, gpt2_small(), 512, max_batch=256)
    print(f"batch needed to leave the memory-bound regime: >= {saturation}")

    print("\n=== recompute vs cache ===")
    recompute = workload_latency(accelerator, kv_recompute_trace(model, 512))
    print(
        f"re-projecting 512 tokens of K/V optically: {recompute * 1e6:.1f} us, "
        f"freeing {kv_cache_bytes(model, 512, 8) / 1e6:.1f} MB of cache — the "
        "trade the paper cites for memory-constrained deployments."
    )


if __name__ == "__main__":
    main()
