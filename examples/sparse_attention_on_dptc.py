"""Sparse attention on DPTC: the Sec. VI-A / Fig. 16 workflow.

Run with::

    python examples/sparse_attention_on_dptc.py

Blockifies window-local attention into dense chunks, verifies the
reformulated computation equals masked dense attention, executes the
chunks on a *noisy* photonic core, and quantifies the cycle savings as
the attention window narrows.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import DPTC, DPTCGeometry, NoiseModel
from repro.workloads import (
    WindowAttentionPattern,
    blockified_qk_ops,
    cycle_savings,
    dense_attention,
    sparse_attention,
)


def main() -> None:
    n_tokens, head_dim = 196, 64
    geometry = DPTCGeometry()
    rng = np.random.default_rng(0)
    q, k, v = (rng.normal(size=(n_tokens, head_dim)) for _ in range(3))

    print("=== blockification (window=13, block=12) ===")
    pattern = WindowAttentionPattern(n_tokens, window=13, block=12)
    chunks = blockified_qk_ops(pattern, head_dim)
    print(
        f"{len(chunks)} dense QK^T chunks; attention-map density "
        f"{100 * pattern.density():.1f} %"
    )

    exact = sparse_attention(q, k, v, pattern)
    reference = dense_attention(q, k, v, mask=pattern.mask())
    print(
        "blockified == masked dense attention:",
        np.allclose(exact, reference, atol=1e-10),
    )

    dptc = DPTC(geometry, NoiseModel.paper_default())
    noisy = sparse_attention(
        q, k, v, pattern, matmul=lambda a, b: dptc.matmul(a, b, rng=rng)
    )
    rel = np.linalg.norm(noisy - reference) / np.linalg.norm(reference)
    print(f"photonic execution error: {100 * rel:.1f} %\n")

    rows = []
    for window in (3, 7, 13, 25, 49, 99):
        pattern = WindowAttentionPattern(n_tokens, window, block=12)
        rows.append(
            {
                "window": window,
                "density_pct": 100 * pattern.density(),
                "cycle_savings_vs_dense": cycle_savings(
                    pattern, head_dim, geometry
                ),
            }
        )
    print(render_table(rows, title="cycle savings vs dense attention"))


if __name__ == "__main__":
    main()
