"""Noise-aware training and robustness evaluation of an optical ViT.

Run with::

    python examples/noise_aware_transformer.py

Reproduces the paper's software-model workflow end to end on the
substituted synthetic vision task (see DESIGN.md):

1. train a DeiT-style model with the photonic forward pass (quantized
   to 4 bits, encoding noise + dispersion + systematic noise injected);
2. evaluate the same checkpoint as the noise-free digital reference
   (the paper's "GPU" line in Figs. 14-15);
3. sweep the magnitude-noise intensity to show the robustness plateau
   inside the paper's range and the eventual collapse far beyond it.
"""

import numpy as np

from repro.core import DPTCGeometry, EncodingNoise, NoiseModel, SystematicNoise
from repro.neural import (
    PhotonicExecutor,
    QuantConfig,
    TinyViT,
    evaluate,
    striped_image_dataset,
    train_classifier,
)


def main() -> None:
    data = striped_image_dataset(n_samples=320, n_classes=6, noise=0.9, seed=0)
    train, test = data.split(0.75)
    print(f"dataset: {len(train)} train / {len(test)} test images, 6 classes")

    print("\ntraining with the noisy photonic forward pass (4-bit)...")
    model = TinyViT(
        n_classes=6,
        depth=2,
        executor=PhotonicExecutor.paper_default(QuantConfig.int4(), seed=0),
        seed=0,
    )
    result = train_classifier(model, train, epochs=12, lr=3e-3, seed=0, verbose=True)
    print(f"final training accuracy: {result.train_accuracy:.3f}")

    model.set_executor(PhotonicExecutor.digital_reference(QuantConfig.int4()))
    digital = evaluate(model, test)
    print(f"\ndigital (noise-free quantized) test accuracy: {digital:.3f}")

    print("\nmagnitude-noise sweep (paper range is 0.02-0.08):")
    print(f"{'noise std':>10}  {'accuracy':>8}  {'drop':>7}")
    for magnitude in (0.02, 0.04, 0.08, 0.15, 0.30):
        noise = NoiseModel(
            encoding=EncodingNoise(magnitude, 2.0),
            systematic=SystematicNoise(0.05),
            include_dispersion=True,
        )
        model.set_executor(
            PhotonicExecutor(
                geometry=DPTCGeometry(),
                noise=noise,
                quant=QuantConfig.int4(),
                rng=np.random.default_rng(1),
            )
        )
        acc = evaluate(model, test)
        print(f"{magnitude:>10.2f}  {acc:>8.3f}  {digital - acc:>+7.3f}")

    print(
        "\nInside the paper's sweep the drop stays within a couple of test "
        "samples; far beyond it the analog noise finally wins."
    )


if __name__ == "__main__":
    main()
