"""Accelerator shoot-out: LT vs photonic baselines vs electronic platforms.

Run with::

    python examples/accelerator_comparison.py

Regenerates the story of Table V and Fig. 13 on all five paper
workloads: the MZI array is reconfiguration-bound, the MRR bank pays
locking power and the full-range decomposition penalty, electronic
platforms burn orders of magnitude more energy, and the
Lightening-Transformer holds the lowest energy and highest FPS.
"""

from repro.analysis import render_table
from repro.arch import LighteningTransformer, lt_base, lt_large
from repro.baselines import MRRAccelerator, MZIAccelerator, all_platforms
from repro.units import MJ, MS
from repro.workloads import PAPER_WORKLOADS, gemm_trace


def main() -> None:
    lt_b = LighteningTransformer(lt_base(4))
    lt_l = LighteningTransformer(lt_large(4))
    mrr = MRRAccelerator(bits=4)
    mzi = MZIAccelerator(bits=4)

    rows = []
    for name, factory in PAPER_WORKLOADS.items():
        trace = gemm_trace(factory())
        lt_run = lt_b.run(trace)
        rows.append(
            {
                "workload": name,
                "design": "LT-B (4-bit)",
                "energy_mJ": lt_run.energy_joules / MJ,
                "latency_ms": lt_run.latency / MS,
                "fps": lt_run.fps,
                "vs LT-B energy": 1.0,
            }
        )
        lt_l_run = lt_l.run(trace)
        rows.append(
            {
                "workload": name,
                "design": "LT-L (4-bit)",
                "energy_mJ": lt_l_run.energy_joules / MJ,
                "latency_ms": lt_l_run.latency / MS,
                "fps": lt_l_run.fps,
                "vs LT-B energy": lt_l_run.energy_joules / lt_run.energy_joules,
            }
        )
        for design, accelerator in (("MRR bank", mrr), ("MZI array", mzi)):
            run = accelerator.run(trace)
            rows.append(
                {
                    "workload": name,
                    "design": design,
                    "energy_mJ": run.energy_joules / MJ,
                    "latency_ms": run.latency / MS,
                    "fps": run.fps,
                    "vs LT-B energy": run.energy_joules / lt_run.energy_joules,
                }
            )
        for platform in all_platforms():
            rows.append(
                {
                    "workload": name,
                    "design": platform.name,
                    "energy_mJ": platform.energy(trace) / MJ,
                    "latency_ms": platform.latency(trace) / MS,
                    "fps": platform.fps(trace),
                    "vs LT-B energy": platform.energy(trace) / lt_run.energy_joules,
                }
            )
    print(render_table(rows, title="Table V + Fig. 13: accelerator comparison"))
    print(
        "Paper shape check: MRR ~4x energy / ~13x latency; MZI hundreds of x\n"
        "latency (2 us MEMS reconfiguration per weight tile); CPU >300x energy;\n"
        "LT holds the best FPS everywhere."
    )


if __name__ == "__main__":
    main()
