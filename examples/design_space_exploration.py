"""Design-space exploration: scaling the DPTC core and the tile fabric.

Run with::

    python examples/design_space_exploration.py

An extension study built on the Fig. 9/10 models: sweep the core size
and the tile count, and examine where area efficiency, energy
efficiency, and DeiT-T latency land.  Shows the trade-off the paper
describes — bigger cores raise raw TOPS and TOPS/W of the optics, while
converters erode system-level efficiency per unit area.
"""

from dataclasses import replace

from repro.analysis import render_table
from repro.arch import (
    LighteningTransformer,
    area_breakdown,
    lt_base,
    power_breakdown,
    single_core,
    single_core_area_breakdown,
    single_core_power_breakdown,
)
from repro.core import DPTCGeometry
from repro.units import MJ, MS
from repro.workloads import deit_tiny, gemm_trace


def core_size_sweep() -> None:
    rows = []
    for size in (8, 12, 16, 24, 32, 48):
        config = single_core(size)
        area = single_core_area_breakdown(config).total_mm2
        power = single_core_power_breakdown(config).total
        tops = config.peak_ops / 1e12
        rows.append(
            {
                "core_size": size,
                "tops": tops,
                "area_mm2": area,
                "power_w": power,
                "tops_per_w": tops / power,
                "tops_per_mm2": tops / area,
            }
        )
    print(render_table(rows, title="single-core scaling (converters included)"))


def tile_fabric_sweep() -> None:
    trace = gemm_trace(deit_tiny())
    rows = []
    for n_tiles in (2, 4, 8, 16):
        for core_size in (8, 12, 16):
            config = replace(
                lt_base(4),
                n_tiles=n_tiles,
                geometry=DPTCGeometry(core_size, core_size, core_size),
                name=f"{n_tiles}tx{core_size}",
            )
            accelerator = LighteningTransformer(config)
            run = accelerator.run(trace)
            rows.append(
                {
                    "config": config.name,
                    "area_mm2": area_breakdown(config).total_mm2,
                    "power_w": power_breakdown(config).total,
                    "deit_t_latency_ms": run.latency / MS,
                    "deit_t_energy_mj": run.energy_joules / MJ,
                    "edp": run.edp / (MJ * MS),
                }
            )
    best = min(rows, key=lambda r: r["edp"])
    print(render_table(rows, title="tile-fabric sweep on DeiT-T"))
    print(f"lowest-EDP configuration: {best['config']}")


def main() -> None:
    core_size_sweep()
    tile_fabric_sweep()


if __name__ == "__main__":
    main()
