"""Quickstart: the DPTC tensor core and the LT-B accelerator in 60 seconds.

Run with::

    python examples/quickstart.py

Covers the three layers of the library:

1. functional — multiply two full-range dynamic matrices on a (noisy)
   photonic tensor core;
2. architectural — area/power of the LT-B design point and the
   energy/latency of a DeiT-T inference;
3. comparative — how the prior-art MRR photonic baseline fares on the
   same workload.
"""

import numpy as np

from repro.arch import LighteningTransformer, lt_base
from repro.baselines import MRRAccelerator
from repro.core import DPTC, NoiseModel
from repro.units import MJ, MS
from repro.workloads import deit_tiny, gemm_trace


def functional_demo() -> None:
    print("=== 1. DPTC: dynamic full-range matrix multiplication ===")
    rng = np.random.default_rng(0)
    # Both operands are runtime activations with signs: the workload
    # weight-static photonic cores cannot serve efficiently.
    q = rng.normal(size=(16, 24))
    k_t = rng.normal(size=(24, 16))

    ideal = DPTC(noise=NoiseModel.ideal()).matmul(q, k_t)
    noisy = DPTC(noise=NoiseModel.paper_default()).matmul(q, k_t, rng=rng)
    rel_err = np.linalg.norm(noisy - ideal) / np.linalg.norm(ideal)
    print(f"ideal[0,0] = {ideal[0, 0]: .4f}, photonic[0,0] = {noisy[0, 0]: .4f}")
    print(f"relative error under the paper's noise model: {100 * rel_err:.1f} %\n")


def architecture_demo() -> LighteningTransformer:
    print("=== 2. LT-B design point (Table IV / Figs. 7-8) ===")
    accelerator = LighteningTransformer(lt_base(bits=4))
    area = accelerator.area()
    power = accelerator.power()
    print(f"area : {area.total_mm2:6.1f} mm^2   (paper: 60.3 mm^2)")
    print(f"power: {power.total:6.2f} W      (paper: 14.75 W)")
    print(f"peak : {accelerator.peak_tops:6.1f} TOPS\n")

    print("=== 3. DeiT-T inference (Table V row) ===")
    result = accelerator.run(deit_tiny())
    print(
        f"LT-B : {result.energy_joules / MJ:.3f} mJ, "
        f"{result.latency / MS * 1000:.1f} us, {result.fps:,.0f} FPS"
    )
    return accelerator


def baseline_demo(accelerator: LighteningTransformer) -> None:
    trace = gemm_trace(deit_tiny())
    mrr = MRRAccelerator(bits=4).run(trace)
    lt = accelerator.run(trace)
    print(
        f"MRR  : {mrr.energy_joules / MJ:.3f} mJ, "
        f"{mrr.latency / MS * 1000:.1f} us "
        f"({mrr.energy_joules / lt.energy_joules:.1f}x energy, "
        f"{mrr.latency / lt.latency:.1f}x latency — paper: 4.0x / 12.9x)"
    )


def main() -> None:
    functional_demo()
    accelerator = architecture_demo()
    baseline_demo(accelerator)


if __name__ == "__main__":
    main()
