"""A BERT-style text classifier sized for the synthetic benchmark.

Token embeddings + learned positions, pre-norm encoder blocks, and a
classifier on the leading ``[CLS]`` token — the same structure the
paper's BERT-base/SST-2 experiments exercise, scaled to train in
seconds on a CPU.
"""

from __future__ import annotations

import numpy as np

from repro.neural.autograd import Tensor
from repro.neural.blocks import EncoderBlock
from repro.neural.modules import Embedding, LayerNorm, Linear, Module
from repro.neural.photonic import PhotonicExecutor

#: Token id reserved for the classification token.
CLS_TOKEN_ID = 0


class TinyBERT(Module):
    """BERT-style sequence classifier.

    Args:
        vocab_size: token vocabulary (including the CLS id 0).
        seq_len: fixed sequence length (CLS + tokens).
        dim / depth / heads: encoder dimensions.
        n_classes: output classes.
    """

    def __init__(
        self,
        vocab_size: int = 32,
        seq_len: int = 17,
        dim: int = 32,
        depth: int = 2,
        heads: int = 2,
        n_classes: int = 2,
        mlp_ratio: float = 2.0,
        executor: PhotonicExecutor | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.seq_len = seq_len
        self.dim = dim
        self.executor = executor if executor is not None else PhotonicExecutor.ideal()

        self.token_embed = Embedding(vocab_size, dim, rng=rng)
        self.pos_embed = Tensor(
            rng.normal(0, 0.02, (seq_len, dim)), requires_grad=True
        )
        self.blocks = [
            EncoderBlock(dim, heads, mlp_ratio, executor=self.executor, rng=rng)
            for _ in range(depth)
        ]
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, n_classes, executor=self.executor, rng=rng)

    def set_executor(self, executor: PhotonicExecutor) -> None:
        """Swap the photonic executor everywhere (for noise sweeps)."""
        self.executor = executor
        self.head.executor = executor
        for block in self.blocks:
            block.attention.executor = executor
            block.attention.qkv.executor = executor
            block.attention.proj.executor = executor
            block.ffn.fc1.executor = executor
            block.ffn.fc2.executor = executor

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """Logits for token sequences.

        Accepts one ``[seq_len]`` sequence (returns ``[n_classes]``) or a
        ``[batch, seq_len]`` stack (returns ``[batch, n_classes]``); the
        whole batch runs through each photonic matmul in one call.
        """
        token_ids = np.asarray(token_ids, dtype=int)
        single = token_ids.ndim == 1
        batch_ids = token_ids[None, :] if single else token_ids
        if batch_ids.ndim != 2 or batch_ids.shape[-1] != self.seq_len:
            raise ValueError(
                f"expected sequence(s) of length {self.seq_len}, "
                f"got {token_ids.shape}"
            )
        if batch_ids.min() < 0 or batch_ids.max() >= self.vocab_size:
            raise ValueError("token id out of vocabulary range")
        tokens = self.token_embed(batch_ids) + self.pos_embed
        for block in self.blocks:
            tokens = block(tokens)
        # Per-sample head GEMV ([batch, 1, dim] stack): keeps each
        # sequence's rounding and quantization scale independent of its
        # batch mates — the serving bit-equality gate relies on this.
        cls = self.norm(tokens)[:, 0:1]  # [batch, 1, dim]
        logits = self.head(cls).reshape(batch_ids.shape[0], -1)
        return logits.reshape(logits.shape[-1]) if single else logits
