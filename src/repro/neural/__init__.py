"""Noise-aware neural-network stack (the artifact's software model).

A numpy autograd engine, Transformer modules whose matrix products run
through the DPTC analytic noise transform, low-bit quantization, and
the noise-aware training loop — the PyTorch-based software model of the
paper's artifact, rebuilt from scratch.
"""

from repro.neural.attention import MultiHeadAttention
from repro.neural.autograd import (
    Tensor,
    broadcast_to,
    concatenate,
    embedding_lookup,
    gather_rows,
    is_grad_enabled,
    no_grad,
    stack,
)
from repro.neural.blocks import EncoderBlock, FeedForward
from repro.neural.checkpoint import load_checkpoint, save_checkpoint
from repro.neural.data import Dataset, striped_image_dataset, token_order_dataset
from repro.neural.functional import (
    accuracy,
    cross_entropy,
    gelu,
    layer_norm,
    log_softmax,
    relu,
    softmax,
)
from repro.neural.modules import (
    GELU,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Sequential,
)
from repro.neural.photonic import PhotonicExecutor
from repro.neural.quantization import (
    QuantConfig,
    fake_quantize,
    quantization_error,
    quantization_levels,
    quantize_array,
)
from repro.neural.text import CLS_TOKEN_ID, TinyBERT
from repro.neural.train import (
    Adam,
    TrainingResult,
    evaluate,
    train_classifier,
    train_classifier_reference,
)
from repro.neural.vision import TinyViT

__all__ = [
    "Adam",
    "CLS_TOKEN_ID",
    "Dataset",
    "Dropout",
    "Embedding",
    "EncoderBlock",
    "FeedForward",
    "GELU",
    "LayerNorm",
    "Linear",
    "Module",
    "MultiHeadAttention",
    "PhotonicExecutor",
    "QuantConfig",
    "Sequential",
    "Tensor",
    "TinyBERT",
    "TinyViT",
    "TrainingResult",
    "accuracy",
    "broadcast_to",
    "concatenate",
    "cross_entropy",
    "embedding_lookup",
    "evaluate",
    "fake_quantize",
    "gather_rows",
    "gelu",
    "is_grad_enabled",
    "layer_norm",
    "load_checkpoint",
    "log_softmax",
    "no_grad",
    "save_checkpoint",
    "quantization_error",
    "quantization_levels",
    "quantize_array",
    "relu",
    "softmax",
    "stack",
    "striped_image_dataset",
    "token_order_dataset",
    "train_classifier",
    "train_classifier_reference",
]
