"""Differentiable neural-network functions on :class:`Tensor`."""

from __future__ import annotations

import math

import numpy as np

from repro.neural.autograd import Tensor, gather_rows


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.maximum(Tensor(np.zeros(1)))


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (exact erf form, as in the paper):
    ``GELU(x) = 0.5 * x * (1 + erf(x / sqrt(2)))``."""
    return x * 0.5 * ((x * (1.0 / math.sqrt(2.0))).erf() + 1.0)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along an axis."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along an axis."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalized = centered / ((variance + eps) ** 0.5)
    return normalized * weight + bias


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``[batch, classes]`` logits and labels."""
    labels = np.asarray(labels, dtype=int)
    if logits.ndim != 2:
        raise ValueError(f"expected [batch, classes] logits, got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} does not match batch {logits.shape[0]}"
        )
    log_probs = log_softmax(logits, axis=-1)
    picked = gather_rows(log_probs, labels)
    return -picked.mean()


def accuracy(logits: Tensor | np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = data.argmax(axis=-1)
    return float(np.mean(predictions == np.asarray(labels)))
