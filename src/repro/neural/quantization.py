"""Low-bit quantization for weights and activations.

The paper deploys 4-bit (default) and 8-bit Transformers trained with
learned-step quantization.  We implement symmetric uniform fake
quantization with a straight-through gradient estimator: the forward
pass snaps values to the quantization grid, the backward pass passes
gradients through unchanged (clipped values included, which is the
standard STE simplification).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.neural.autograd import Tensor


@dataclass(frozen=True)
class QuantConfig:
    """Precision configuration for photonic execution."""

    weight_bits: int = 4
    activation_bits: int = 4

    def __post_init__(self) -> None:
        if self.weight_bits < 2 or self.activation_bits < 2:
            raise ValueError("quantization needs at least 2 bits (sign + level)")

    @classmethod
    def int4(cls) -> "QuantConfig":
        return cls(4, 4)

    @classmethod
    def int8(cls) -> "QuantConfig":
        return cls(8, 8)


def quantization_levels(bits: int) -> int:
    """Positive quantization levels of a symmetric b-bit grid."""
    if bits < 2:
        raise ValueError(f"bits must be >= 2, got {bits}")
    return 2 ** (bits - 1) - 1


def quantize_array(
    values: np.ndarray, bits: int, per_matrix: bool = False
) -> np.ndarray:
    """Symmetric uniform quantization with a max-abs scale.

    Values are snapped to ``scale * {-(2^(b-1)-1), ..., 2^(b-1)-1}``.
    A zero tensor (or, per-matrix, a zero slice) is returned unchanged.

    Args:
        values: array of any rank.
        bits: grid precision.
        per_matrix: scale each trailing ``[m, n]`` slice of a stacked
            tensor independently, mirroring the per-matrix ``beta``
            normalisation the DPTC applies to each encoded operand.
            This keeps a batch of activations decoupled — sample ``i``'s
            grid never depends on sample ``j`` — so batched execution
            quantizes exactly like per-sample execution.  2-D inputs
            are unaffected.
    """
    values = np.asarray(values, dtype=float)
    levels = quantization_levels(bits)
    if not values.size:
        return values.copy()
    # A subnormal max-abs underflows when divided by `levels`, turning
    # the scale into 0 and the grid into inf/nan — zero and sub-tiny
    # inputs are returned unchanged instead, identically on both paths
    # (so per-matrix slices still quantize exactly like per-sample
    # calls on the same slice).
    # The snap chain (divide, round, clip, rescale) runs through one
    # reused buffer — each ufunc writes over the previous result, which
    # is bit-identical to the chained temporaries and allocates once.
    tiny = np.finfo(float).tiny
    if per_matrix and values.ndim > 2:
        max_abs = np.max(np.abs(values), axis=(-2, -1), keepdims=True)
        degenerate = max_abs < tiny
        scale = np.where(degenerate, 1.0, max_abs) / levels
        snapped = values / scale
        np.round(snapped, out=snapped)
        np.clip(snapped, -levels, levels, out=snapped)
        snapped *= scale
        return np.where(degenerate, values, snapped)
    max_abs = np.max(np.abs(values))
    if max_abs < tiny:
        return values.copy()
    scale = max_abs / levels
    snapped = values / scale
    np.round(snapped, out=snapped)
    np.clip(snapped, -levels, levels, out=snapped)
    snapped *= scale
    return snapped


def fake_quantize(tensor: Tensor, bits: int, per_matrix: bool = False) -> Tensor:
    """Quantize in the forward pass, straight-through in the backward."""
    quantized = quantize_array(tensor.data, bits, per_matrix=per_matrix)

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            tensor.accumulate_grad(grad)

    return Tensor.make(quantized, (tensor,), backward)


def quantization_error(
    values: np.ndarray, bits: int, per_matrix: bool = False
) -> float | np.ndarray:
    """Relative (Frobenius) quantization error of a tensor at ``bits``.

    Args:
        values: array of any rank.
        bits: grid precision.
        per_matrix: quantize and normalise each trailing ``[m, n]``
            slice independently — the scale discipline the executor
            actually uses (``quantize_array(..., per_matrix=True)``).
            For a stacked tensor this returns one error per slice (a
            ``batch``-shaped array), each matching the error of the
            slice quantized on its own — the quantized values are
            bit-identical; the norm reduction itself may differ by one
            ULP from the 2-D call (BLAS vs ufunc summation order).  The
            default reports a single
            global-scale error, which cross-couples the batch.  All-zero
            slices report 0.0.  2-D inputs return a float either way.
    """
    values = np.asarray(values, dtype=float)
    if per_matrix and values.ndim > 2:
        diff = values - quantize_array(values, bits, per_matrix=True)
        reference = np.linalg.norm(values, axis=(-2, -1))
        error = np.linalg.norm(diff, axis=(-2, -1))
        zero = reference == 0.0
        return error / np.where(zero, 1.0, reference)
    reference = float(np.linalg.norm(values))
    if reference == 0.0:
        return 0.0
    return float(
        np.linalg.norm(values - quantize_array(values, bits, per_matrix=per_matrix))
        / reference
    )
