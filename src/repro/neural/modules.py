"""Neural-network modules on the autograd engine."""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.neural.autograd import Tensor, embedding_lookup
from repro.neural.functional import gelu, layer_norm
from repro.neural.photonic import PhotonicExecutor


class Module:
    """Base class: parameter discovery, mode switching, state dicts."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> Iterator[Tensor]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, value in vars(self).items():
            path = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{path}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{path}.{index}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for _, value in vars(self).items():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=float)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.shape}"
                )
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine layer whose product runs on the photonic executor."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        executor: PhotonicExecutor | None = None,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        scale = math.sqrt(2.0 / (in_features + out_features))
        self.weight = Tensor(
            rng.normal(0.0, scale, (in_features, out_features)), requires_grad=True
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        )
        self.executor = executor if executor is not None else PhotonicExecutor.ideal()

    def forward(self, x: Tensor) -> Tensor:
        # The batched executor broadcasts the 2-D weight against any
        # leading batch axes of the activations directly; only a bare
        # feature vector needs lifting to matrix rank.
        single = x.ndim == 1
        if single:
            x = x.reshape(1, x.shape[0])
        out = self.executor.matmul(x, self.weight, weight_operand=1)
        if single:
            out = out.reshape(self.weight.shape[1])
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalization over the trailing feature dimension."""

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.weight = Tensor(np.ones(features), requires_grad=True)
        self.bias = Tensor(np.zeros(features), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm(x, self.weight, self.bias, self.eps)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return gelu(x)


class Dropout(Module):
    """Inverted dropout (active in training mode only)."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self.rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.weight = Tensor(
            rng.normal(0.0, 0.02, (vocab_size, dim)), requires_grad=True
        )

    def forward(self, token_ids: np.ndarray) -> Tensor:
        return embedding_lookup(self.weight, token_ids)


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
