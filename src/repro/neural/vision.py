"""A DeiT-style vision transformer sized for the synthetic benchmark.

Architecturally identical to DeiT (patch embedding, class token,
learned position embeddings, pre-norm encoder blocks, classification
head on the class token), scaled down so noise-aware training completes
in seconds on a CPU while exercising every photonic code path the
full-size model would.
"""

from __future__ import annotations

import numpy as np

from repro.neural.autograd import Tensor, broadcast_to, concatenate
from repro.neural.blocks import EncoderBlock
from repro.neural.modules import LayerNorm, Linear, Module
from repro.neural.photonic import PhotonicExecutor


class TinyViT(Module):
    """DeiT-style classifier over square single-channel images.

    Args:
        image_size: input side length (pixels).
        patch_size: square patch side; must divide ``image_size``.
        dim: embedding dimension.
        depth: number of encoder blocks.
        heads: attention heads.
        n_classes: output classes.
        executor: photonic executor shared by every matmul.
    """

    def __init__(
        self,
        image_size: int = 16,
        patch_size: int = 4,
        dim: int = 32,
        depth: int = 2,
        heads: int = 2,
        n_classes: int = 4,
        mlp_ratio: float = 2.0,
        executor: PhotonicExecutor | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if image_size % patch_size != 0:
            raise ValueError(
                f"patch size {patch_size} must divide image size {image_size}"
            )
        rng = np.random.default_rng(seed)
        self.image_size = image_size
        self.patch_size = patch_size
        self.n_patches = (image_size // patch_size) ** 2
        self.dim = dim
        self.executor = executor if executor is not None else PhotonicExecutor.ideal()

        self.patch_embed = Linear(
            patch_size * patch_size, dim, executor=self.executor, rng=rng
        )
        self.cls_token = Tensor(rng.normal(0, 0.02, (1, dim)), requires_grad=True)
        self.pos_embed = Tensor(
            rng.normal(0, 0.02, (self.n_patches + 1, dim)), requires_grad=True
        )
        self.blocks = [
            EncoderBlock(
                dim, heads, mlp_ratio, executor=self.executor, rng=rng
            )
            for _ in range(depth)
        ]
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, n_classes, executor=self.executor, rng=rng)

    def set_executor(self, executor: PhotonicExecutor) -> None:
        """Swap the photonic executor everywhere (for noise sweeps)."""
        self.executor = executor
        self.patch_embed.executor = executor
        self.head.executor = executor
        for block in self.blocks:
            block.attention.executor = executor
            block.attention.qkv.executor = executor
            block.attention.proj.executor = executor
            block.ffn.fc1.executor = executor
            block.ffn.fc2.executor = executor

    def patchify(self, image: np.ndarray) -> np.ndarray:
        """Split ``[H, W]`` (or batched ``[B, H, W]``) images into
        flattened ``p*p`` patches."""
        image = np.asarray(image, dtype=float)
        if image.shape[-2:] != (self.image_size, self.image_size) or image.ndim not in (
            2,
            3,
        ):
            raise ValueError(
                f"expected {(self.image_size, self.image_size)} image(s), "
                f"got {image.shape}"
            )
        p = self.patch_size
        side = self.image_size // p
        lead = image.shape[:-2]
        patches = image.reshape(*lead, side, p, side, p).swapaxes(-3, -2)
        return patches.reshape(*lead, self.n_patches, p * p)

    def forward(self, image: np.ndarray) -> Tensor:
        """Logits for images.

        Accepts one ``[H, W]`` image (returns ``[n_classes]``) or a
        ``[batch, H, W]`` stack (returns ``[batch, n_classes]``); every
        photonic matmul sees the whole batch at once.
        """
        image = np.asarray(image, dtype=float)
        single = image.ndim == 2
        batch_images = image[None] if single else image
        patches = self.patchify(batch_images)  # [batch, n_patches, p*p]
        tokens = self.patch_embed(Tensor(patches))
        cls_tokens = broadcast_to(
            self.cls_token.reshape(1, 1, self.dim),
            (tokens.shape[0], 1, self.dim),
        )
        tokens = concatenate([cls_tokens, tokens], axis=1)
        tokens = tokens + self.pos_embed
        for block in self.blocks:
            tokens = block(tokens)
        # Per-sample head GEMV: the [batch, 1, dim] stack keeps every
        # sample's rounding and quantization scale independent of its
        # batch mates (a 2-D [batch, dim] GEMM picks batch-size-dependent
        # BLAS kernels), which the serving bit-equality gate relies on.
        cls = self.norm(tokens)[:, 0:1]  # [batch, 1, dim]
        logits = self.head(cls).reshape(tokens.shape[0], -1)
        return logits.reshape(logits.shape[-1]) if single else logits
