"""A DeiT-style vision transformer sized for the synthetic benchmark.

Architecturally identical to DeiT (patch embedding, class token,
learned position embeddings, pre-norm encoder blocks, classification
head on the class token), scaled down so noise-aware training completes
in seconds on a CPU while exercising every photonic code path the
full-size model would.
"""

from __future__ import annotations

import numpy as np

from repro.neural.autograd import Tensor, concatenate
from repro.neural.blocks import EncoderBlock
from repro.neural.modules import LayerNorm, Linear, Module
from repro.neural.photonic import PhotonicExecutor


class TinyViT(Module):
    """DeiT-style classifier over square single-channel images.

    Args:
        image_size: input side length (pixels).
        patch_size: square patch side; must divide ``image_size``.
        dim: embedding dimension.
        depth: number of encoder blocks.
        heads: attention heads.
        n_classes: output classes.
        executor: photonic executor shared by every matmul.
    """

    def __init__(
        self,
        image_size: int = 16,
        patch_size: int = 4,
        dim: int = 32,
        depth: int = 2,
        heads: int = 2,
        n_classes: int = 4,
        mlp_ratio: float = 2.0,
        executor: PhotonicExecutor | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if image_size % patch_size != 0:
            raise ValueError(
                f"patch size {patch_size} must divide image size {image_size}"
            )
        rng = np.random.default_rng(seed)
        self.image_size = image_size
        self.patch_size = patch_size
        self.n_patches = (image_size // patch_size) ** 2
        self.dim = dim
        self.executor = executor if executor is not None else PhotonicExecutor.ideal()

        self.patch_embed = Linear(
            patch_size * patch_size, dim, executor=self.executor, rng=rng
        )
        self.cls_token = Tensor(rng.normal(0, 0.02, (1, dim)), requires_grad=True)
        self.pos_embed = Tensor(
            rng.normal(0, 0.02, (self.n_patches + 1, dim)), requires_grad=True
        )
        self.blocks = [
            EncoderBlock(
                dim, heads, mlp_ratio, executor=self.executor, rng=rng
            )
            for _ in range(depth)
        ]
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, n_classes, executor=self.executor, rng=rng)

    def set_executor(self, executor: PhotonicExecutor) -> None:
        """Swap the photonic executor everywhere (for noise sweeps)."""
        self.executor = executor
        self.patch_embed.executor = executor
        self.head.executor = executor
        for block in self.blocks:
            block.attention.executor = executor
            block.attention.qkv.executor = executor
            block.attention.proj.executor = executor
            block.ffn.fc1.executor = executor
            block.ffn.fc2.executor = executor

    def patchify(self, image: np.ndarray) -> np.ndarray:
        """Split a ``[H, W]`` image into flattened ``p*p`` patches."""
        image = np.asarray(image, dtype=float)
        if image.shape != (self.image_size, self.image_size):
            raise ValueError(
                f"expected {(self.image_size, self.image_size)} image, "
                f"got {image.shape}"
            )
        p = self.patch_size
        side = self.image_size // p
        patches = image.reshape(side, p, side, p).transpose(0, 2, 1, 3)
        return patches.reshape(self.n_patches, p * p)

    def forward(self, image: np.ndarray) -> Tensor:
        """Logits for one image (``[n_classes]``)."""
        tokens = self.patch_embed(Tensor(self.patchify(image)))
        tokens = concatenate([self.cls_token, tokens])
        tokens = tokens + self.pos_embed
        for block in self.blocks:
            tokens = block(tokens)
        cls = self.norm(tokens)[0]
        return self.head(cls.reshape(1, self.dim)).reshape(-1)
