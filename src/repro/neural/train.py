"""Training utilities: Adam and the noise-aware training loop.

Noise-aware training (Sec. V-A) runs the *forward* pass through the
noisy photonic model while gradients flow through the ideal product
(straight-through), so the network learns weights robust to the analog
non-idealities it will see at inference time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.neural.autograd import Tensor, no_grad
from repro.neural.data import Dataset
from repro.neural.functional import accuracy, cross_entropy
from repro.neural.modules import Module


class Adam:
    """Adam optimizer over a module's parameters."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-2,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self.step_count += 1
        correction1 = 1.0 - self.beta1**self.step_count
        correction2 = 1.0 - self.beta2**self.step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


@dataclass
class TrainingResult:
    """Per-epoch history of a training run."""

    losses: list[float]
    train_accuracy: float

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


def train_classifier(
    model: Module,
    dataset: Dataset,
    epochs: int = 10,
    lr: float = 1e-2,
    batch_size: int = 16,
    seed: int = 0,
    verbose: bool = False,
) -> TrainingResult:
    """Train a per-sample classifier model with minibatch Adam.

    The model maps one input to a ``[n_classes]`` logits tensor;
    gradients are accumulated over each minibatch before stepping.
    """
    if epochs < 1 or batch_size < 1:
        raise ValueError("epochs and batch_size must be >= 1")
    optimizer = Adam(model.parameters(), lr=lr)
    rng = np.random.default_rng(seed)
    model.train()
    losses = []
    for epoch in range(epochs):
        order = rng.permutation(len(dataset))
        epoch_loss = 0.0
        for start in range(0, len(order), batch_size):
            batch = order[start : start + batch_size]
            optimizer.zero_grad()
            batch_loss = 0.0
            for index in batch:
                logits = model(dataset.inputs[index]).reshape(1, -1)
                loss = cross_entropy(logits, dataset.labels[index : index + 1])
                loss.backward()
                batch_loss += loss.item()
            # Average the accumulated gradients over the minibatch.
            for param in optimizer.parameters:
                if param.grad is not None:
                    param.grad = param.grad / len(batch)
            optimizer.step()
            epoch_loss += batch_loss
        losses.append(epoch_loss / len(dataset))
        if verbose:
            print(f"epoch {epoch + 1}/{epochs}: loss {losses[-1]:.4f}")
    return TrainingResult(losses=losses, train_accuracy=evaluate(model, dataset))


def evaluate(model: Module, dataset: Dataset) -> float:
    """Top-1 accuracy of a per-sample classifier on a dataset."""
    model.eval()
    correct = 0
    with no_grad():
        for inputs, label in zip(dataset.inputs, dataset.labels):
            logits = model(inputs)
            correct += int(np.argmax(logits.data) == label)
    model.train()
    return correct / len(dataset)
