"""Training utilities: Adam and the noise-aware training loop.

Noise-aware training (Sec. V-A) runs the *forward* pass through the
noisy photonic model while gradients flow through the ideal product
(straight-through), so the network learns weights robust to the analog
non-idealities it will see at inference time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.neural.autograd import no_grad
from repro.neural.data import Dataset
from repro.neural.functional import cross_entropy
from repro.neural.modules import Module


class Adam:
    """Adam optimizer over a module's parameters."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-2,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self.step_count += 1
        correction1 = 1.0 - self.beta1**self.step_count
        correction2 = 1.0 - self.beta2**self.step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


@dataclass
class TrainingResult:
    """Per-epoch history of a training run."""

    losses: list[float]
    train_accuracy: float

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


def train_classifier(
    model: Module,
    dataset: Dataset,
    epochs: int = 10,
    lr: float = 1e-2,
    batch_size: int = 16,
    seed: int = 0,
    verbose: bool = False,
) -> TrainingResult:
    """Train a classifier with minibatch Adam on whole-batch forwards.

    Each ``[batch, ...]`` minibatch runs through the model in *one*
    forward pass (the models and the photonic engine are batched
    end-to-end), so every matrix product of the step is a single
    whole-batch — and, with ``num_cores > 1`` executors, multi-core
    sharded — photonic call.  The mean cross-entropy over the batch
    makes the accumulated gradients identical to the per-sample loop
    preserved as :func:`train_classifier_reference` (which summed
    per-sample gradients and divided by the batch length), so on a
    deterministic executor both loops follow the exact same trajectory.
    """
    if epochs < 1 or batch_size < 1:
        raise ValueError("epochs and batch_size must be >= 1")
    optimizer = Adam(model.parameters(), lr=lr)
    rng = np.random.default_rng(seed)
    model.train()
    losses = []
    for epoch in range(epochs):
        order = rng.permutation(len(dataset))
        epoch_loss = 0.0
        for start in range(0, len(order), batch_size):
            batch = order[start : start + batch_size]
            optimizer.zero_grad()
            logits = model(dataset.inputs[batch])
            loss = cross_entropy(logits, dataset.labels[batch])
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item() * len(batch)
        losses.append(epoch_loss / len(dataset))
        if verbose:
            print(f"epoch {epoch + 1}/{epochs}: loss {losses[-1]:.4f}")
    return TrainingResult(losses=losses, train_accuracy=evaluate(model, dataset))


def train_classifier_reference(
    model: Module,
    dataset: Dataset,
    epochs: int = 10,
    lr: float = 1e-2,
    batch_size: int = 16,
    seed: int = 0,
    verbose: bool = False,
) -> TrainingResult:
    """The seed per-sample training loop, preserved verbatim.

    Every sample of a minibatch runs its own forward/backward; the
    accumulated gradients are averaged before the Adam step.  Kept as
    ground truth for :func:`train_classifier` — on a deterministic
    executor the batched loop reproduces these losses exactly — and as
    the baseline the sharded-execution benchmark measures its training
    speedup against.
    """
    if epochs < 1 or batch_size < 1:
        raise ValueError("epochs and batch_size must be >= 1")
    optimizer = Adam(model.parameters(), lr=lr)
    rng = np.random.default_rng(seed)
    model.train()
    losses = []
    for epoch in range(epochs):
        order = rng.permutation(len(dataset))
        epoch_loss = 0.0
        for start in range(0, len(order), batch_size):
            batch = order[start : start + batch_size]
            optimizer.zero_grad()
            batch_loss = 0.0
            for index in batch:
                logits = model(dataset.inputs[index]).reshape(1, -1)
                loss = cross_entropy(logits, dataset.labels[index : index + 1])
                loss.backward()
                batch_loss += loss.item()
            # Average the accumulated gradients over the minibatch.
            for param in optimizer.parameters:
                if param.grad is not None:
                    param.grad = param.grad / len(batch)
            optimizer.step()
            epoch_loss += batch_loss
        losses.append(epoch_loss / len(dataset))
        if verbose:
            print(f"epoch {epoch + 1}/{epochs}: loss {losses[-1]:.4f}")
    return TrainingResult(losses=losses, train_accuracy=evaluate(model, dataset))


def evaluate(model: Module, dataset: Dataset, batch_size: int = 64) -> float:
    """Top-1 accuracy of a classifier, evaluated in whole batches."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            stop = start + batch_size
            logits = model(dataset.inputs[start:stop])
            predictions = np.argmax(logits.data, axis=-1)
            correct += int(np.sum(predictions == dataset.labels[start:stop]))
    model.train()
    return correct / len(dataset)
