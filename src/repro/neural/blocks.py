"""Transformer encoder blocks (pre-norm, as in DeiT/BERT variants)."""

from __future__ import annotations

import numpy as np

from repro.neural.attention import MultiHeadAttention
from repro.neural.autograd import Tensor
from repro.neural.modules import GELU, Dropout, LayerNorm, Linear, Module
from repro.neural.photonic import PhotonicExecutor


class FeedForward(Module):
    """Two linear layers with GELU in between (the paper's FFN).

    Rank-agnostic: ``[batch, tokens, dim]`` stacks run through the same
    batched photonic matmuls as single ``[tokens, dim]`` sequences.
    """

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        executor: PhotonicExecutor | None = None,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.fc1 = Linear(dim, hidden_dim, executor=executor, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(hidden_dim, dim, executor=executor, rng=rng)
        self.drop = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.drop(self.fc2(self.act(self.fc1(x))))


class EncoderBlock(Module):
    """Pre-norm encoder block: ``x + MHA(LN(x))``, ``x + FFN(LN(x))``.

    Accepts ``[tokens, dim]`` or batched ``[batch, tokens, dim]`` inputs;
    every matrix product of the block executes as one whole-batch
    photonic call.
    """

    def __init__(
        self,
        dim: int,
        heads: int,
        mlp_ratio: float = 4.0,
        executor: PhotonicExecutor | None = None,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attention = MultiHeadAttention(dim, heads, executor=executor, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.ffn = FeedForward(
            dim, int(dim * mlp_ratio), executor=executor, dropout=dropout, rng=rng
        )

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.norm1(x))
        return x + self.ffn(self.norm2(x))
