"""Synthetic datasets standing in for ImageNet-1K and SST-2.

The paper's accuracy studies (Fig. 14/15) measure the *relative*
accuracy drop of a quantized Transformer under analog noise versus the
same checkpoint running noise-free.  That delta is a property of the
noise transform, not of the dataset scale, so we substitute procedurally
generated tasks that the tiny models can learn to high accuracy in
seconds:

* :func:`striped_image_dataset` — oriented-grating classification for
  the DeiT-style vision model (class = grating orientation);
* :func:`token_order_dataset` — long-range marker-order classification
  for the BERT-style model (class = which of two marker tokens appears
  first; unsolvable without attention across the sequence).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.neural.text import CLS_TOKEN_ID


@dataclass(frozen=True)
class Dataset:
    """Inputs (images or token sequences) with integer labels."""

    inputs: np.ndarray
    labels: np.ndarray
    n_classes: int

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.labels):
            raise ValueError(
                f"{len(self.inputs)} inputs but {len(self.labels)} labels"
            )
        if self.labels.size and (
            self.labels.min() < 0 or self.labels.max() >= self.n_classes
        ):
            raise ValueError("label out of range")

    def __len__(self) -> int:
        return len(self.inputs)

    def split(self, train_fraction: float = 0.8) -> tuple["Dataset", "Dataset"]:
        """Deterministic train/test split (data is already shuffled)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train fraction must be in (0, 1), got {train_fraction}")
        cut = int(len(self) * train_fraction)
        if cut == 0 or cut == len(self):
            raise ValueError("split would leave an empty partition")
        return (
            Dataset(self.inputs[:cut], self.labels[:cut], self.n_classes),
            Dataset(self.inputs[cut:], self.labels[cut:], self.n_classes),
        )


def striped_image_dataset(
    n_samples: int = 400,
    image_size: int = 16,
    n_classes: int = 4,
    noise: float = 0.25,
    seed: int = 0,
) -> Dataset:
    """Oriented sinusoidal gratings with additive Gaussian noise.

    Class ``c`` fixes the grating orientation; the phase and the noise
    vary per sample, so the classifier must learn orientation-selective
    features (which the ViT's patch attention does naturally).
    """
    if n_samples < 1 or n_classes < 2:
        raise ValueError("need at least 1 sample and 2 classes")
    rng = np.random.default_rng(seed)
    angles = np.linspace(0.0, np.pi * (n_classes - 1) / n_classes, n_classes)
    ys, xs = np.mgrid[0:image_size, 0:image_size] / image_size

    images = np.empty((n_samples, image_size, image_size))
    labels = rng.integers(0, n_classes, n_samples)
    frequency = 3.0
    for i, label in enumerate(labels):
        theta = angles[label]
        phase = rng.uniform(0, 2 * np.pi)
        wave = np.sin(
            2 * np.pi * frequency * (xs * np.cos(theta) + ys * np.sin(theta)) + phase
        )
        images[i] = wave + rng.normal(0.0, noise, wave.shape)
    # Normalise into the MZM-friendly [-1, 1] range.
    images /= np.max(np.abs(images))
    return Dataset(images, labels, n_classes)


def token_order_dataset(
    n_samples: int = 400,
    seq_len: int = 17,
    vocab_size: int = 32,
    seed: int = 0,
) -> Dataset:
    """Binary marker-order task over random token sequences.

    Position 0 is the CLS token.  Two marker tokens (ids 1 and 2) are
    planted at random distinct positions; the label says which comes
    first.  Solving it requires relating distant positions — exactly
    the global-context capability attention provides.
    """
    if seq_len < 3:
        raise ValueError(f"seq_len must be >= 3, got {seq_len}")
    if vocab_size < 4:
        raise ValueError(f"vocab_size must be >= 4, got {vocab_size}")
    rng = np.random.default_rng(seed)
    sequences = rng.integers(3, vocab_size, (n_samples, seq_len))
    sequences[:, 0] = CLS_TOKEN_ID
    labels = np.empty(n_samples, dtype=int)
    for i in range(n_samples):
        a, b = rng.choice(np.arange(1, seq_len), size=2, replace=False)
        sequences[i, a] = 1
        sequences[i, b] = 2
        labels[i] = int(a < b)
    return Dataset(sequences, labels, 2)
