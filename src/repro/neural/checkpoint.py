"""Checkpoint persistence for trained models.

The paper's artifact ships a trained DeiT-T checkpoint so evaluators can
skip the multi-day training run; this module provides the same
capability for the numpy stack: model state dicts serialise to ``.npz``
archives and restore into freshly-constructed models.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.neural.modules import Module


def save_checkpoint(model: Module, path: str | Path) -> Path:
    """Serialise a model's parameters to an ``.npz`` archive.

    Returns the path written (with the ``.npz`` suffix numpy enforces).
    """
    path = Path(path)
    state = model.state_dict()
    if not state:
        raise ValueError("model has no parameters to save")
    np.savez(path, **state)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(model: Module, path: str | Path) -> Module:
    """Restore parameters from an ``.npz`` archive into ``model``.

    The model must have been constructed with the same architecture;
    mismatched names or shapes raise, they are never silently ignored.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model
