"""Multi-head self-attention with photonic dynamic matrix products.

The two attention products — ``Q K^T`` and ``A V`` — are the paper's
*dynamic* MMs: both operands are runtime activations.  Here they run
through the same :class:`PhotonicExecutor` as the linear projections,
which is exactly what the DPTC design enables (and what weight-static
photonic cores cannot do efficiently).
"""

from __future__ import annotations

import math

import numpy as np

from repro.neural.autograd import Tensor
from repro.neural.functional import softmax
from repro.neural.modules import Linear, Module
from repro.neural.photonic import PhotonicExecutor


class MultiHeadAttention(Module):
    """Self-attention over ``[tokens, dim]`` inputs (single sequence)."""

    def __init__(
        self,
        dim: int,
        heads: int,
        executor: PhotonicExecutor | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if dim % heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.executor = executor if executor is not None else PhotonicExecutor.ideal()
        self.qkv = Linear(dim, 3 * dim, executor=self.executor, rng=rng)
        self.proj = Linear(dim, dim, executor=self.executor, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        tokens = x.shape[0]
        qkv = self.qkv(x)  # [tokens, 3*dim]
        qkv = qkv.reshape(tokens, 3, self.heads, self.head_dim)
        qkv = qkv.transpose(1, 2, 0, 3)  # [3, heads, tokens, head_dim]
        q, k, v = qkv[0], qkv[1], qkv[2]

        # Dynamic MM #1: Q K^T, both operands runtime activations.
        scores = self.executor.matmul(q, k.swapaxes(-1, -2))
        scores = scores * (1.0 / math.sqrt(self.head_dim))
        weights = softmax(scores, axis=-1)

        # Dynamic MM #2: A V.
        context = self.executor.matmul(weights, v)  # [heads, tokens, head_dim]
        context = context.swapaxes(0, 1).reshape(tokens, self.dim)
        return self.proj(context)
