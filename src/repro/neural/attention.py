"""Multi-head self-attention with photonic dynamic matrix products.

The two attention products — ``Q K^T`` and ``A V`` — are the paper's
*dynamic* MMs: both operands are runtime activations.  Here they run
through the same :class:`PhotonicExecutor` as the linear projections,
which is exactly what the DPTC design enables (and what weight-static
photonic cores cannot do efficiently).
"""

from __future__ import annotations

import math

import numpy as np

from repro.neural.autograd import Tensor
from repro.neural.functional import softmax
from repro.neural.modules import Linear, Module
from repro.neural.photonic import PhotonicExecutor


class MultiHeadAttention(Module):
    """Self-attention over ``[batch, tokens, dim]`` (or ``[tokens, dim]``)
    inputs.

    All heads of all sequences run in *one* batched photonic call per
    attention product: the ``[batch, heads, tokens, head_dim]`` stacks
    are handed to the executor whole, so the noisy analytic transform is
    evaluated as single whole-batch matmul expressions rather than a
    Python loop over head matrices.
    """

    def __init__(
        self,
        dim: int,
        heads: int,
        executor: PhotonicExecutor | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if dim % heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.executor = executor if executor is not None else PhotonicExecutor.ideal()
        self.qkv = Linear(dim, 3 * dim, executor=self.executor, rng=rng)
        self.proj = Linear(dim, dim, executor=self.executor, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim not in (2, 3):
            raise ValueError(
                f"expected [tokens, dim] or [batch, tokens, dim], got {x.shape}"
            )
        single = x.ndim == 2
        if single:
            x = x.reshape(1, *x.shape)
        batch, tokens = x.shape[0], x.shape[1]

        qkv = self.qkv(x)  # [batch, tokens, 3*dim]
        qkv = qkv.reshape(batch, tokens, 3, self.heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # [3, batch, heads, tokens, head_dim]
        q, k, v = qkv[0], qkv[1], qkv[2]

        # Dynamic MM #1: Q K^T, both operands runtime activations; all
        # batch x heads matrices go through one photonic call.
        scores = self.executor.matmul(q, k.swapaxes(-1, -2))
        scores = scores * (1.0 / math.sqrt(self.head_dim))
        weights = softmax(scores, axis=-1)

        # Dynamic MM #2: A V.
        context = self.executor.matmul(weights, v)  # [batch, heads, tokens, head_dim]
        context = context.transpose(0, 2, 1, 3).reshape(batch, tokens, self.dim)
        out = self.proj(context)
        return out.reshape(tokens, self.dim) if single else out
