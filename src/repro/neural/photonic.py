"""Photonic execution of matrix products inside the neural network.

:class:`PhotonicExecutor` is the bridge between the software model and
the DPTC analytics: every matrix multiplication of the network is
(optionally) quantized and routed through the noisy analytic transform
of Eq. 9 in the forward pass, while gradients flow through the ideal
product (a straight-through estimator — the standard approach for
noise-aware training, as in the paper's artifact).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dptc import DPTC, DPTCGeometry
from repro.core.noise import NoiseModel
from repro.core.sharding import BACKENDS, SHARD_AXES, ShardedDPTC
from repro.neural.autograd import Tensor
from repro.neural.quantization import QuantConfig, fake_quantize


@dataclass
class PhotonicExecutor:
    """Executes neural matmuls on a (noisy) DPTC model.

    Attributes:
        geometry: tensor-core dimensions (wavelength count drives the
            dispersion profile used in Fig. 14's wavelength sweep).
        noise: non-ideality bundle; ideal -> pure quantized execution.
        quant: weight/activation precision; ``None`` disables
            quantization (full-precision floats on an ideal core).
        rng: noise sampling stream (seed for reproducibility).
        num_cores: DPTC cores to shard batched matmuls over.  1 keeps
            the single-core engine (``shard_axis``/``backend`` are then
            inert); >1 shards across a :class:`ShardedDPTC` grid
            (bit-identical on the ideal path, per-core noise streams
            otherwise).
        shard_axis: ``"batch"`` splits the leading batch axis across
            the cores; ``"contraction"`` splits the K axis, with
            digital partial-sum accumulation after photodetection.
        backend: ``"thread"`` or ``"process"`` shard execution;
            bit-equal for equal seeds, process gives true parallelism
            on multi-CPU hosts.
        chunk_size: when set, chunk each core's batched matmul along
            the leading batch axis and pipeline the chunks (SAMPLE +
            ENCODE of chunk ``k+1`` overlapping COMPUTE + DETECT of
            chunk ``k``).  Bit-identical to sequential per-chunk
            execution for equal seeds; ``None`` keeps the whole-batch
            draw order.
        pipeline_depth: chunks the prefetch stage may run ahead; 0
            disables the overlap (same schedule, strictly sequential).
    """

    geometry: DPTCGeometry = field(default_factory=DPTCGeometry)
    noise: NoiseModel = field(default_factory=NoiseModel.ideal)
    quant: QuantConfig | None = field(default_factory=QuantConfig.int4)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
    num_cores: int = 1
    shard_axis: str = "batch"
    backend: str = "thread"
    chunk_size: int | None = None
    pipeline_depth: int = 1

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.shard_axis not in SHARD_AXES:
            raise ValueError(
                f"shard_axis must be one of {SHARD_AXES}, got {self.shard_axis!r}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1 or None, got {self.chunk_size}"
            )
        if self.pipeline_depth < 0:
            raise ValueError(
                f"pipeline_depth must be >= 0, got {self.pipeline_depth}"
            )
        if self.num_cores == 1 and self.chunk_size is None:
            # Degenerate grid: the plain batched engine (a ShardedDPTC
            # with one core computes the same thing through the same
            # code path; skip the pool machinery entirely).
            self._dptc = DPTC(self.geometry, self.noise)
        else:
            self._dptc = ShardedDPTC(
                num_cores=self.num_cores,
                geometry=self.geometry,
                noise=self.noise,
                shard_axis=self.shard_axis,
                backend=self.backend,
                chunk_size=self.chunk_size,
                pipeline_depth=self.pipeline_depth,
            )

    def close(self) -> None:
        """Release the sharded engine's worker pool (no-op single-core)."""
        if isinstance(self._dptc, ShardedDPTC):
            self._dptc.close()

    def __enter__(self) -> "PhotonicExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Pool-owning executors can be used in `with` blocks (the
        # serving worker relies on this for lifecycle management).
        self.close()

    @classmethod
    def ideal(
        cls,
        num_cores: int = 1,
        shard_axis: str = "batch",
        backend: str = "thread",
        chunk_size: int | None = None,
        pipeline_depth: int = 1,
    ) -> "PhotonicExecutor":
        """Exact digital arithmetic (no quantization, no noise)."""
        return cls(
            noise=NoiseModel.ideal(),
            quant=None,
            num_cores=num_cores,
            shard_axis=shard_axis,
            backend=backend,
            chunk_size=chunk_size,
            pipeline_depth=pipeline_depth,
        )

    @classmethod
    def digital_reference(cls, quant: QuantConfig | None = None) -> "PhotonicExecutor":
        """The paper's 'GPU' reference: quantized but noise-free."""
        return cls(noise=NoiseModel.ideal(), quant=quant or QuantConfig.int4())

    @classmethod
    def paper_default(
        cls,
        quant: QuantConfig | None = None,
        seed: int | None = None,
        num_cores: int = 1,
        shard_axis: str = "batch",
        backend: str = "thread",
        chunk_size: int | None = None,
        pipeline_depth: int = 1,
    ) -> "PhotonicExecutor":
        """Quantized execution with the paper's full noise model."""
        return cls(
            noise=NoiseModel.paper_default(),
            quant=quant or QuantConfig.int4(),
            rng=np.random.default_rng(seed),
            num_cores=num_cores,
            shard_axis=shard_axis,
            backend=backend,
            chunk_size=chunk_size,
            pipeline_depth=pipeline_depth,
        )

    def matmul(self, a: Tensor, b: Tensor, weight_operand: int | None = None) -> Tensor:
        """Differentiable ``a @ b`` executed photonically.

        Args:
            a, b: tensors of rank >= 2; leading batch axes (batch,
                heads, ...) broadcast numpy-style, so a whole
                ``[batch, heads, tokens, dim]`` attention stack — or a
                2-D weight against 3-D activations — runs in one
                batched photonic call.
            weight_operand: 0 or 1 if one operand is a weight matrix
                (quantized at ``quant.weight_bits``); activations use
                ``quant.activation_bits``.
        """
        if self.quant is not None:
            bits_a = (
                self.quant.weight_bits
                if weight_operand == 0
                else self.quant.activation_bits
            )
            bits_b = (
                self.quant.weight_bits
                if weight_operand == 1
                else self.quant.activation_bits
            )
            # Per-matrix scales: each [m, d] slice of a stacked operand
            # gets its own grid (like the DPTC's per-matrix beta), so
            # batched execution quantizes each sample exactly as the
            # per-sample path would — no cross-batch scale coupling.
            a = fake_quantize(a, bits_a, per_matrix=True)
            b = fake_quantize(b, bits_b, per_matrix=True)

        out_data = self._execute(a.data, b.data)

        def backward(grad: np.ndarray) -> None:
            # Straight-through: gradients of the ideal matrix product.
            if a.requires_grad:
                a.accumulate_grad(grad @ np.swapaxes(b.data, -1, -2))
            if b.requires_grad:
                b.accumulate_grad(np.swapaxes(a.data, -1, -2) @ grad)

        return Tensor.make(out_data, (a, b), backward)

    def _execute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # The DPTC engine is batched end-to-end: any leading batch shape
        # runs as whole-batch matmul expressions with no Python loop.
        return self._dptc.matmul(a, b, rng=self.rng)
