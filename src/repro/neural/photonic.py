"""Photonic execution of matrix products inside the neural network.

:class:`PhotonicExecutor` is the bridge between the software model and
the DPTC analytics: every matrix multiplication of the network is
(optionally) quantized and routed through the noisy analytic transform
of Eq. 9 in the forward pass, while gradients flow through the ideal
product (a straight-through estimator — the standard approach for
noise-aware training, as in the paper's artifact).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dptc import DPTC, DPTCGeometry
from repro.core.noise import NoiseModel
from repro.neural.autograd import Tensor
from repro.neural.quantization import QuantConfig, fake_quantize


@dataclass
class PhotonicExecutor:
    """Executes neural matmuls on a (noisy) DPTC model.

    Attributes:
        geometry: tensor-core dimensions (wavelength count drives the
            dispersion profile used in Fig. 14's wavelength sweep).
        noise: non-ideality bundle; ideal -> pure quantized execution.
        quant: weight/activation precision; ``None`` disables
            quantization (full-precision floats on an ideal core).
        rng: noise sampling stream (seed for reproducibility).
    """

    geometry: DPTCGeometry = field(default_factory=DPTCGeometry)
    noise: NoiseModel = field(default_factory=NoiseModel.ideal)
    quant: QuantConfig | None = field(default_factory=QuantConfig.int4)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def __post_init__(self) -> None:
        self._dptc = DPTC(self.geometry, self.noise)

    @classmethod
    def ideal(cls) -> "PhotonicExecutor":
        """Exact digital arithmetic (no quantization, no noise)."""
        return cls(noise=NoiseModel.ideal(), quant=None)

    @classmethod
    def digital_reference(cls, quant: QuantConfig | None = None) -> "PhotonicExecutor":
        """The paper's 'GPU' reference: quantized but noise-free."""
        return cls(noise=NoiseModel.ideal(), quant=quant or QuantConfig.int4())

    @classmethod
    def paper_default(
        cls,
        quant: QuantConfig | None = None,
        seed: int | None = None,
    ) -> "PhotonicExecutor":
        """Quantized execution with the paper's full noise model."""
        return cls(
            noise=NoiseModel.paper_default(),
            quant=quant or QuantConfig.int4(),
            rng=np.random.default_rng(seed),
        )

    def matmul(self, a: Tensor, b: Tensor, weight_operand: int | None = None) -> Tensor:
        """Differentiable ``a @ b`` executed photonically.

        Args:
            a, b: tensors of rank >= 2; leading batch axes (batch,
                heads, ...) broadcast numpy-style, so a whole
                ``[batch, heads, tokens, dim]`` attention stack — or a
                2-D weight against 3-D activations — runs in one
                batched photonic call.
            weight_operand: 0 or 1 if one operand is a weight matrix
                (quantized at ``quant.weight_bits``); activations use
                ``quant.activation_bits``.
        """
        if self.quant is not None:
            bits_a = (
                self.quant.weight_bits
                if weight_operand == 0
                else self.quant.activation_bits
            )
            bits_b = (
                self.quant.weight_bits
                if weight_operand == 1
                else self.quant.activation_bits
            )
            a = fake_quantize(a, bits_a)
            b = fake_quantize(b, bits_b)

        out_data = self._execute(a.data, b.data)

        def backward(grad: np.ndarray) -> None:
            # Straight-through: gradients of the ideal matrix product.
            if a.requires_grad:
                a.accumulate_grad(grad @ np.swapaxes(b.data, -1, -2))
            if b.requires_grad:
                b.accumulate_grad(np.swapaxes(a.data, -1, -2) @ grad)

        return Tensor.make(out_data, (a, b), backward)

    def _execute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # The DPTC engine is batched end-to-end: any leading batch shape
        # runs as whole-batch matmul expressions with no Python loop.
        return self._dptc.matmul(a, b, rng=self.rng)
