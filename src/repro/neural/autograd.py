"""A small reverse-mode automatic differentiation engine on numpy.

This is the repository's PyTorch substitute: enough of a tensor library
to train and run quantized, noise-injected Transformers.  Tensors wrap
numpy arrays and record a backward closure per operation; gradients
flow through a topological sort of the recorded graph.

Design notes:

* broadcasting follows numpy semantics; gradients are un-broadcast by
  summing over expanded axes;
* custom operations (photonic matmul with straight-through gradients,
  fake quantization, embedding gather) build directly on
  :meth:`Tensor.make` rather than subclassing;
* there is no grad-accumulation tape reuse — each forward builds a
  fresh graph, which is plenty for the model sizes used here.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np
from scipy.special import erf as _scipy_erf

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the context (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with reverse-mode gradient support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=float)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad and _grad_enabled
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None

    # -- construction -------------------------------------------------------
    @classmethod
    def make(
        cls,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build an op result node; records the graph only when needed."""
        parents = tuple(parents)
        needs = _grad_enabled and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=needs)
        if needs:
            out._parents = parents
            out._backward = backward
        return out

    @classmethod
    def zeros(cls, *shape: int, requires_grad: bool = False) -> "Tensor":
        return cls(np.zeros(shape), requires_grad=requires_grad)

    @classmethod
    def randn(
        cls,
        *shape: int,
        scale: float = 1.0,
        rng: np.random.Generator | None = None,
        requires_grad: bool = False,
    ) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng()
        return cls(rng.normal(0.0, scale, shape), requires_grad=requires_grad)

    # -- introspection -----------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # -- autograd ------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this node (defaults to d(self)/d(self)=1)."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a non-differentiable tensor")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    f"scalar output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)

        order: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            visited.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if parent.requires_grad and id(parent) not in visited:
                        visited.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self)
        self.grad = np.asarray(grad, dtype=float)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=float), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic -----------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad)
            if other.requires_grad:
                other.accumulate_grad(grad)

        return Tensor.make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(-grad)

        return Tensor.make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * other.data)
            if other.requires_grad:
                other.accumulate_grad(grad * self.data)

        return Tensor.make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad / other.data)
            if other.requires_grad:
                other.accumulate_grad(-grad * self.data / other.data**2)

        return Tensor.make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * exponent * self.data ** (exponent - 1))

        return Tensor.make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other.accumulate_grad(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor.make(out_data, (self, other), backward)

    # -- shape ops --------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad.reshape(original))

        return Tensor.make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad.transpose(inverse))

        return Tensor.make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out_data = np.swapaxes(self.data, a, b)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(np.swapaxes(grad, a, b))

        return Tensor.make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self.accumulate_grad(full)

        return Tensor.make(out_data, (self,), backward)

    # -- reductions -----------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % len(shape) for a in axes):
                    expanded = np.expand_dims(expanded, ax)
            self.accumulate_grad(np.broadcast_to(expanded, shape))

        return Tensor.make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else (
            np.prod(
                [
                    self.data.shape[a]
                    for a in (axis if isinstance(axis, tuple) else (axis,))
                ]
            )
        )
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    # -- elementwise functions -----------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * out_data)

        return Tensor.make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad / self.data)

        return Tensor.make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * (1.0 - out_data**2))

        return Tensor.make(out_data, (self,), backward)

    def erf(self) -> "Tensor":
        out_data = _scipy_erf(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(
                    grad * (2.0 / np.sqrt(np.pi)) * np.exp(-self.data**2)
                )

        return Tensor.make(out_data, (self,), backward)

    def maximum(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = np.maximum(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            chosen = self.data >= other.data
            if self.requires_grad:
                self.accumulate_grad(grad * chosen)
            if other.requires_grad:
                other.accumulate_grad(grad * ~chosen)

        return Tensor.make(out_data, (self, other), backward)


def concatenate(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an axis, with gradient routing."""
    if not tensors:
        raise ValueError("cannot concatenate an empty list")
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(lo, hi)
                tensor.accumulate_grad(grad[tuple(index)])

    return Tensor.make(out_data, tensors, backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, with gradient routing."""
    if not tensors:
        raise ValueError("cannot stack an empty list")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for tensor, slab in zip(tensors, slabs):
            if tensor.requires_grad:
                tensor.accumulate_grad(slab)

    return Tensor.make(out_data, tensors, backward)


def broadcast_to(tensor: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Broadcast a tensor to ``shape`` (gradients sum over expanded axes)."""
    out_data = np.broadcast_to(tensor.data, shape)

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            # accumulate_grad un-broadcasts down to the original shape.
            tensor.accumulate_grad(grad)

    return Tensor.make(out_data, (tensor,), backward)


def gather_rows(tensor: Tensor, row_indices: np.ndarray) -> Tensor:
    """Select one column per row: ``out[i] = tensor[i, idx[i]]``."""
    row_indices = np.asarray(row_indices, dtype=int)
    rows = np.arange(tensor.shape[0])
    out_data = tensor.data[rows, row_indices]

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            full = np.zeros_like(tensor.data)
            np.add.at(full, (rows, row_indices), grad)
            tensor.accumulate_grad(full)

    return Tensor.make(out_data, (tensor,), backward)


def embedding_lookup(table: Tensor, token_ids: np.ndarray) -> Tensor:
    """Row gather for embeddings: out[..., :] = table[ids[...], :]."""
    token_ids = np.asarray(token_ids, dtype=int)
    out_data = table.data[token_ids]

    def backward(grad: np.ndarray) -> None:
        if table.requires_grad:
            full = np.zeros_like(table.data)
            np.add.at(full, token_ids.reshape(-1), grad.reshape(-1, table.shape[1]))
            table.accumulate_grad(full)

    return Tensor.make(out_data, (table,), backward)
