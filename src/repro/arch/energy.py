"""Workload energy model (Eq. 11) with the paper's breakdown categories.

For every GEMM the model charges:

* **operand encoding** — DAC + MZM energy per encoded scalar, with the
  crossbar's intra-core sharing (Eq. 6) and the architecture-level
  inter-core broadcast reducing the counts;
* **detection** — photodiode pairs per DDot output plus TIAs after the
  (optional) intra-tile analog summation point;
* **A/D conversion** — one conversion per summation point per
  ``temporal_accumulation_depth`` cycles;
* **laser and locking** — continuous powers integrated over the op's
  wall-clock time;
* **data movement** — HBM weight streaming, SRAM staging, DAC feeds and
  output/partial-sum traffic through the memory hierarchy;
* **static** — digital processing and SRAM leakage over wall time.

Categories follow Fig. 11/12: the *op1* operand is the one tiled across
tiles (the weight matrix for linear layers, Q for attention); *op2* is
the operand shared via broadcast (activations / K^T).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.arch.config import AcceleratorConfig
from repro.arch.latency import gemm_cycles, gemm_tile_count, workload_latency
from repro.arch.memory import MemorySystem
from repro.arch.power import DIGITAL_POWER_BASE, DIGITAL_POWER_PER_TILE, laser_power
from repro.devices.scaling import adc_energy_per_conversion, dac_energy_per_conversion
from repro.workloads.gemm import GEMMOp

CAT_LASER = "laser"
CAT_OP1_MOD = "op1-mod"
CAT_OP1_DAC = "op1-dac"
CAT_OP2_MOD = "op2-mod"
CAT_OP2_DAC = "op2-dac"
CAT_DETECTION = "det"
CAT_ADC = "adc"
CAT_DATA_MOVEMENT = "data-movement"
CAT_STATIC = "static"

CATEGORIES = (
    CAT_LASER,
    CAT_OP1_MOD,
    CAT_OP1_DAC,
    CAT_OP2_MOD,
    CAT_OP2_DAC,
    CAT_DETECTION,
    CAT_ADC,
    CAT_DATA_MOVEMENT,
    CAT_STATIC,
)


@dataclass
class EnergyReport:
    """Energy (J) per breakdown category."""

    by_category: dict[str, float] = field(
        default_factory=lambda: {cat: 0.0 for cat in CATEGORIES}
    )

    def add(self, category: str, joules: float) -> None:
        if category not in self.by_category:
            raise KeyError(f"unknown energy category {category!r}")
        if joules < 0:
            raise ValueError(f"energy must be >= 0, got {joules}")
        self.by_category[category] += joules

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        merged = EnergyReport()
        for cat in CATEGORIES:
            merged.by_category[cat] = self.by_category.get(
                cat, 0.0
            ) + other.by_category.get(cat, 0.0)
        return merged

    @property
    def total(self) -> float:
        return sum(self.by_category.values())

    @property
    def encoding(self) -> float:
        """All operand encoding energy (both operands, DAC + modulation)."""
        return sum(
            self.by_category[cat]
            for cat in (CAT_OP1_MOD, CAT_OP1_DAC, CAT_OP2_MOD, CAT_OP2_DAC)
        )

    def fraction(self, category: str) -> float:
        return self.by_category[category] / self.total

    def normalized_to(self, reference: float) -> dict[str, float]:
        """Per-category values divided by a reference total (for the
        normalized stacked bars of Fig. 11/12)."""
        if reference <= 0:
            raise ValueError("reference energy must be positive")
        return {cat: val / reference for cat, val in self.by_category.items()}


class LTEnergyModel:
    """Energy model of a Lightening-Transformer configuration."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config
        self.memory = MemorySystem(config)
        lib = config.library
        self._e_dac = dac_energy_per_conversion(config.bits, config.clock, lib.dac)
        self._e_mzm = lib.mzm.tuning_power / config.clock
        self._e_pd_pair = 2.0 * lib.photodetector.power / config.clock
        self._e_tia = lib.tia.power / config.clock
        self._e_adc = adc_energy_per_conversion(config.bits, lib.adc)
        self._p_laser = laser_power(config)
        self._p_locking = config.n_microdisks * lib.microdisk.locking_power
        self._p_static = (
            DIGITAL_POWER_PER_TILE * config.n_tiles
            + DIGITAL_POWER_BASE
            + self.memory.total_leakage
        )
        self._element_bytes = config.bits / 8.0

    # -- encoding counts ---------------------------------------------------
    def encoding_counts(self, op: GEMMOp) -> tuple[float, float]:
        """(op1, op2) scalar encoding counts for one GEMM op.

        Following the Fig. 5 mapping, op1 is the M1 operand — tiled
        along its larger tile dimension and dealt spatially to tiles —
        and op2 is the M2 operand broadcast to all of them.  For the
        paper's workloads op1 coincides with the weight matrix on
        linear layers and with Q on attention.  Crossbar sharing and
        the inter-core broadcast reduce the respective counts.
        """
        geometry = self.config.geometry
        opt = self.config.optimizations
        tiles_m, tiles_d, tiles_n = geometry.tile_counts(op.m, op.k, op.n)
        tiles = tiles_m * tiles_d * tiles_n * op.count

        a_encodes = float(tiles * geometry.n_h * geometry.n_lambda)
        b_encodes = float(tiles * geometry.n_lambda * geometry.n_v)

        # The operand with more tile blocks is dealt across tiles (M1);
        # the other is common to all tiles and broadcast (M2).
        a_is_spatial = tiles_m >= tiles_n
        if a_is_spatial:
            op1_encodes, op2_encodes = a_encodes, b_encodes
            spatial_tiles = tiles_m * op.count
            crossbar_blowup = geometry.n_v
        else:
            op1_encodes, op2_encodes = b_encodes, a_encodes
            spatial_tiles = tiles_n * op.count
            crossbar_blowup = geometry.n_h

        if not opt.crossbar_operand_sharing:
            # Input-broadcast-only topology: the tile-stationary operand
            # is modulated separately for every DDot in the crossbar.
            op1_encodes *= crossbar_blowup

        if opt.inter_core_broadcast:
            # The same M2 chunk serves the M1 chunks mapped to different
            # tiles concurrently: modulation happens once per group.
            op2_encodes /= min(self.config.n_tiles, max(1, spatial_tiles))

        return op1_encodes, op2_encodes

    # -- per-op energy ---------------------------------------------------
    def gemm_energy(self, op: GEMMOp) -> EnergyReport:
        """Energy of one GEMM op, split by category."""
        config = self.config
        geometry = config.geometry
        opt = config.optimizations
        report = EnergyReport()

        tiles = gemm_tile_count(config, op)
        wall_time = gemm_cycles(config, op) * config.cycle_time

        op1_encodes, op2_encodes = self.encoding_counts(op)
        report.add(CAT_OP1_DAC, op1_encodes * self._e_dac)
        report.add(CAT_OP1_MOD, op1_encodes * self._e_mzm)
        report.add(CAT_OP2_DAC, op2_encodes * self._e_dac)
        report.add(CAT_OP2_MOD, op2_encodes * self._e_mzm)

        # Microdisk locking keeps the WDM MUX/DEMUX on resonance for the
        # whole run; split between the operand planes by waveguide share.
        locking = self._p_locking * wall_time
        m1_share = config.m1_waveguides / config.n_modulated_waveguides
        report.add(CAT_OP1_MOD, locking * m1_share)
        report.add(CAT_OP2_MOD, locking * (1.0 - m1_share))

        detections = tiles * geometry.n_ddots
        summation = config.outputs_per_summation_point
        tia_events = detections / summation
        adc_events = tia_events / opt.effective_accumulation_depth
        report.add(
            CAT_DETECTION, detections * self._e_pd_pair + tia_events * self._e_tia
        )
        report.add(CAT_ADC, adc_events * self._e_adc)

        report.add(CAT_LASER, self._p_laser * wall_time)
        report.add(CAT_STATIC, self._p_static * wall_time)
        report.add(CAT_DATA_MOVEMENT, self._data_movement(op, op1_encodes, op2_encodes))
        return report

    def _data_movement(
        self, op: GEMMOp, op1_encodes: float, op2_encodes: float
    ) -> float:
        config = self.config
        bytes_per = self._element_bytes
        memory = self.memory

        # Weights stream from HBM once per inference (double buffered).
        energy = memory.hbm.access_energy(op.static_weight_elements * bytes_per)
        # Operands staged global SRAM -> tile SRAM once.
        staged = (op.operand_a_elements + op.operand_b_elements) * bytes_per
        energy += staged * memory.staging_energy_per_byte
        # Every encoding event reads its operand byte from the core buffer.
        energy += (op1_encodes + op2_encodes) * bytes_per * (
            memory.operand_feed_energy_per_byte
        )
        # Outputs: digital partial-sum accumulation and final store.
        tiles_d = math.ceil(op.k / config.geometry.n_lambda)
        digital_accums = math.ceil(
            tiles_d / config.optimizations.effective_accumulation_depth
        )
        accum_traffic = op.output_elements * bytes_per * 2.0 * digital_accums
        energy += accum_traffic * memory.operand_feed_energy_per_byte
        # Cross-core partial-sum accumulation (contraction sharding):
        # merging the k_splits per-core partials costs one read + one
        # write of the output word per digital add (Sec. IV dataflow).
        if op.k_splits > 1:
            cross_core_traffic = op.accumulation_adds * bytes_per * 2.0
            energy += cross_core_traffic * memory.operand_feed_energy_per_byte
        energy += op.output_elements * bytes_per * memory.output_store_energy_per_byte
        return energy

    # -- workload-level ----------------------------------------------------
    def workload_energy(self, ops: Iterable[GEMMOp]) -> EnergyReport:
        """Total energy of a GEMM trace."""
        report = EnergyReport()
        for op in ops:
            report = report + self.gemm_energy(op)
        return report

    def workload_edp(self, ops: Iterable[GEMMOp]) -> float:
        """Energy-delay product (J*s) of a GEMM trace."""
        ops = list(ops)
        return self.workload_energy(ops).total * workload_latency(self.config, ops)
