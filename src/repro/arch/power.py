"""Chip power model and breakdown (Fig. 8 and the Fig. 9 power scaling).

Power combines:

* data converters at the photonic clock, rescaled to the configured
  precision (``repro.devices.scaling``),
* operand modulation (MZM dynamic tuning + microdisk locking for the
  WDM MUX/DEMUX),
* detection (photodiode receivers + TIAs),
* the laser, derived from the DDot path loss budget, photodetector
  sensitivity and output precision (``repro.devices.laser``),
* SRAM leakage and the non-GEMM digital processing units.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.arch.memory import MemorySystem
from repro.devices.laser import ddot_path_loss, required_laser_power
from repro.devices.scaling import adc_power, dac_power

#: Non-GEMM digital processing power (softmax/LayerNorm/GELU engines,
#: accumulation, control), calibrated to the paper's Fig. 8 "others".
DIGITAL_POWER_PER_TILE = 0.86  # W
DIGITAL_POWER_BASE = 0.11  # W


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-category powers in watts."""

    by_category: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.by_category.values())

    def fraction(self, category: str) -> float:
        return self.by_category[category] / self.total


def laser_power(config: AcceleratorConfig) -> float:
    """Electrical laser power (W) for all WDM channels of the chip."""
    budget = ddot_path_loss(
        config.library,
        broadcast_fanout=config.broadcast_fanout,
        crossings=config.mean_crossings,
    )
    return required_laser_power(
        config.n_wdm_channels, budget.total_db, config.bits, config.library
    )


def power_breakdown(config: AcceleratorConfig) -> PowerBreakdown:
    """Full-chip power breakdown for an accelerator configuration."""
    lib = config.library

    dac = config.n_dacs * dac_power(config.bits, config.clock, lib.dac)
    adc = config.n_adcs * adc_power(config.bits, config.adc_sample_rate, lib.adc)

    modulation = (
        config.n_mzms * lib.mzm.tuning_power
        + config.n_microdisks * lib.microdisk.locking_power
    )

    detection = (
        config.n_photodiodes * lib.photodetector.power
        + config.n_tias * lib.tia.power
    )

    memory = MemorySystem(config).total_leakage
    digital = DIGITAL_POWER_PER_TILE * config.n_tiles + DIGITAL_POWER_BASE

    return PowerBreakdown(
        {
            "dac": dac,
            "adc": adc,
            "modulation": modulation,
            "detection": detection,
            "laser": laser_power(config),
            "memory": memory,
            "digital": digital,
        }
    )


def single_core_power_breakdown(config: AcceleratorConfig) -> PowerBreakdown:
    """Fig. 9 view: DAC / ADC / Modulation / Photodetector / Laser only."""
    full = power_breakdown(config).by_category
    return PowerBreakdown(
        {
            "dac": full["dac"],
            "adc": full["adc"],
            "modulation": full["modulation"],
            "detection": full["detection"],
            "laser": full["laser"],
        }
    )
