"""Heterogeneous DPTC core-shape search (end of Sec. VI-A).

The paper: "we have the flexibility to explore heterogeneous DPTCs by
having different/searched core sizes ... to better suit workloads with
specific sparse patterns, avoiding low-utilization scenarios.  For
example, we can have a specific DPTC engine for vector-matrix
multiplication by setting Nh to 1."

This module implements that search: enumerate core shapes
``(Nh, Nlambda, Nv)`` under a MACs-per-cycle budget, score each on a
GEMM workload by cycles and utilization, and return the best shape.
The headline result reproduces the paper's example: row-vector-shaped
workloads (non-block-wise sparsity) prefer ``Nh = 1`` engines, while
square GEMMs prefer the balanced 12x12x12 core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.dptc import DPTCGeometry
from repro.workloads.gemm import GEMMOp


@dataclass(frozen=True)
class ShapeEvaluation:
    """Score of one core shape on a workload."""

    geometry: DPTCGeometry
    cycles: int
    utilization: float  #: useful MACs / provisioned MACs

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.geometry.n_h, self.geometry.n_lambda, self.geometry.n_v)


def candidate_shapes(
    mac_budget: int,
    min_dim: int = 1,
    max_dim: int = 64,
) -> Iterator[DPTCGeometry]:
    """Enumerate core shapes with ``Nh * Nlambda * Nv <= mac_budget``.

    Dimensions are swept over powers of two plus the paper's 12, bounded
    by ``max_dim``; shapes that underuse the budget by more than half
    are skipped (they would waste the area budget).
    """
    if mac_budget < 1:
        raise ValueError(f"mac_budget must be >= 1, got {mac_budget}")
    dims = sorted(
        {d for d in (1, 2, 4, 8, 12, 16, 24, 32, 48, 64) if min_dim <= d <= max_dim}
    )
    for n_h in dims:
        for n_lambda in dims:
            for n_v in dims:
                macs = n_h * n_lambda * n_v
                if mac_budget / 2 <= macs <= mac_budget:
                    yield DPTCGeometry(n_h=n_h, n_v=n_v, n_lambda=n_lambda)


def evaluate_shape(
    geometry: DPTCGeometry, workload: Iterable[GEMMOp]
) -> ShapeEvaluation:
    """Cycles and utilization of one core shape on a GEMM workload."""
    workload = list(workload)
    if not workload:
        raise ValueError("workload must contain at least one GEMM op")
    cycles = 0
    useful = 0
    for op in workload:
        tiles_m, tiles_d, tiles_n = geometry.tile_counts(op.m, op.k, op.n)
        cycles += tiles_m * tiles_d * tiles_n * op.count
        useful += op.macs
    provisioned = cycles * geometry.macs_per_cycle
    return ShapeEvaluation(
        geometry=geometry,
        cycles=cycles,
        utilization=useful / provisioned,
    )


def search_core_shape(
    workload: Iterable[GEMMOp],
    mac_budget: int = 1728,
    min_dim: int = 1,
    max_dim: int = 64,
) -> ShapeEvaluation:
    """Best core shape for a workload under a MACs-per-cycle budget.

    Primary objective: fewest cycles; utilization breaks ties (a shape
    that wastes less light/modulation for the same cycle count wins).
    """
    workload = list(workload)
    best: ShapeEvaluation | None = None
    for geometry in candidate_shapes(mac_budget, min_dim, max_dim):
        evaluation = evaluate_shape(geometry, workload)
        if (
            best is None
            or evaluation.cycles < best.cycles
            or (
                evaluation.cycles == best.cycles
                and evaluation.utilization > best.utilization
            )
        ):
            best = evaluation
    if best is None:
        raise ValueError(
            f"no candidate shape fits a MAC budget of {mac_budget}"
        )
    return best


def mvm_engine(mac_budget: int = 1728, contraction: int = 48) -> DPTCGeometry:
    """The paper's example special-purpose engine: ``Nh = 1`` for
    vector-matrix workloads (non-block-wise sparsity, LLM decode)."""
    n_v = max(1, mac_budget // contraction)
    return DPTCGeometry(n_h=1, n_v=n_v, n_lambda=contraction)
