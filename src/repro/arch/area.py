"""Chip area model and breakdown (Fig. 7 and the Fig. 9 area scaling).

Areas come from the Table III device footprints, multiplied by the
component counts that :class:`AcceleratorConfig` derives, with a
waveguide routing/spacing factor applied to the photonic crossbar
(device footprints alone under-count the laid-out array).

Breakdown categories follow the paper's figures:

* ``dac`` / ``adc`` — data converters,
* ``modulation`` — MZMs, WDM microdisks, and source phase shifters,
* ``photonic_core`` — the DDot crossbars,
* ``laser`` — on-chip lasers and micro-combs,
* ``memory`` — the SRAM hierarchy (PCACTI-substitute model),
* ``digital`` — TIAs, accumulation and non-GEMM processing units.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.arch.memory import MemorySystem
from repro.units import MM2

#: Waveguide routing / device spacing overhead on the laid-out crossbar.
CROSSBAR_ROUTING_FACTOR = 2.2

#: Non-GEMM digital processing (softmax, LayerNorm, GELU, accumulation,
#: control) — fixed area per tile plus a chip-level base, calibrated to
#: the paper's "others" share.
DIGITAL_AREA_PER_TILE = 0.20 * MM2
DIGITAL_AREA_BASE = 0.50 * MM2


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-category areas in m^2."""

    by_category: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.by_category.values())

    def fraction(self, category: str) -> float:
        return self.by_category[category] / self.total

    def as_mm2(self) -> dict[str, float]:
        return {key: value / MM2 for key, value in self.by_category.items()}

    @property
    def total_mm2(self) -> float:
        return self.total / MM2


def ddot_cell_area(config: AcceleratorConfig) -> float:
    """Footprint of one DDot engine (m^2), before routing overhead.

    Phase shifter + directional coupler + balanced photodiode pair +
    one waveguide crossing of the bus fabric.
    """
    lib = config.library
    return (
        lib.phase_shifter.area
        + lib.directional_coupler.area
        + 2 * lib.photodetector.area
        + lib.crossing.area
    )


def area_breakdown(config: AcceleratorConfig) -> AreaBreakdown:
    """Full-chip area breakdown for an accelerator configuration."""
    lib = config.library

    dac = config.n_dacs * lib.dac.area
    adc = config.n_adcs * lib.adc.area

    modulation = (
        config.n_mzms * lib.mzm.area
        + config.n_microdisks * lib.microdisk.area
        # one source phase shifter per modulated waveguide (Fig. 2b)
        + config.n_modulated_waveguides * lib.phase_shifter.area
    )

    photonic_core = (
        config.n_ddots * ddot_cell_area(config) * CROSSBAR_ROUTING_FACTOR
    )

    laser = (
        config.n_micro_combs * lib.micro_comb.area
        + config.n_lasers * lib.laser.area
    )

    memory = MemorySystem(config).total_area

    digital = (
        config.n_tias * lib.tia.area
        + config.n_tiles * DIGITAL_AREA_PER_TILE
        + DIGITAL_AREA_BASE
    )

    return AreaBreakdown(
        {
            "dac": dac,
            "adc": adc,
            "modulation": modulation,
            "photonic_core": photonic_core,
            "laser": laser,
            "memory": memory,
            "digital": digital,
        }
    )


def single_core_area_breakdown(config: AcceleratorConfig) -> AreaBreakdown:
    """Fig. 9 view: the five categories the paper plots for one DPTC.

    Memory and chip-level digital are excluded (the paper's single-core
    scaling study plots DAC / ADC / Modulation / Crossbar / Laser+Comb).
    """
    full = area_breakdown(config).by_category
    return AreaBreakdown(
        {
            "dac": full["dac"],
            "adc": full["adc"],
            "modulation": full["modulation"],
            "photonic_core": full["photonic_core"],
            "laser": full["laser"],
        }
    )
