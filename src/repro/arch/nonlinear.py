"""Digital processing units for the non-GEMM operations.

The paper assumes "all other non-GEMM operations are implemented using
digital electronics" (Sec. IV-A) clocked in the low-speed (500 MHz)
domain, and its latency results rely on those units keeping up with the
photonic cores.  This model makes that assumption checkable: it counts
the softmax / LayerNorm / GELU element operations per encoder layer and
converts them to time on a configurable number of SIMD lanes per tile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.units import GHZ
from repro.workloads.transformer import TransformerConfig

#: The paper's low-speed electronics clock domain.
DIGITAL_CLOCK = 0.5 * GHZ

#: SIMD lanes per tile.  Provisioned so the digital stage keeps up with
#: the photonic cores on the paper's workloads once pipelined — the
#: assumption behind Table V reporting GEMM-only latency.
DEFAULT_LANES_PER_TILE = 256


@dataclass(frozen=True)
class NonGEMMCounts:
    """Element-operation counts of one encoder layer's non-GEMM work."""

    softmax_elements: int
    layernorm_elements: int
    gelu_elements: int
    residual_elements: int

    @property
    def total(self) -> int:
        return (
            self.softmax_elements
            + self.layernorm_elements
            + self.gelu_elements
            + self.residual_elements
        )


def layer_nongemm_counts(config: TransformerConfig) -> NonGEMMCounts:
    """Non-GEMM element operations of one encoder layer."""
    seq = config.seq_len
    dim = config.dim
    # Softmax over every attention row of every head (exp + norm).
    softmax = config.heads * seq * seq
    # Two LayerNorms over [seq, dim].
    layernorm = 2 * seq * dim
    # GELU over the FFN hidden activations.
    gelu = seq * config.ffn_dim
    # Two residual additions over [seq, dim].
    residual = 2 * seq * dim
    return NonGEMMCounts(softmax, layernorm, gelu, residual)


@dataclass(frozen=True)
class DigitalUnitModel:
    """Throughput model of the per-tile digital processing units."""

    clock: float = DIGITAL_CLOCK
    lanes_per_tile: int = DEFAULT_LANES_PER_TILE

    def __post_init__(self) -> None:
        if self.clock <= 0 or self.lanes_per_tile < 1:
            raise ValueError("clock and lane count must be positive")

    def layer_time(
        self, model: TransformerConfig, accelerator: AcceleratorConfig
    ) -> float:
        """Seconds of digital work per encoder layer on the whole chip."""
        counts = layer_nongemm_counts(model)
        lanes = self.lanes_per_tile * accelerator.n_tiles
        cycles = counts.total / lanes
        return cycles / self.clock

    def workload_time(
        self, model: TransformerConfig, accelerator: AcceleratorConfig
    ) -> float:
        """Total digital seconds for a full inference."""
        return model.depth * self.layer_time(model, accelerator)
