"""Top-level accelerator facade: one object, every evaluation quantity.

:class:`LighteningTransformer` binds a configuration to the area,
power, latency, and energy models plus a functional (noisy) execution
path, and returns :class:`RunResult` records with the metrics the
paper's tables report (energy, latency, EDP, FPS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.arch.area import AreaBreakdown, area_breakdown
from repro.arch.config import AcceleratorConfig, lt_base
from repro.arch.dataflow import os_dataflow_matmul
from repro.arch.energy import EnergyReport, LTEnergyModel
from repro.arch.latency import workload_cycles, workload_latency
from repro.arch.power import PowerBreakdown, power_breakdown
from repro.core.dptc import DPTC
from repro.core.noise import NoiseModel
from repro.core.sharding import ShardedDPTC
from repro.workloads.gemm import GEMMOp
from repro.workloads.transformer import TransformerConfig, gemm_trace


@dataclass(frozen=True)
class RunResult:
    """Metrics of one workload execution."""

    workload: str
    cycles: int
    latency: float  #: s
    energy: EnergyReport

    @property
    def energy_joules(self) -> float:
        return self.energy.total

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s)."""
        return self.energy.total * self.latency

    @property
    def fps(self) -> float:
        """Single-batch inferences per second."""
        return 1.0 / self.latency


class LighteningTransformer:
    """A Lightening-Transformer accelerator instance.

    Args:
        config: architecture configuration (defaults to LT-B).
        noise: non-ideality bundle for functional execution (defaults
            to exact arithmetic; performance models are unaffected).
        num_cores: DPTC cores the functional :meth:`matmul` shards a
            batched product over.  ``None`` keeps the single logical
            core; pass ``config.n_cores`` to execute on the full grid
            the performance models already assume.  Ideal-path results
            are bit-identical at every core count.
        shard_axis: how the functional grid splits a product —
            ``"batch"`` (leading batch axis, concatenated shards) or
            ``"contraction"`` (per-core K-slabs with digital
            partial-sum accumulation after photodetection, the Sec. IV
            dataflow).
        backend: ``"thread"`` or ``"process"`` shard execution;
            bit-equal for equal seeds.
    """

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        noise: NoiseModel | None = None,
        num_cores: int | None = None,
        shard_axis: str = "batch",
        backend: str = "thread",
    ) -> None:
        self.config = config if config is not None else lt_base()
        self.noise = noise if noise is not None else NoiseModel.ideal()
        self.energy_model = LTEnergyModel(self.config)
        self.num_cores = 1 if num_cores is None else num_cores
        self.shard_axis = shard_axis
        self.backend = backend
        if self.num_cores == 1 and shard_axis == "batch" and backend == "thread":
            self._dptc = DPTC(self.config.geometry, self.noise)
        else:
            # ShardedDPTC validates shard_axis/backend; num_cores == 1
            # with non-default knobs still degenerates to the plain
            # batched engine, just through the sharded front-end.
            self._dptc = ShardedDPTC(
                num_cores=self.num_cores,
                geometry=self.config.geometry,
                noise=self.noise,
                shard_axis=shard_axis,
                backend=backend,
            )

    def close(self) -> None:
        """Release the sharded engine's worker pool (no-op single-core).

        Process-backed grids hold spawned worker processes; without an
        explicit close they are only released when the engine is
        garbage-collected (weakref finalizer).
        """
        if isinstance(self._dptc, ShardedDPTC):
            self._dptc.close()

    def __enter__(self) -> "LighteningTransformer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Pool-owning accelerators can be used in `with` blocks.
        self.close()

    # -- static design metrics ----------------------------------------------
    def area(self) -> AreaBreakdown:
        """Chip area breakdown (Fig. 7)."""
        return area_breakdown(self.config)

    def power(self) -> PowerBreakdown:
        """Chip power breakdown (Fig. 8)."""
        return power_breakdown(self.config)

    @property
    def peak_tops(self) -> float:
        """Peak tera-operations per second."""
        return self.config.peak_ops / 1e12

    # -- workload execution (performance models) -----------------------------
    def run(self, workload: TransformerConfig | Iterable[GEMMOp]) -> RunResult:
        """Evaluate latency and energy of a Transformer or GEMM trace."""
        if isinstance(workload, TransformerConfig):
            name = workload.name
            ops = gemm_trace(workload)
        else:
            ops = list(workload)
            name = ops[0].name if len(ops) == 1 else f"trace[{len(ops)} ops]"
        return RunResult(
            workload=name,
            cycles=workload_cycles(self.config, ops),
            latency=workload_latency(self.config, ops),
            energy=self.energy_model.workload_energy(ops),
        )

    # -- functional execution -------------------------------------------------
    def matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Numerically execute ``a @ b`` on the (noisy) photonic cores."""
        return self._dptc.matmul(a, b, rng=rng)

    def matmul_through_dataflow(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Execute ``a @ b`` through the explicit OS-dataflow schedule.

        Slower than :meth:`matmul` but exercises the exact tiling,
        analog accumulation windows, and digital accumulation path.
        """
        if self.noise.is_ideal:
            tile = None
        else:
            def tile(x: np.ndarray, y: np.ndarray) -> np.ndarray:
                return self._dptc.tile_matmul(x, y, rng=rng)

        return os_dataflow_matmul(self.config, a, b, tile)
