"""Accelerator-level behavioural simulator.

Configurations (Table IV presets), the memory hierarchy, and the area /
power / latency / energy models that regenerate the paper's
architecture evaluation, plus a functional output-stationary dataflow.
"""

from repro.arch.accelerator import LighteningTransformer, RunResult
from repro.arch.area import (
    AreaBreakdown,
    area_breakdown,
    ddot_cell_area,
    single_core_area_breakdown,
)
from repro.arch.config import (
    DEFAULT_CLOCK,
    AcceleratorConfig,
    ArchOptimizations,
    lt_base,
    lt_broadcast_base,
    lt_crossbar_base,
    lt_large,
    single_core,
)
from repro.arch.dataflow import (
    OutputStationarySchedule,
    TileAssignment,
    os_dataflow_matmul,
)
from repro.arch.energy import (
    CAT_ADC,
    CAT_DATA_MOVEMENT,
    CAT_DETECTION,
    CAT_LASER,
    CAT_OP1_DAC,
    CAT_OP1_MOD,
    CAT_OP2_DAC,
    CAT_OP2_MOD,
    CAT_STATIC,
    CATEGORIES,
    EnergyReport,
    LTEnergyModel,
)
from repro.arch.latency import (
    CoreLatency,
    accumulation_cycles,
    core_path_latency,
    effective_throughput_ops,
    gemm_cycles,
    gemm_tile_count,
    workload_cycles,
    workload_latency,
)
from repro.arch.heterogeneous import (
    ShapeEvaluation,
    candidate_shapes,
    evaluate_shape,
    mvm_engine,
    search_core_shape,
)
from repro.arch.memory import HBMModel, MemorySystem, SRAMMacro
from repro.arch.nonlinear import (
    DIGITAL_CLOCK,
    DigitalUnitModel,
    NonGEMMCounts,
    layer_nongemm_counts,
)
from repro.arch.pipeline import PipelineReport, pipeline_report
from repro.arch.power import (
    PowerBreakdown,
    laser_power,
    power_breakdown,
    single_core_power_breakdown,
)

__all__ = [
    "AcceleratorConfig",
    "ArchOptimizations",
    "AreaBreakdown",
    "CAT_ADC",
    "CAT_DATA_MOVEMENT",
    "CAT_DETECTION",
    "CAT_LASER",
    "CAT_OP1_DAC",
    "CAT_OP1_MOD",
    "CAT_OP2_DAC",
    "CAT_OP2_MOD",
    "CAT_STATIC",
    "CATEGORIES",
    "CoreLatency",
    "DEFAULT_CLOCK",
    "DIGITAL_CLOCK",
    "DigitalUnitModel",
    "EnergyReport",
    "HBMModel",
    "NonGEMMCounts",
    "PipelineReport",
    "LTEnergyModel",
    "LighteningTransformer",
    "MemorySystem",
    "OutputStationarySchedule",
    "PowerBreakdown",
    "RunResult",
    "SRAMMacro",
    "ShapeEvaluation",
    "TileAssignment",
    "area_breakdown",
    "candidate_shapes",
    "accumulation_cycles",
    "core_path_latency",
    "ddot_cell_area",
    "evaluate_shape",
    "mvm_engine",
    "search_core_shape",
    "effective_throughput_ops",
    "gemm_cycles",
    "gemm_tile_count",
    "laser_power",
    "layer_nongemm_counts",
    "lt_base",
    "pipeline_report",
    "lt_broadcast_base",
    "lt_crossbar_base",
    "lt_large",
    "os_dataflow_matmul",
    "power_breakdown",
    "single_core",
    "single_core_area_breakdown",
    "single_core_power_breakdown",
    "workload_cycles",
    "workload_latency",
]
