"""Pipelined execution of GEMM and non-GEMM stages (the paper's
future-work knob: "the deep pipeline of the photonic/digital processing
unit is not adopted in this paper, which can be employed to further
improve the system performance").

Two execution disciplines over the per-layer (GEMM time, digital time)
pairs:

* **sequential** — each layer's digital work waits for its GEMMs and
  vice versa: total = sum(gemm_i + digital_i);
* **pipelined** — the digital units of layer ``i`` overlap the photonic
  cores already working on layer ``i+1``: a classic two-stage pipeline,
  total = sum(max-rate stages) + fill/drain.

The model also validates the paper's implicit assumption that digital
time stays below GEMM time (so ignoring it in Table V is sound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.arch.latency import workload_latency
from repro.arch.nonlinear import DigitalUnitModel
from repro.workloads.gemm import GEMMOp, MODULE_ATTENTION, MODULE_FFN, MODULE_PROJECTION
from repro.workloads.transformer import TransformerConfig, gemm_trace


@dataclass(frozen=True)
class PipelineReport:
    """Latency of one inference under both execution disciplines."""

    gemm_time: float  #: s, photonic GEMM work
    digital_time: float  #: s, non-GEMM digital work
    sequential_latency: float
    pipelined_latency: float

    @property
    def speedup(self) -> float:
        return self.sequential_latency / self.pipelined_latency

    @property
    def digital_hidden(self) -> bool:
        """True when pipelining fully hides the digital work."""
        return self.pipelined_latency <= self.gemm_time * 1.001


def _layer_gemm_ops(model: TransformerConfig) -> list[GEMMOp]:
    """The GEMMs of a single encoder layer (count collapsed to 1 layer)."""
    per_layer = []
    for op in gemm_trace(model, include_head=False):
        if op.module in (MODULE_ATTENTION, MODULE_PROJECTION, MODULE_FFN):
            instances_per_layer = op.count // model.depth
            per_layer.append(
                GEMMOp(
                    op.name,
                    op.m,
                    op.k,
                    op.n,
                    module=op.module,
                    dynamic=op.dynamic,
                    count=max(1, instances_per_layer),
                )
            )
    return per_layer


def pipeline_report(
    model: TransformerConfig,
    accelerator: AcceleratorConfig,
    digital: DigitalUnitModel | None = None,
) -> PipelineReport:
    """Compare sequential vs pipelined execution of a Transformer."""
    digital = digital if digital is not None else DigitalUnitModel()
    layer_ops = _layer_gemm_ops(model)
    gemm_per_layer = workload_latency(accelerator, layer_ops)
    digital_per_layer = digital.layer_time(model, accelerator)

    depth = model.depth
    gemm_total = depth * gemm_per_layer
    digital_total = depth * digital_per_layer
    sequential = gemm_total + digital_total
    # Two-stage pipeline across layers: steady state runs at the slower
    # stage's rate; the other stage's single iteration fills/drains.
    bottleneck = max(gemm_per_layer, digital_per_layer)
    other = min(gemm_per_layer, digital_per_layer)
    pipelined = depth * bottleneck + other
    return PipelineReport(
        gemm_time=gemm_total,
        digital_time=digital_total,
        sequential_latency=sequential,
        pipelined_latency=pipelined,
    )
