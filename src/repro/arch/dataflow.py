"""Output-stationary tiled dataflow (Fig. 5), executed functionally.

The paper's simulator "implements the detail of the tiling algorithm";
this module does the same: it decomposes a GEMM into the exact sequence
of ``[Nh, Nlambda] x [Nlambda, Nv]`` tile-MMs, assigns them to tiles
(spatial, along the M1 rows) and cycles (temporal), performs analog
partial-sum accumulation over the temporal-accumulation window, and
digital sequential accumulation across windows — numerically, so the
schedule's correctness is testable against a plain matrix product.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.arch.config import AcceleratorConfig


@dataclass(frozen=True)
class TileAssignment:
    """One tile-MM in the schedule."""

    cycle: int  #: accelerator clock cycle
    core: int  #: global core index executing the tile
    row_tile: int  #: M1 row-block index (spatial dimension)
    inner_tile: int  #: contraction block index
    col_tile: int  #: M2 column-block index


class OutputStationarySchedule:
    """Schedule of one ``[m, d] x [d, n]`` GEMM on the accelerator.

    Tiles are distributed round-robin over the ``Nt * Nc`` cores with
    the contraction dimension innermost, so consecutive cycles on one
    core accumulate into the same output block — the property the
    analog temporal accumulation of Sec. IV-C relies on.
    """

    def __init__(self, config: AcceleratorConfig, m: int, d: int, n: int) -> None:
        if min(m, d, n) < 1:
            raise ValueError(f"GEMM dims must be >= 1, got {(m, d, n)}")
        self.config = config
        self.m, self.d, self.n = m, d, n
        geometry = config.geometry
        self.row_tiles = math.ceil(m / geometry.n_h)
        self.inner_tiles = math.ceil(d / geometry.n_lambda)
        self.col_tiles = math.ceil(n / geometry.n_v)

    @property
    def total_tiles(self) -> int:
        return self.row_tiles * self.inner_tiles * self.col_tiles

    @property
    def total_cycles(self) -> int:
        return math.ceil(self.total_tiles / self.config.n_cores)

    def assignments(self) -> Iterator[TileAssignment]:
        """Yield every tile-MM with its cycle and core assignment.

        Output blocks (row, col) are dealt round-robin to cores; each
        core then walks the contraction dimension sequentially.
        """
        n_cores = self.config.n_cores
        blocks = [
            (row, col)
            for row in range(self.row_tiles)
            for col in range(self.col_tiles)
        ]
        # Per-core work queues of (row, col, inner) in contraction order.
        queues: list[list[tuple[int, int, int]]] = [[] for _ in range(n_cores)]
        for index, (row, col) in enumerate(blocks):
            queues[index % n_cores].extend(
                (row, col, inner) for inner in range(self.inner_tiles)
            )
        for core, queue in enumerate(queues):
            for cycle, (row, col, inner) in enumerate(queue):
                yield TileAssignment(
                    cycle=cycle,
                    core=core,
                    row_tile=row,
                    inner_tile=inner,
                    col_tile=col,
                )

    def execute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        tile_matmul: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    ) -> np.ndarray:
        """Run the GEMM through the schedule, tile by tile.

        Args:
            a, b: the operand matrices (``[m, d]`` and ``[d, n]``).
            tile_matmul: executor for one zero-padded
                ``[Nh, Nlambda] x [Nlambda, Nv]`` tile product; defaults
                to exact arithmetic.  Pass a noisy
                :meth:`repro.core.DPTC.tile_matmul` to simulate analog
                execution through the real dataflow.
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.shape != (self.m, self.d) or b.shape != (self.d, self.n):
            raise ValueError(
                f"operand shapes {a.shape} x {b.shape} do not match the "
                f"scheduled GEMM [{self.m},{self.d}] x [{self.d},{self.n}]"
            )
        if tile_matmul is None:
            tile_matmul = np.matmul

        geometry = self.config.geometry
        depth = self.config.optimizations.effective_accumulation_depth
        output = np.zeros((self.m, self.n))

        # Group per output block so analog accumulation windows are
        # explicit: partial photocurrents accumulate for `depth` inner
        # tiles before one A/D conversion and digital accumulation.
        for row in range(self.row_tiles):
            row_lo = row * geometry.n_h
            row_hi = min(row_lo + geometry.n_h, self.m)
            for col in range(self.col_tiles):
                col_lo = col * geometry.n_v
                col_hi = min(col_lo + geometry.n_v, self.n)
                digital_acc = np.zeros((geometry.n_h, geometry.n_v))
                analog_acc = np.zeros((geometry.n_h, geometry.n_v))
                window = 0
                for inner in range(self.inner_tiles):
                    inner_lo = inner * geometry.n_lambda
                    inner_hi = min(inner_lo + geometry.n_lambda, self.d)
                    a_tile = np.zeros((geometry.n_h, geometry.n_lambda))
                    b_tile = np.zeros((geometry.n_lambda, geometry.n_v))
                    a_tile[: row_hi - row_lo, : inner_hi - inner_lo] = a[
                        row_lo:row_hi, inner_lo:inner_hi
                    ]
                    b_tile[: inner_hi - inner_lo, : col_hi - col_lo] = b[
                        inner_lo:inner_hi, col_lo:col_hi
                    ]
                    analog_acc += tile_matmul(a_tile, b_tile)
                    window += 1
                    if window == depth:
                        digital_acc += analog_acc  # one A/D conversion
                        analog_acc = np.zeros_like(analog_acc)
                        window = 0
                if window:
                    digital_acc += analog_acc
                output[row_lo:row_hi, col_lo:col_hi] = digital_acc[
                    : row_hi - row_lo, : col_hi - col_lo
                ]
        return output


def os_dataflow_matmul(
    config: AcceleratorConfig,
    a: np.ndarray,
    b: np.ndarray,
    tile_matmul: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """Convenience wrapper: schedule and execute ``a @ b``."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible matmul shapes: {a.shape} x {b.shape}")
    schedule = OutputStationarySchedule(config, a.shape[0], a.shape[1], b.shape[1])
    return schedule.execute(a, b, tile_matmul)
