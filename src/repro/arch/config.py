"""Accelerator configuration: Table IV presets and derived component counts.

An :class:`AcceleratorConfig` fixes the architecture (tiles, cores per
tile, DPTC geometry, precision, clock, memory sizes, optimization
flags) and derives every component count the area/power/energy models
need: DAC/MZM channels, microdisks, photodiodes, TIAs, ADCs, lasers and
combs.  The derivations follow Fig. 4 of the paper:

* every modulated waveguide carries ``n_lambda`` wavelengths, each with
  its own DAC + MZM, and a microdisk pair (DEMUX + MUX) per wavelength;
* with inter-core operand broadcast the shared-M2 modulation units are
  provisioned once per core *position* (``Nc`` sets) instead of per
  core, giving the architecture-level ``Nt x`` modulation saving;
* every DDot has a balanced photodiode pair; TIAs and ADCs sit after
  the (optional) intra-tile analog summation point, and the ADC clock
  is divided by the analog temporal-accumulation depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.dptc import DPTCGeometry
from repro.devices.library import DeviceLibrary, default_library
from repro.units import GHZ

KIB = 1024
MIB = 1024 * 1024

#: Photonic clock of all designs in the paper (conservative 5 GHz).
DEFAULT_CLOCK = 5 * GHZ


@dataclass(frozen=True)
class ArchOptimizations:
    """Feature flags for the Sec. IV-C architecture-level optimizations
    plus the DPTC crossbar sharing itself (for the Fig. 12 ablation)."""

    crossbar_operand_sharing: bool = True  #: DPTC intra-core sharing (Eq. 6)
    inter_core_broadcast: bool = True  #: share M2 modulation across tiles
    intra_tile_analog_summation: bool = True  #: photocurrent sum over Nc cores
    analog_temporal_accumulation: bool = True  #: time-integral before ADC
    temporal_accumulation_depth: int = 3

    def __post_init__(self) -> None:
        if self.temporal_accumulation_depth < 1:
            raise ValueError("temporal accumulation depth must be >= 1")

    @classmethod
    def all_on(cls) -> "ArchOptimizations":
        """The full LT design (LT-B / LT-L)."""
        return cls()

    @classmethod
    def crossbar_only(cls) -> "ArchOptimizations":
        """LT-crossbar-B: DPTC sharing on, architecture-level opts off."""
        return cls(
            crossbar_operand_sharing=True,
            inter_core_broadcast=False,
            intra_tile_analog_summation=False,
            analog_temporal_accumulation=False,
        )

    @classmethod
    def broadcast_only(cls) -> "ArchOptimizations":
        """LT-broadcast-B: MRR-style topology that only broadcasts the
        shared input operand; no crossbar sharing, no arch-level opts."""
        return cls(
            crossbar_operand_sharing=False,
            inter_core_broadcast=False,
            intra_tile_analog_summation=False,
            analog_temporal_accumulation=False,
        )

    @property
    def effective_accumulation_depth(self) -> int:
        return (
            self.temporal_accumulation_depth
            if self.analog_temporal_accumulation
            else 1
        )


@dataclass(frozen=True)
class AcceleratorConfig:
    """A complete Lightening-Transformer instance."""

    name: str
    n_tiles: int
    cores_per_tile: int
    geometry: DPTCGeometry = field(default_factory=DPTCGeometry)
    bits: int = 4
    clock: float = DEFAULT_CLOCK
    global_sram_bytes: int = 2 * MIB
    tile_sram_bytes: int = 4 * KIB
    act_sram_bytes: int = 64 * KIB
    core_buffer_bytes: int = 4 * KIB
    optimizations: ArchOptimizations = field(default_factory=ArchOptimizations)
    library: DeviceLibrary = field(default_factory=default_library)

    def __post_init__(self) -> None:
        if self.n_tiles < 1 or self.cores_per_tile < 1:
            raise ValueError("tile and core counts must be >= 1")
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")
        if self.clock <= 0:
            raise ValueError("clock must be positive")

    # -- compute fabric -------------------------------------------------
    @property
    def n_cores(self) -> int:
        return self.n_tiles * self.cores_per_tile

    @property
    def macs_per_cycle(self) -> int:
        return self.n_cores * self.geometry.macs_per_cycle

    @property
    def peak_ops(self) -> float:
        """Peak operations per second (2 ops per MAC)."""
        return 2.0 * self.macs_per_cycle * self.clock

    @property
    def n_ddots(self) -> int:
        return self.n_cores * self.geometry.n_ddots

    @property
    def cycle_time(self) -> float:
        return 1.0 / self.clock

    # -- modulation plane ------------------------------------------------
    @property
    def m1_waveguides(self) -> int:
        """Per-core M1 (horizontal operand) modulation waveguides."""
        return self.n_cores * self.geometry.n_h

    @property
    def m2_waveguides(self) -> int:
        """M2 (vertical operand) waveguides; shared across tiles when the
        inter-core optical broadcast is enabled."""
        per_tile = self.cores_per_tile * self.geometry.n_v
        if self.optimizations.inter_core_broadcast:
            return per_tile
        return self.n_tiles * per_tile

    @property
    def n_modulated_waveguides(self) -> int:
        return self.m1_waveguides + self.m2_waveguides

    @property
    def n_dacs(self) -> int:
        return self.n_modulated_waveguides * self.geometry.n_lambda

    @property
    def n_mzms(self) -> int:
        return self.n_dacs

    @property
    def n_microdisks(self) -> int:
        """DEMUX + MUX disk pair per wavelength per waveguide."""
        return 2 * self.n_dacs

    @property
    def n_wdm_channels(self) -> int:
        """Laser-fed wavelength channels (one per DAC/MZM)."""
        return self.n_dacs

    # -- detection plane ---------------------------------------------------
    @property
    def n_photodiodes(self) -> int:
        """Balanced pair per DDot."""
        return 2 * self.n_ddots

    @property
    def outputs_per_summation_point(self) -> int:
        """DDot outputs merged into one analog node before the TIA/ADC."""
        return (
            self.cores_per_tile
            if self.optimizations.intra_tile_analog_summation
            else 1
        )

    @property
    def n_tias(self) -> int:
        return self.n_ddots // self.outputs_per_summation_point

    @property
    def n_adcs(self) -> int:
        return self.n_tias

    @property
    def adc_sample_rate(self) -> float:
        return self.clock / self.optimizations.effective_accumulation_depth

    # -- light sources ---------------------------------------------------
    @property
    def n_micro_combs(self) -> int:
        return self.n_tiles

    @property
    def n_lasers(self) -> int:
        return self.n_cores

    @property
    def broadcast_fanout(self) -> int:
        """Worst-case intra-core broadcast fanout for the loss budget."""
        return max(self.geometry.n_h, self.geometry.n_v)

    @property
    def mean_crossings(self) -> int:
        """Average waveguide crossings on a DDot path in the crossbar."""
        return (max(self.geometry.n_h, self.geometry.n_v) - 1) // 2

    # -- derived configs ---------------------------------------------------
    def with_bits(self, bits: int) -> "AcceleratorConfig":
        return replace(self, bits=bits, name=f"{self.name}@{bits}b")

    def with_optimizations(
        self, optimizations: ArchOptimizations
    ) -> "AcceleratorConfig":
        return replace(self, optimizations=optimizations)

    def rename(self, name: str) -> "AcceleratorConfig":
        return replace(self, name=name)


def lt_base(bits: int = 4) -> AcceleratorConfig:
    """LT-B (Table IV): 4 tiles x 2 DPTC of 12x12x12, 2 MB global SRAM."""
    return AcceleratorConfig(
        name="LT-B",
        n_tiles=4,
        cores_per_tile=2,
        geometry=DPTCGeometry(12, 12, 12),
        bits=bits,
        global_sram_bytes=2 * MIB,
    )


def lt_large(bits: int = 4) -> AcceleratorConfig:
    """LT-L (Table IV): 8 tiles x 2 DPTC of 12x12x12, 4 MB global SRAM."""
    return AcceleratorConfig(
        name="LT-L",
        n_tiles=8,
        cores_per_tile=2,
        geometry=DPTCGeometry(12, 12, 12),
        bits=bits,
        global_sram_bytes=4 * MIB,
    )


def lt_crossbar_base(bits: int = 4) -> AcceleratorConfig:
    """LT-crossbar-B: LT-B without the architecture-level optimizations."""
    config = lt_base(bits).with_optimizations(ArchOptimizations.crossbar_only())
    return config.rename("LT-crossbar-B")


def lt_broadcast_base(bits: int = 4) -> AcceleratorConfig:
    """LT-broadcast-B: input-broadcast-only PTC topology, no arch opts."""
    config = lt_base(bits).with_optimizations(ArchOptimizations.broadcast_only())
    return config.rename("LT-broadcast-B")


def single_core(core_size: int, bits: int = 4) -> AcceleratorConfig:
    """One stand-alone DPTC of size ``N`` for the Fig. 9/10 scaling study.

    Matches the paper's setup: no global (inter-core) modulation sharing
    and no architecture-level optimizations, so scaling effects are
    observed directly.
    """
    return AcceleratorConfig(
        name=f"DPTC-{core_size}",
        n_tiles=1,
        cores_per_tile=1,
        geometry=DPTCGeometry(core_size, core_size, core_size),
        bits=bits,
        global_sram_bytes=0,
        tile_sram_bytes=0,
        act_sram_bytes=0,
        core_buffer_bytes=0,
        optimizations=ArchOptimizations.crossbar_only(),
    )
