"""Latency models: single-core path delay and workload execution time.

Two distinct quantities:

* :func:`core_path_latency` — the physical latency of one DPTC shot
  (optical propagation through the crossbar + E-O/O-E conversion),
  which Fig. 9 plots against core size.  It is well below the 200 ps
  clock period at every size the paper considers.
* :func:`workload_latency` — wall-clock time of a GEMM trace: one
  ``[Nh, Nlambda] x [Nlambda, Nv]`` tile-MM per core per 5 GHz cycle,
  with the tile count distributed over all ``Nt * Nc`` cores.  The
  paper's HBM bandwidth is provisioned so data transfer is hidden
  behind compute (Sec. IV-A), and non-GEMM digital work is pipelined,
  so compute cycles dominate; this cycle-accurate tile counting
  reproduces Table V's LT-B latencies essentially exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.arch.config import AcceleratorConfig
from repro.units import PS, SPEED_OF_LIGHT, UM
from repro.workloads.gemm import GEMMOp

#: Optical group index of the silicon waveguides.
GROUP_INDEX = 4.2

#: Crossbar pitch per DDot row/column (device footprint + spacing).
DDOT_PITCH = 175 * UM

#: Fixed optical path through the WDM modulation unit and I/O routing.
FIXED_PATH_LENGTH = 500 * UM

#: Electrical E-O / O-E conversion latency (driver + PD + TIA + S/H).
EO_OE_LATENCY = 20 * PS


@dataclass(frozen=True)
class CoreLatency:
    """Path latency of one DPTC shot."""

    optics: float  #: s, optical propagation
    eo_oe: float  #: s, conversion overhead

    @property
    def total(self) -> float:
        return self.optics + self.eo_oe

    @property
    def total_ps(self) -> float:
        return self.total / PS


def core_path_latency(core_size: int) -> CoreLatency:
    """Physical latency of a single shot on an ``N x N x N`` DPTC."""
    if core_size < 1:
        raise ValueError(f"core size must be >= 1, got {core_size}")
    path = FIXED_PATH_LENGTH + core_size * DDOT_PITCH
    optics = path * GROUP_INDEX / SPEED_OF_LIGHT
    return CoreLatency(optics=optics, eo_oe=EO_OE_LATENCY)


def gemm_tile_count(config: AcceleratorConfig, op: GEMMOp) -> int:
    """Total tile-MMs an op needs across all its instances."""
    tiles_m, tiles_d, tiles_n = config.geometry.tile_counts(op.m, op.k, op.n)
    return tiles_m * tiles_d * tiles_n * op.count


def accumulation_cycles(op: GEMMOp) -> int:
    """Exposed digital partial-sum accumulation cycles of one GEMM op.

    When the contraction is sharded over cores (``op.k_splits > 1``)
    the per-core partial products are merged by a digital adder tree
    after photodetection (Sec. IV dataflow).  The tree is pipelined
    behind the compute stream, so only its drain — one cycle per tree
    level, ``ceil(log2(k_splits))`` — is exposed once per op.  An
    unsplit contraction costs nothing.
    """
    if op.k_splits <= 1:
        return 0
    return math.ceil(math.log2(op.k_splits))


def gemm_cycles(config: AcceleratorConfig, op: GEMMOp) -> int:
    """Clock cycles to run one GEMM op on the whole accelerator.

    Compute tiles distributed over the core grid, plus the exposed
    digital accumulation drain for contraction-sharded ops.
    """
    compute = math.ceil(gemm_tile_count(config, op) / config.n_cores)
    return compute + accumulation_cycles(op)


def workload_cycles(config: AcceleratorConfig, ops: Iterable[GEMMOp]) -> int:
    """Clock cycles for a full GEMM trace."""
    return sum(gemm_cycles(config, op) for op in ops)


def workload_latency(config: AcceleratorConfig, ops: Iterable[GEMMOp]) -> float:
    """Wall-clock seconds for a full GEMM trace."""
    return workload_cycles(config, ops) * config.cycle_time


def effective_throughput_ops(
    config: AcceleratorConfig, ops: Iterable[GEMMOp]
) -> float:
    """Achieved operations/s on a trace (2 ops per useful MAC)."""
    ops = list(ops)
    useful = sum(op.flops for op in ops)
    return useful / workload_latency(config, ops)
