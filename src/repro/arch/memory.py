"""Analytic SRAM and HBM models (the repository's PCACTI substitute).

The paper models the memory system with PCACTI at 14 nm and decouples
the large SRAM arrays into 32 KB subarrays to feed the 5 GHz photonic
domain (Sec. IV-A).  We reproduce the aggregates it needs — area,
leakage, and per-access energy — with a banked analytic model:

* array area grows linearly with capacity (effective cell area per
  byte, including array overheads),
* each bank adds a periphery term growing with the square root of its
  capacity (decoders, sense amplifiers, and the high-speed interface to
  the photonic clock domain),
* per-byte access energy has a constant component plus a term growing
  with the square root of the bank size (bitline/wordline length).

The coefficients are calibrated so the LT-B memory system lands at the
paper's reported ~25 % share of the 60.3 mm^2 chip (Fig. 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import PJ, UM2

#: Default subarray granularity (the paper follows [10] with 32 KB).
DEFAULT_BANK_BYTES = 32 * 1024

#: Effective array area per byte at 14 nm, including array overheads.
BYTE_AREA = 1.0 * UM2

#: Periphery area coefficient per bank: ``coeff * sqrt(bank_bytes)``.
PERIPHERY_AREA_COEFF = 900.0 * UM2

#: Leakage per byte (14 nm HD SRAM ballpark).
LEAKAGE_PER_BYTE = 1e-8  # 10 nW

#: Access energy model: ``BASE + SLOPE * sqrt(bank_kbytes)`` per byte.
ACCESS_ENERGY_BASE = 0.2 * PJ
ACCESS_ENERGY_SLOPE = 0.05 * PJ

#: High-bandwidth memory (the paper cites >1 TB/s fine-grained DRAM).
HBM_BANDWIDTH = 1e12  # bytes/s
HBM_ENERGY_PER_BYTE = 31.2 * PJ  # ~3.9 pJ/bit


@dataclass(frozen=True)
class SRAMMacro:
    """A banked on-chip SRAM of ``size_bytes`` capacity."""

    size_bytes: int
    bank_bytes: int = DEFAULT_BANK_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {self.size_bytes}")
        if self.bank_bytes < 1:
            raise ValueError(f"bank size must be >= 1, got {self.bank_bytes}")

    @property
    def n_banks(self) -> int:
        if self.size_bytes == 0:
            return 0
        return max(1, math.ceil(self.size_bytes / self.bank_bytes))

    @property
    def effective_bank_bytes(self) -> int:
        if self.n_banks == 0:
            return 0
        return min(self.size_bytes, self.bank_bytes)

    @property
    def area(self) -> float:
        """Total macro area (m^2): array + per-bank periphery."""
        if self.size_bytes == 0:
            return 0.0
        periphery = self.n_banks * PERIPHERY_AREA_COEFF * math.sqrt(
            self.effective_bank_bytes
        )
        return self.size_bytes * BYTE_AREA + periphery

    @property
    def leakage_power(self) -> float:
        """Static leakage (W)."""
        return self.size_bytes * LEAKAGE_PER_BYTE

    @property
    def access_energy_per_byte(self) -> float:
        """Dynamic read/write energy per byte (J)."""
        if self.size_bytes == 0:
            return 0.0
        bank_kb = self.effective_bank_bytes / 1024.0
        return ACCESS_ENERGY_BASE + ACCESS_ENERGY_SLOPE * math.sqrt(bank_kb)

    def access_energy(self, n_bytes: float) -> float:
        """Energy (J) to move ``n_bytes`` through this macro."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        return n_bytes * self.access_energy_per_byte


@dataclass(frozen=True)
class HBMModel:
    """Off-chip high-bandwidth memory."""

    bandwidth: float = HBM_BANDWIDTH
    energy_per_byte: float = HBM_ENERGY_PER_BYTE

    def access_energy(self, n_bytes: float) -> float:
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        return n_bytes * self.energy_per_byte

    def transfer_time(self, n_bytes: float) -> float:
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        return n_bytes / self.bandwidth


class MemorySystem:
    """The three-level on-chip hierarchy of one accelerator instance.

    Built from an :class:`repro.arch.config.AcceleratorConfig`; exposes
    total area/leakage and the access-energy rates the energy model
    charges for data movement.
    """

    def __init__(self, config) -> None:
        self.config = config
        self.global_sram = SRAMMacro(config.global_sram_bytes)
        self.tile_sram = SRAMMacro(config.tile_sram_bytes)
        self.act_sram = SRAMMacro(config.act_sram_bytes)
        self.core_buffer = SRAMMacro(
            config.core_buffer_bytes, bank_bytes=max(1, config.core_buffer_bytes)
        )
        self.hbm = HBMModel()

    @property
    def total_area(self) -> float:
        """Total on-chip SRAM area (m^2)."""
        per_tile = self.tile_sram.area + self.act_sram.area
        return (
            self.global_sram.area
            + self.config.n_tiles * per_tile
            + self.config.n_cores * self.core_buffer.area
        )

    @property
    def total_leakage(self) -> float:
        """Total SRAM leakage (W)."""
        per_tile = self.tile_sram.leakage_power + self.act_sram.leakage_power
        return (
            self.global_sram.leakage_power
            + self.config.n_tiles * per_tile
            + self.config.n_cores * self.core_buffer.leakage_power
        )

    @property
    def operand_feed_energy_per_byte(self) -> float:
        """Energy to feed one operand byte to the DACs (buffer read)."""
        return self.core_buffer.access_energy_per_byte

    @property
    def staging_energy_per_byte(self) -> float:
        """Energy to stage one operand byte global SRAM -> tile SRAM."""
        return (
            self.global_sram.access_energy_per_byte
            + self.tile_sram.access_energy_per_byte
        )

    @property
    def output_store_energy_per_byte(self) -> float:
        """Energy to commit one output byte to the activation SRAM."""
        return self.act_sram.access_energy_per_byte
