"""WDM dispersion profile of a DDot engine (Sec. III-C, Fig. 3).

Different wavelength channels sharing one DDot see slightly different
coupler split ratios ``kappa(lam)`` and phase-shifter phases
``phi(lam)``.  A :class:`DispersionProfile` captures the realised
per-channel design point; the analytic DDot/DPTC models consume it as
the per-channel multiplicative/additive error factors of Eq. 9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optics.circuit import DESIGN_PHASE
from repro.optics.components import (
    DEFAULT_COUPLING_LENGTH_SLOPE,
    coupling_factor,
    phase_response,
)
from repro.optics.wdm import WDMGrid


@dataclass(frozen=True)
class DispersionProfile:
    """Realised per-channel coupler and phase-shifter design points."""

    kappa: np.ndarray  #: power coupling factor per channel
    phase: np.ndarray  #: realised phase-shifter phase (rad) per channel

    def __post_init__(self) -> None:
        kappa = np.atleast_1d(np.asarray(self.kappa, dtype=float))
        phase = np.atleast_1d(np.asarray(self.phase, dtype=float))
        if kappa.shape != phase.shape:
            raise ValueError(
                f"kappa and phase shapes differ: {kappa.shape} vs {phase.shape}"
            )
        object.__setattr__(self, "kappa", kappa)
        object.__setattr__(self, "phase", phase)

    @property
    def n_channels(self) -> int:
        return self.kappa.size

    @property
    def phase_deviation(self) -> np.ndarray:
        """Per-channel phase error (rad) relative to the -90 deg design."""
        return self.phase - DESIGN_PHASE

    @property
    def multiplicative_factor(self) -> np.ndarray:
        """Per-channel gain of the ``x*y`` term: ``-2*t*k*sin(phase)``.

        Equals 1 at the design point (kappa = 1/2, phase = -pi/2); the
        design point is a local optimum of both factors, which is the
        source of the robustness the paper reports.
        """
        t = np.sqrt(1.0 - self.kappa)
        k = np.sqrt(self.kappa)
        return -2.0 * t * k * np.sin(self.phase)

    @property
    def additive_factor(self) -> np.ndarray:
        """Per-channel weight of the additive ``(x^2 - y^2)/2`` error term.

        ``-(2*kappa - 1)``; zero at the 50:50 design point.
        """
        return -(2.0 * self.kappa - 1.0)

    def max_kappa_deviation(self) -> float:
        """Worst-case relative deviation of kappa from 1/2 (paper: ~1.8 %)."""
        return float(np.max(np.abs(self.kappa - 0.5)) / 0.5)

    def max_phase_deviation_deg(self) -> float:
        """Worst-case phase error magnitude in degrees (paper: ~0.28 deg)."""
        return float(np.degrees(np.max(np.abs(self.phase_deviation))))

    @classmethod
    def ideal(cls, n_channels: int) -> "DispersionProfile":
        """A dispersion-free profile: every channel at the design point."""
        return cls(
            kappa=np.full(n_channels, 0.5),
            phase=np.full(n_channels, DESIGN_PHASE),
        )


def dispersion_profile(
    grid: WDMGrid,
    coupling_length_slope: float = DEFAULT_COUPLING_LENGTH_SLOPE,
) -> DispersionProfile:
    """Compute the dispersion profile of a DDot on the given WDM grid."""
    kappa = coupling_factor(grid.wavelengths, grid.center, coupling_length_slope)
    phase = phase_response(grid.wavelengths, DESIGN_PHASE, grid.center)
    return DispersionProfile(kappa=kappa, phase=phase)
