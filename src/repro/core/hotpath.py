"""Engine hot-path pipelining: chunked, double-buffered noisy matmuls.

Every layer above the engine — serving, continuous batching, the
cluster — ultimately divides its throughput by the latency of one
noisy :meth:`~repro.core.dptc.DPTC.matmul`.  The paper's dataflow
(Sec. III-B/IV) overlaps operand encoding with crossbar compute in
hardware; this module does the software equivalent for the functional
engine:

* :func:`chunk_bounds` splits the leading batch axis into contiguous
  chunks of at most ``chunk_size`` stacks;
* :func:`pipelined_matmul` runs the chunk schedule with a one-deep (or
  deeper) prefetch stage: SAMPLE+ENCODE of chunk ``k+1`` executes on a
  prefetch thread while COMPUTE+DETECT of chunk ``k`` occupies the
  caller (numpy releases the GIL inside both the RNG fill and the
  matmul kernels, so the stages genuinely overlap on multi-CPU hosts).

**The bit-equality contract.**  Chunked execution consumes the RNG in
per-chunk fused draws, chunks in batch order — which is *exactly* the
stream a sequence of unchunked engine calls on the chunk slices would
consume.  The oracle::

    np.concatenate([core.matmul(a[s:e], b[s:e], rng=rng) for s, e in bounds])

is bit-identical to ``pipelined_matmul(core, a, b, rng=rng, ...)`` for
every ``pipeline_depth`` (0 = no overlap, same schedule) and every
backend, because pipelining only reorders the stages in *wall-clock*
time — the draws, their order, and every floating-point operation are
unchanged.  With a single chunk (``chunk_size >= batch``) the schedule
degenerates to the plain whole-batch call, bit for bit.

**Shared-memory transport.**  :func:`pack_arrays` / :func:`unpack_spec`
move process-backend shard operands (and pre-drawn noise) through one
``multiprocessing.shared_memory`` segment per call instead of pickling
every array into the job queue — the other half of ROADMAP's hot-path
item.  Workers attach read-only-by-convention views and never return
memory that aliases the segment.

:func:`profile_stages` times the four stages (sample / encode /
compute / detect) separately for the ``BENCH_hotpath.json`` breakdown
and the ``repro hotpath-bench`` CLI verb.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Executor

import numpy as np

from repro.core.dptc import DPTC
from repro.obs.trace import current_tracer

try:  # pragma: no cover - absent only on exotic builds
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None


def chunk_bounds(batch: int, chunk_size: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` chunks of at most ``chunk_size``.

    Every chunk except possibly the last is exactly ``chunk_size``
    stacks; the remainder rides in the final chunk.  ``batch == 0``
    yields no chunks.
    """
    if batch < 0:
        raise ValueError(f"batch must be >= 0, got {batch}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        (start, min(start + chunk_size, batch))
        for start in range(0, batch, chunk_size)
    ]


def slice_batch_operand(
    x: np.ndarray, batch_rank: int, start: int, stop: int
) -> np.ndarray:
    """The ``[start, stop)`` batch rows of one operand, or the whole.

    An operand participates in the chunk split only when it actually
    carries the leading batch axis (full batch rank, size > 1);
    broadcast operands — a shared 2-D weight, a size-1 leading axis —
    pass whole, so each chunk encodes them once, exactly like the
    sequential per-chunk oracle would.
    """
    if x.ndim - 2 == batch_rank and x.shape[0] > 1:
        return x[start:stop]
    return x


def pipelined_matmul(
    core: DPTC,
    a: np.ndarray,
    b: np.ndarray,
    rng: np.random.Generator | None = None,
    *,
    chunk_size: int,
    pipeline_depth: int = 1,
    prefetch: Executor | None = None,
) -> np.ndarray:
    """Chunked ``a @ b`` on ``core`` with an overlapped prefetch stage.

    Args:
        core: the engine (any :class:`DPTC` subclass; calibrated cores
            calibrate each chunk through their own stage pair).
        a, b: stacked operands, as for :meth:`DPTC.matmul`.
        rng: noise stream; fresh unseeded generator if omitted.
        chunk_size: max stacks per chunk along the leading batch axis.
        pipeline_depth: chunks the prefetch stage may run ahead of
            compute.  0 executes the same schedule strictly
            sequentially (bit-identical — the unpipelined gate).
        prefetch: a **single-worker** executor for the SAMPLE+ENCODE
            stage.  Must be single-worker: the RNG stream is stateful
            and chunk draws must land in batch order.  ``None`` forces
            sequential execution regardless of ``pipeline_depth``.

    The prefetch stage degrades gracefully around shutdown: if the
    executor is closed mid-flight (``ShardedDPTC.close`` from another
    thread), remaining chunks are prepared inline on the calling
    thread — same draws, same order, same result, no deadlock.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    out_shape = DPTC._broadcast_out_shape(a.shape, b.shape)
    batch = out_shape[:-2]
    if core.noise.is_ideal or not batch:
        # Nothing to pipeline: the ideal path is a single exact matmul,
        # and matrix operands have no batch axis to chunk.
        return core.matmul(a, b, rng=rng)
    bounds = chunk_bounds(batch[0], chunk_size)
    if len(bounds) <= 1:
        return core.matmul(a, b, rng=rng)
    if rng is None:
        rng = np.random.default_rng()

    batch_rank = len(batch)
    tracer = current_tracer()
    if tracer.enabled:
        return _pipelined_matmul_traced(
            tracer, core, a, b, rng, bounds, batch_rank, out_shape,
            pipeline_depth=pipeline_depth, prefetch=prefetch,
        )

    def prepare(k: int):
        start, stop = bounds[k]
        return core.prepare_chunk(
            slice_batch_operand(a, batch_rank, start, stop),
            slice_batch_operand(b, batch_rank, start, stop),
            rng=rng,
        )

    def finish(k: int, prepared) -> np.ndarray:
        if prepared is None:  # all-zero chunk: no draws were consumed
            start, stop = bounds[k]
            return np.zeros((stop - start,) + out_shape[1:])
        return core.finish_chunk(prepared)

    return _run_chunk_schedule(
        bounds, prepare, finish, pipeline_depth=pipeline_depth,
        prefetch=prefetch,
    )


def _pipelined_matmul_traced(
    tracer,
    core: DPTC,
    a: np.ndarray,
    b: np.ndarray,
    rng: np.random.Generator,
    bounds: list[tuple[int, int]],
    batch_rank: int,
    out_shape: tuple[int, ...],
    *,
    pipeline_depth: int,
    prefetch: Executor | None,
) -> np.ndarray:
    """The traced chunk schedule: per-stage spans, bit-identical math.

    SAMPLE is timed through :meth:`DPTC.predraw` and ENCODE through
    :meth:`DPTC.prepare_chunk` with that pre-sampled draw — the exact
    RNG consumption and arithmetic of ``prepare_chunk(rng=rng)``, just
    observable as two stages.  COMPUTE/DETECT likewise split
    :meth:`DPTC.finish_chunk` into its two public stage calls.  Stage
    spans parent under one ``hotpath.matmul`` span (captured on the
    caller thread, passed explicitly — prefetch threads have no ambient
    context) and carry a ``prefetch`` attribute marking which SAMPLE+
    ENCODE pairs genuinely overlapped compute on the prefetch worker.
    """
    caller_ident = threading.get_ident()
    span = tracer.start_span(
        "hotpath.matmul",
        batch=bounds[-1][1],
        chunks=len(bounds),
        pipeline_depth=pipeline_depth if prefetch is not None else 0,
    )

    def prepare(k: int):
        start, stop = bounds[k]
        a_k = slice_batch_operand(a, batch_rank, start, stop)
        b_k = slice_batch_operand(b, batch_rank, start, stop)
        overlapped = threading.get_ident() != caller_ident
        with tracer.span(
            "stage.sample", parent=span, chunk=k, prefetch=overlapped
        ):
            draw = core.predraw(a_k, b_k, rng)
        if draw is None:  # all-zero chunk: no draws were consumed
            return None
        with tracer.span(
            "stage.encode", parent=span, chunk=k, prefetch=overlapped
        ):
            return core.prepare_chunk(a_k, b_k, draw=draw)

    def finish(k: int, prepared) -> np.ndarray:
        if prepared is None:
            start, stop = bounds[k]
            return np.zeros((stop - start,) + out_shape[1:])
        with tracer.span("stage.compute", parent=span, chunk=k):
            raw = core.compute_chunk(prepared)
        with tracer.span("stage.detect", parent=span, chunk=k):
            return core.detect_chunk(prepared, raw)

    try:
        return _run_chunk_schedule(
            bounds, prepare, finish, pipeline_depth=pipeline_depth,
            prefetch=prefetch,
        )
    finally:
        tracer.end(span)


def _run_chunk_schedule(
    bounds: list[tuple[int, int]],
    prepare,
    finish,
    *,
    pipeline_depth: int,
    prefetch: Executor | None,
) -> np.ndarray:
    """Run the chunk schedule (sequential or prefetch-overlapped)."""
    n = len(bounds)
    results: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    if pipeline_depth < 1 or prefetch is None:
        for k in range(n):
            results[k] = finish(k, prepare(k))
        return np.concatenate(results, axis=0)

    # Overlapped schedule: keep up to `pipeline_depth` prepare futures
    # in flight on the single prefetch worker (FIFO, so the stream is
    # consumed in chunk order), finishing chunks on this thread as
    # their preparation lands.
    pending: deque = deque()
    submitted = 0
    inline = False  # prefetch executor gone: prepare on this thread

    def submit_next() -> None:
        nonlocal submitted, inline
        if inline or submitted >= n:
            return
        try:
            pending.append(prefetch.submit(prepare, submitted))
        except RuntimeError:
            # Executor shut down mid-flight (close-while-busy): the
            # remaining chunks fall back to inline preparation.
            inline = True
        else:
            submitted += 1

    for _ in range(min(pipeline_depth, n)):
        submit_next()
    for k in range(n):
        if k < submitted:
            future = pending.popleft()
            try:
                prepared = future.result()
            except CancelledError:
                # The single FIFO worker never started this prepare, so
                # nothing behind it ran either: the stream is positioned
                # exactly at chunk k.  Drop the dead queue and continue
                # inline, in order.
                for stale in pending:
                    stale.cancel()
                pending.clear()
                submitted = k
                inline = True
                prepared = prepare(k)
            else:
                submit_next()
        else:
            prepared = prepare(k)
        results[k] = finish(k, prepared)
    return np.concatenate(results, axis=0)


# -- shared-memory transport (process backend) ----------------------------

#: Byte alignment of packed arrays inside a shared segment.
_ALIGN = 64


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def pack_arrays(
    arrays: list[np.ndarray],
) -> tuple["shared_memory.SharedMemory", list[tuple[int, tuple[int, ...], str]]]:
    """Copy ``arrays`` into one fresh shared-memory segment.

    Returns the segment (caller owns it: ``close()`` + ``unlink()``
    after every consumer finished) and one ``(offset, shape, dtype)``
    spec per array, in order.  Copying is a straight memcpy per array —
    no pickle framing, no per-job serialisation on the hot path.
    """
    if shared_memory is None:  # pragma: no cover - guarded import
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    specs: list[tuple[int, tuple[int, ...], str]] = []
    total = 0
    for array in arrays:
        specs.append((total, array.shape, array.dtype.str))
        total += _aligned(array.nbytes)
    segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
    for array, (offset, shape, dtype) in zip(arrays, specs):
        view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=offset)
        view[...] = array
    return segment, specs


def unpack_spec(
    segment: "shared_memory.SharedMemory",
    spec: tuple[int, tuple[int, ...], str],
) -> np.ndarray:
    """A view of one packed array inside an attached segment.

    The view aliases the segment — consumers must not return it (or
    anything sharing its memory) past ``segment.close()``.
    """
    offset, shape, dtype = spec
    return np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=offset)


def attach_segment(name: str) -> "shared_memory.SharedMemory":
    """Attach to an existing shared segment by name (worker side).

    Attaching must *not* register the segment with the resource
    tracker: the consumer does not own it, and duplicate registrations
    from several workers sharing one tracker collapse into one entry
    that the first close would tear down.  Python 3.13 exposes
    ``track=False`` for exactly this; earlier versions register
    unconditionally, so registration is suppressed for the duration of
    the attach (workers handle one job at a time, so the swap is safe).
    """
    if shared_memory is None:  # pragma: no cover - guarded import
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def release_segment(
    segment: "shared_memory.SharedMemory", unlink: bool = False
) -> None:
    """Close a segment; ``unlink=True`` destroys it (owner side only)."""
    segment.close()
    if unlink:
        segment.unlink()


# -- stage profiling -------------------------------------------------------

#: Stage names of the per-stage breakdown, in execution order.
STAGES = ("sample", "encode", "compute", "detect")


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall-clock seconds of ``fn()``."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples)


def profile_stages(
    core: DPTC,
    a: np.ndarray,
    b: np.ndarray,
    seed: int = 0,
    repeats: int = 3,
) -> dict[str, float]:
    """Best-of-``repeats`` seconds per hot-path stage of one matmul.

    Stages are timed in isolation through the public stage API —
    SAMPLE via :meth:`DPTC.sample_noise`, ENCODE via
    :meth:`DPTC.prepare_chunk` with the pre-sampled draw, COMPUTE via
    :meth:`DPTC.compute_chunk` and DETECT via :meth:`DPTC.detect_chunk`
    on a fresh copy (DETECT scales in place).  Also reports the
    end-to-end ``total`` of a plain :meth:`DPTC.matmul` call, which the
    throughput figures divide by.

    An **ideal** (noiseless) engine has no SAMPLE/ENCODE stages — its
    matmul is one exact digital product — so the profile degrades to a
    COMPUTE/DETECT-only breakdown: ``compute`` times the exact product,
    ``detect`` is zero (no photodetection rescale on the ideal path),
    and the ``sample``/``encode`` keys are absent.  Consumers iterate
    the keys that are present (``repro hotpath-bench --noise off``).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    times: dict[str, float] = {}
    if core.noise.is_ideal:
        times["compute"] = _best_of(lambda: np.matmul(a, b), repeats)
        times["detect"] = 0.0
        times["total"] = _best_of(
            lambda: core.matmul(a, b, rng=np.random.default_rng(seed)), repeats
        )
        return times
    times["sample"] = _best_of(
        lambda: core.sample_noise(a.shape, b.shape, np.random.default_rng(seed)),
        repeats,
    )
    draw = core.sample_noise(a.shape, b.shape, np.random.default_rng(seed))
    times["encode"] = _best_of(
        lambda: core.prepare_chunk(a, b, draw=draw), repeats
    )
    prepared = core.prepare_chunk(a, b, draw=draw)
    times["compute"] = _best_of(lambda: core.compute_chunk(prepared), repeats)
    raw = core.compute_chunk(prepared)
    times["detect"] = _best_of(
        lambda: core.detect_chunk(prepared, raw.copy()), repeats
    )
    times["total"] = _best_of(
        lambda: core.matmul(a, b, rng=np.random.default_rng(seed)), repeats
    )
    return times
