"""Dispersion calibration: compensating the deterministic non-idealities.

Sec. V-E notes that "more advanced noise-mitigation techniques can be
applied to further boost the accuracy and robustness".  This module
implements the obvious first step: the WDM dispersion error of Eq. 9 is
*deterministic* once the channel map is known, so it can be calibrated
out:

* the multiplicative factor ``-2*t_i*k_i*sin(phi_i)`` is inverted by
  pre-scaling one operand's channels (:func:`channel_gains`);
* the additive ``-(2*kappa_i - 1)*(x^2 - y^2)/2`` term is computed
  digitally from the encoded operands and subtracted
  (:func:`additive_correction`).

:class:`CalibratedDPTC` wires both into the tensor-core execution; with
dispersion-only noise it recovers exact arithmetic, and under the full
stochastic noise model it removes the deterministic bias.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dispersion import DispersionProfile
from repro.core.dptc import DPTC, DPTCGeometry, DPTCNoiseDraw, PreparedMatmul
from repro.core.noise import NoiseModel
from repro.optics.wdm import WDMGrid


def channel_gains(profile: DispersionProfile, length: int) -> np.ndarray:
    """Per-element gains inverting the multiplicative dispersion factor.

    The contraction dimension maps cyclically onto WDM channels, so the
    gain vector is the channel profile tiled to ``length``.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    factor = np.resize(profile.multiplicative_factor, length)
    if np.any(np.abs(factor) < 1e-6):
        raise ValueError("dispersion factor too small to invert")
    return 1.0 / factor


def additive_correction(
    a_hat: np.ndarray, b_hat: np.ndarray, profile: DispersionProfile
) -> np.ndarray:
    """The Eq. 9 additive error of ``a_hat @ b_hat``, computed digitally.

    Args:
        a_hat, b_hat: the *encoded* (normalised) operands, optionally
            stacked with leading batch axes.

    Returns:
        The ``[..., m, n]`` additive term the analog output contains;
        callers subtract it from the measured result.
    """
    a_hat = np.asarray(a_hat, dtype=float)
    b_hat = np.asarray(b_hat, dtype=float)
    d = a_hat.shape[-1]
    weight = np.resize(profile.additive_factor, d)
    row_term = 0.5 * ((a_hat**2) @ weight)
    col_term = 0.5 * (weight @ (b_hat**2))
    return row_term[..., :, None] - col_term[..., None, :]


@dataclass
class CalibratedPrepared:
    """A prepared chunk plus the digital correction its DETECT subtracts."""

    inner: PreparedMatmul
    correction: np.ndarray


class CalibratedDPTC(DPTC):
    """A DPTC with dispersion calibration applied around every matmul.

    Compensation is applied to operand B (pre-encoding channel gains)
    and to the measured output (digital subtraction of the additive
    term).  Both use only the *known* dispersion profile — stochastic
    encoding noise remains, as in hardware.

    The calibration is woven into the hot-path stage pair
    (:meth:`prepare_chunk` / :meth:`finish_chunk`) rather than wrapped
    around :meth:`matmul`, so chunked/pipelined execution calibrates
    each chunk exactly like the whole-batch call would.  The
    compensated operand has the same shape and the same zero set as the
    raw one (channel gains are finite and nonzero), so the sampling
    order and the all-zero short-circuit are untouched.
    """

    def __init__(
        self,
        geometry: DPTCGeometry | None = None,
        noise: NoiseModel | None = None,
        grid: WDMGrid | None = None,
    ) -> None:
        super().__init__(geometry, noise, grid)

    def prepare_chunk(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None = None,
        draw: DPTCNoiseDraw | None = None,
    ) -> CalibratedPrepared | PreparedMatmul | None:
        if not self.noise.include_dispersion:
            return super().prepare_chunk(a, b, rng=rng, draw=draw)
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        d = a.shape[-1]
        gains = channel_gains(self.profile, d)
        # Pre-compensate operand B so the analog multiplicative factor
        # cancels; the uncalibrated engine then runs as-is.
        b_comp = b * gains[:, None]
        inner = super().prepare_chunk(a, b_comp, rng=rng, draw=draw)
        if inner is None:
            # All-zero short-circuit: the correction below would be
            # fully masked to zero anyway, so zeros are the answer.
            return None

        # Digitally remove the additive dispersion term.  It arises from
        # the *encoded* values: reproduce the engine's per-matrix
        # normalisation (all-zero slices need no correction).
        beta_a = np.max(np.abs(a), axis=(-2, -1), keepdims=True)
        beta_b = np.max(np.abs(b_comp), axis=(-2, -1), keepdims=True)
        correction = additive_correction(
            a / np.where(beta_a == 0.0, 1.0, beta_a),
            b_comp / np.where(beta_b == 0.0, 1.0, beta_b),
            self.profile,
        )
        correction = np.where(
            (beta_a == 0.0) | (beta_b == 0.0),
            0.0,
            correction * (beta_a * beta_b),
        )
        return CalibratedPrepared(inner=inner, correction=correction)

    def finish_chunk(
        self, prepared: CalibratedPrepared | PreparedMatmul
    ) -> np.ndarray:
        if isinstance(prepared, CalibratedPrepared):
            return super().finish_chunk(prepared.inner) - prepared.correction
        return super().finish_chunk(prepared)


def dispersion_error_reduction(
    geometry: DPTCGeometry,
    m: int = 32,
    d: int = 48,
    n: int = 32,
    seed: int = 0,
) -> tuple[float, float]:
    """(uncalibrated, calibrated) relative errors under dispersion only.

    A convenience for the ablation benchmark: quantifies how much of the
    dispersion-induced error the calibration removes.
    """
    noise = NoiseModel(
        encoding=NoiseModel.ideal().encoding,
        systematic=NoiseModel.ideal().systematic,
        include_dispersion=True,
    )
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, size=(m, d))
    b = rng.uniform(-1, 1, size=(d, n))
    reference = a @ b
    scale = np.linalg.norm(reference)
    plain = DPTC(geometry, noise).matmul(a, b)
    calibrated = CalibratedDPTC(geometry, noise).matmul(a, b)
    return (
        float(np.linalg.norm(plain - reference) / scale),
        float(np.linalg.norm(calibrated - reference) / scale),
    )
