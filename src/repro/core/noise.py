"""Noise models for the analog photonic computation (Sec. III-C).

Three non-idealities are modelled, matching the paper's artifact:

* **Encoding noise** — stochastic magnitude drift (relative, Gaussian)
  and relative phase drift between the two optical operands.
* **WDM dispersion** — deterministic per-channel deviation of the
  coupler split ratio and phase-shifter phase (see
  :mod:`repro.core.dispersion`); enabled with a flag here.
* **Systematic noise** — a catch-all multiplicative error on DPTC
  outputs (photodetection noise, imperfect coupling ratios, ...),
  ``I_hat = I * (1 + eps)`` with ``eps ~ N(0, 0.05^2)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Paper defaults (Sec. V-A functionality validation).
DEFAULT_MAGNITUDE_STD = 0.03
DEFAULT_PHASE_STD_DEG = 2.0
DEFAULT_SYSTEMATIC_STD = 0.05


@dataclass(frozen=True)
class EncodingNoise:
    """Stochastic operand-encoding noise.

    Attributes:
        magnitude_std: relative magnitude drift; the paper's
            ``delta_x ~ N(0, (sigma * |x|)^2)``.
        phase_std_deg: std of the relative phase drift between the two
            operands, in degrees.
    """

    magnitude_std: float = DEFAULT_MAGNITUDE_STD
    phase_std_deg: float = DEFAULT_PHASE_STD_DEG

    def __post_init__(self) -> None:
        if self.magnitude_std < 0 or self.phase_std_deg < 0:
            raise ValueError("noise standard deviations must be >= 0")

    @property
    def phase_std_rad(self) -> float:
        return math.radians(self.phase_std_deg)

    def perturb_magnitude(
        self, values: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply relative magnitude drift to encoded values."""
        if self.magnitude_std == 0.0:
            return np.asarray(values, dtype=float)
        values = np.asarray(values, dtype=float)
        return values * self.magnitude_factors(values.shape, rng)

    def magnitude_factors(
        self, shape: tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray | float:
        """Multiplicative drift factors ``1 + delta`` for encoded values.

        Consumes the same RNG stream as :meth:`perturb_magnitude` (and
        nothing at ``std == 0``, where the factor is the scalar 1).
        The ``1 +`` shift is fused in place on the freshly drawn array
        (bit-identical to ``1.0 + rng.normal(...)``, one fewer
        temporary — the hot-path allocation discipline).
        """
        if self.magnitude_std == 0.0:
            return 1.0
        factors = rng.normal(0.0, self.magnitude_std, shape)
        factors += 1.0
        return factors

    def sample_phase(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Sample per-element phase drifts (rad)."""
        if self.phase_std_deg == 0.0:
            return np.zeros(shape)
        return rng.normal(0.0, self.phase_std_rad, shape)


@dataclass(frozen=True)
class SystematicNoise:
    """Multiplicative output noise ``I_hat = I * (1 + eps)``."""

    std: float = DEFAULT_SYSTEMATIC_STD

    def __post_init__(self) -> None:
        if self.std < 0:
            raise ValueError("systematic noise std must be >= 0")

    def apply(self, outputs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.std == 0.0:
            return np.asarray(outputs, dtype=float)
        outputs = np.asarray(outputs, dtype=float)
        return outputs * self.factors(outputs.shape, rng)

    def factors(
        self, shape: tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray | float:
        """Multiplicative output factors ``1 + eps`` (scalar 1 at std 0).

        Consumes the same RNG stream as :meth:`apply`; the ``1 +``
        shift is fused in place on the drawn array (bit-identical,
        one fewer temporary).
        """
        if self.std == 0.0:
            return 1.0
        factors = rng.normal(0.0, self.std, shape)
        factors += 1.0
        return factors


@dataclass(frozen=True)
class NoiseModel:
    """Bundle of all non-idealities applied during photonic computation."""

    encoding: EncodingNoise = EncodingNoise()
    systematic: SystematicNoise = SystematicNoise()
    include_dispersion: bool = True

    @classmethod
    def ideal(cls) -> "NoiseModel":
        """A noise-free model: the photonic core computes exactly."""
        return cls(
            encoding=EncodingNoise(0.0, 0.0),
            systematic=SystematicNoise(0.0),
            include_dispersion=False,
        )

    @classmethod
    def paper_default(cls) -> "NoiseModel":
        """The paper's validation setting: 3 % magnitude, 2 deg phase,
        5 % systematic, dispersion on."""
        return cls()

    @property
    def is_ideal(self) -> bool:
        return (
            self.encoding.magnitude_std == 0.0
            and self.encoding.phase_std_deg == 0.0
            and self.systematic.std == 0.0
            and not self.include_dispersion
        )
