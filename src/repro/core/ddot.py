"""DDot: the dynamically-operated full-range optical dot-product engine.

This module is the *analytic* model of the DDot circuit (the paper's
Eq. 3-5 for the ideal engine and Eq. 7-9 for the noisy one).  It is the
model embedded in the software stack for noise-aware training and
inference; :class:`repro.optics.DDotCircuit` is the field-level
simulation the analytics are validated against.

The calibrated per-channel output (differential photocurrent divided by
the design-point scale ``2*R``) is::

    out_i = -2*t_i*k_i*sin(phi_i) * x_i*y_i  -  (2*kappa_i - 1)*(x_i^2 - y_i^2)/2

with ``t = sqrt(1-kappa)``, ``k = sqrt(kappa)`` and ``phi_i`` the realised
phase (design -pi/2, plus dispersion and stochastic drift).  At the design
point this reduces to ``x_i * y_i`` exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.dispersion import DispersionProfile, dispersion_profile
from repro.core.noise import NoiseModel
from repro.optics.wdm import WDMGrid


def analytic_output(
    x: np.ndarray,
    y: np.ndarray,
    kappa: np.ndarray,
    phase: np.ndarray,
) -> float:
    """Calibrated DDot output for explicit per-channel circuit parameters.

    Matches :class:`repro.optics.DDotCircuit` exactly (see the property
    tests): it is the closed form of the same interference circuit.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    kappa = np.asarray(kappa, dtype=float)
    phase = np.asarray(phase, dtype=float)
    t = np.sqrt(1.0 - kappa)
    k = np.sqrt(kappa)
    product_term = -2.0 * t * k * np.sin(phase) * x * y
    additive_term = -(2.0 * kappa - 1.0) * (x**2 - y**2) / 2.0
    return float(np.sum(product_term + additive_term))


class DDot:
    """Analytic dot-product engine over an ``n_wavelengths``-channel grid.

    Args:
        n_wavelengths: spectral parallelism (vector length per shot).
        noise: non-ideality bundle; :meth:`NoiseModel.ideal` gives exact
            arithmetic.
        grid: DWDM grid; defaults to the paper's 0.4 nm / 1550 nm grid.
    """

    def __init__(
        self,
        n_wavelengths: int,
        noise: NoiseModel | None = None,
        grid: WDMGrid | None = None,
    ) -> None:
        if n_wavelengths < 1:
            raise ValueError(f"n_wavelengths must be >= 1, got {n_wavelengths}")
        self.n_wavelengths = n_wavelengths
        self.noise = noise if noise is not None else NoiseModel.ideal()
        self.grid = grid if grid is not None else WDMGrid(n_wavelengths)
        if self.grid.n_channels != n_wavelengths:
            raise ValueError(
                f"grid has {self.grid.n_channels} channels, expected {n_wavelengths}"
            )
        if self.noise.include_dispersion:
            self.profile = dispersion_profile(self.grid)
        else:
            self.profile = DispersionProfile.ideal(n_wavelengths)

    def dot(
        self,
        x: np.ndarray,
        y: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Dot-product of two full-range vectors (length <= n_wavelengths).

        Operands are normalised to the MZM encoding range ``[-1, 1]`` by
        their maximum magnitudes and rescaled after detection, as the
        hardware does (Sec. III-C).
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError(
                f"operands must be equal-length vectors, got {x.shape}, {y.shape}"
            )
        if x.size > self.n_wavelengths:
            raise ValueError(
                f"vector length {x.size} exceeds {self.n_wavelengths} wavelengths"
            )
        beta_x = float(np.max(np.abs(x))) if x.size else 0.0
        beta_y = float(np.max(np.abs(y))) if y.size else 0.0
        if beta_x == 0.0 or beta_y == 0.0:
            return 0.0
        # One fallback generator for the whole call, matching
        # DPTC.matmul's single-RNG discipline.  An ideal model consumes
        # no randomness (systematic.apply is a no-op at std == 0), so
        # skip the construction cost on that hot path.
        if rng is None and not self.noise.is_ideal:
            rng = np.random.default_rng()

        x_hat = x / beta_x
        y_hat = y / beta_y
        kappa = self.profile.kappa[: x.size]
        phase = self.profile.phase[: x.size].copy()

        if not self.noise.is_ideal:
            x_hat = self.noise.encoding.perturb_magnitude(x_hat, rng)
            y_hat = self.noise.encoding.perturb_magnitude(y_hat, rng)
            phase = phase + self.noise.encoding.sample_phase((x.size,), rng)

        raw = analytic_output(x_hat, y_hat, kappa, phase)
        # Applied unconditionally: a no-op (consuming no RNG) at std == 0.
        raw = float(self.noise.systematic.apply(np.asarray(raw), rng))
        return raw * beta_x * beta_y
