"""The paper's primary contribution: DDot and DPTC photonic compute cores.

* :class:`DDot` — the dynamically-operated, full-range optical vector
  dot-product engine (analytic model of the interference circuit).
* :class:`DPTC` / :class:`DPTCGeometry` — the crossbar tensor core that
  performs one-shot matrix-matrix multiplication with intra-core operand
  sharing.
* :class:`ShardedDPTC` — a grid of DPTC cores executing one batched
  matmul as leading-batch-axis shards or contraction (K-axis) slabs
  with digital partial-sum accumulation (the multi-core scaling axes
  of the accelerator), each core with its own RNG stream and
  calibration state, on a thread- or process-pool backend.
* :mod:`repro.core.hotpath` — chunked, double-buffered pipelining of
  the engine's SAMPLE/ENCODE/COMPUTE/DETECT stages (bit-identical to
  sequential execution for equal seeds) plus the per-stage profiler.
* Noise and dispersion models of Sec. III-C, shared by the accuracy
  studies and the circuit-level validation.
"""

from repro.core.calibration import (
    CalibratedDPTC,
    additive_correction,
    channel_gains,
    dispersion_error_reduction,
)
from repro.core.ddot import DDot, analytic_output
from repro.core.dispersion import DispersionProfile, dispersion_profile
from repro.core.dptc import (
    CHANNEL_CACHE_SIZE,
    DPTC,
    DPTCGeometry,
    DPTCNoiseDraw,
    PreparedMatmul,
)
from repro.core.hotpath import (
    chunk_bounds,
    pipelined_matmul,
    profile_stages,
)
from repro.core.noise import (
    DEFAULT_MAGNITUDE_STD,
    DEFAULT_PHASE_STD_DEG,
    DEFAULT_SYSTEMATIC_STD,
    EncodingNoise,
    NoiseModel,
    SystematicNoise,
)
from repro.core.sharding import (
    BACKENDS,
    SHARD_AXES,
    DigitalAccumulator,
    ShardedDPTC,
    contraction_slabs,
    shard_bounds,
)

__all__ = [
    "BACKENDS",
    "CHANNEL_CACHE_SIZE",
    "CalibratedDPTC",
    "DDot",
    "DPTC",
    "DigitalAccumulator",
    "PreparedMatmul",
    "SHARD_AXES",
    "chunk_bounds",
    "contraction_slabs",
    "additive_correction",
    "channel_gains",
    "dispersion_error_reduction",
    "pipelined_matmul",
    "profile_stages",
    "DPTCGeometry",
    "DPTCNoiseDraw",
    "DEFAULT_MAGNITUDE_STD",
    "DEFAULT_PHASE_STD_DEG",
    "DEFAULT_SYSTEMATIC_STD",
    "DispersionProfile",
    "EncodingNoise",
    "NoiseModel",
    "ShardedDPTC",
    "SystematicNoise",
    "analytic_output",
    "dispersion_profile",
    "shard_bounds",
]
