"""Multi-core sharded execution of batched DPTC matmuls (Sec. IV).

The accelerator is not one DPTC but a grid of them — LT-B provisions
4 tiles x 2 cores — and its throughput comes from spreading a
transformer's GEMM stacks across that grid.  :class:`ShardedDPTC`
models exactly that for the functional execution path: a batched
``[..., m, d] x [..., d, n]`` matmul is split along the leading batch
axis into contiguous shards, one per core, and every core executes its
shard through its *own* :class:`DPTC` instance.

Per-core state is genuinely per-core:

* each core is a separate :class:`DPTC` (or :class:`CalibratedDPTC`)
  object, so dispersion profiles, channel caches, and calibration state
  never alias between cores;
* each core draws noise from its own RNG stream, spawned from the call's
  generator by core index (``rng.spawn``), so noise statistics stay
  per-core and a fixed seed reproduces the exact same per-core draws
  regardless of which cores end up with work.

On the ideal path every shard reduces to ``np.matmul`` on a contiguous
slice, so the concatenated result is *bit-identical* to the single-core
batched call (and to ``np.matmul`` itself).  Under noise the sharded
result matches the single-core engine distributionally — each core is
its own physical device with its own stochastic encoding, exactly as in
hardware.

Shards are executed on a thread pool (numpy releases the GIL inside the
heavy kernels); results are reassembled in shard order, so the output
never depends on thread scheduling.
"""

from __future__ import annotations

import weakref
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.dptc import DPTC, DPTCGeometry
from repro.core.noise import NoiseModel
from repro.optics.wdm import WDMGrid


def shard_bounds(batch: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` bounds splitting ``batch`` items.

    ``np.array_split`` semantics: the first ``batch % num_shards`` shards
    get one extra item; when ``num_shards > batch`` the trailing shards
    are empty (those cores simply idle).
    """
    if batch < 0:
        raise ValueError(f"batch must be >= 0, got {batch}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    base, extra = divmod(batch, num_shards)
    bounds = []
    start = 0
    for index in range(num_shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


class ShardedDPTC:
    """N DPTC cores executing one batched matmul as leading-axis shards.

    Drop-in for :class:`DPTC` on the ``matmul(a, b, rng=...)`` surface;
    with ``num_cores=1`` it degenerates to a single core (plus the
    per-core stream-spawning discipline, kept uniform across core
    counts so results depend only on the seed and the core index).

    Args:
        num_cores: cores to spread the batch over.
        geometry / noise / grid: forwarded to every core.
        core_cls: core implementation, e.g. :class:`CalibratedDPTC`;
            each core gets its own instance (own calibration state).
        parallel: run shards on a thread pool (numpy kernels release
            the GIL); sequential execution gives identical results.
    """

    def __init__(
        self,
        num_cores: int = 1,
        geometry: DPTCGeometry | None = None,
        noise: NoiseModel | None = None,
        grid: WDMGrid | None = None,
        core_cls: type[DPTC] = DPTC,
        parallel: bool = True,
    ) -> None:
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        self.num_cores = num_cores
        self.cores = [core_cls(geometry, noise, grid) for _ in range(num_cores)]
        self.geometry = self.cores[0].geometry
        self.noise = self.cores[0].noise
        self.grid = self.cores[0].grid
        self.parallel = parallel
        self._pool: ThreadPoolExecutor | None = None

    def close(self) -> None:
        """Shut down the worker pool (idempotent; pool is recreated lazily)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _workers(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_cores, thread_name_prefix="dptc-core"
            )
            # Release the worker threads when this engine is collected;
            # the finalizer holds the pool, not self, so no cycle.
            weakref.finalize(self, self._pool.shutdown, wait=False)
        return self._pool

    def tile_matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """One-shot single-tile product; a single tile occupies one core."""
        return self.cores[0].tile_matmul(a, b, rng=rng)

    def _spawn_streams(self, rng: np.random.Generator | None) -> list:
        """One independent child stream per core (stable by core index)."""
        if self.noise.is_ideal:
            return [None] * self.num_cores
        if rng is None:
            rng = np.random.default_rng()
        return rng.spawn(self.num_cores)

    @staticmethod
    def _shard_operand(
        x: np.ndarray, batch_rank: int, start: int, stop: int
    ) -> np.ndarray:
        """Slice the shard's rows out of one operand.

        An operand only participates in the split when it actually
        carries the leading batch axis (full batch rank and size > 1);
        broadcast operands — a shared 2-D weight, or a size-1 leading
        axis — are passed whole, so each core encodes them once for its
        shard, mirroring the crossbar's operand sharing.
        """
        if x.ndim - 2 == batch_rank and x.shape[0] > 1:
            return x[start:stop]
        return x

    def matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Batched ``a @ b`` sharded across the cores.

        The broadcast batch shape's leading axis is split into
        ``num_cores`` contiguous shards; cores with an empty shard idle
        (their RNG streams are still reserved, so per-core draws are
        reproducible independently of the batch size).  Inputs with no
        batch axes run whole on core 0.
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        out_shape = DPTC._broadcast_out_shape(a.shape, b.shape)
        batch = out_shape[:-2]
        streams = self._spawn_streams(rng)
        # <= 1 covers the zero-size batch axis too: core 0 returns the
        # empty stack exactly like the single-core engine.
        if not batch or batch[0] <= 1 or self.num_cores == 1:
            return self.cores[0].matmul(a, b, rng=streams[0])

        batch_rank = len(batch)
        jobs = []  # (core, stream, a_shard, b_shard)
        for core, stream, (start, stop) in zip(
            self.cores, streams, shard_bounds(batch[0], self.num_cores)
        ):
            if start == stop:
                continue
            jobs.append(
                (
                    core,
                    stream,
                    self._shard_operand(a, batch_rank, start, stop),
                    self._shard_operand(b, batch_rank, start, stop),
                )
            )
        # batch[0] >= 2 and num_cores >= 2 here, so there are always at
        # least two non-empty shards.
        def run(job) -> np.ndarray:
            core, stream, a_shard, b_shard = job
            return core.matmul(a_shard, b_shard, rng=stream)

        if self.parallel:
            results = list(self._workers().map(run, jobs))
        else:
            results = [run(job) for job in jobs]
        out = np.concatenate(results, axis=0)
        assert out.shape == out_shape
        return out
