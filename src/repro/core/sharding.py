"""Multi-core sharded execution of batched DPTC matmuls (Sec. IV).

The accelerator is not one DPTC but a grid of them — LT-B provisions
4 tiles x 2 cores — and its throughput comes from spreading a
transformer's GEMM stacks across that grid.  :class:`ShardedDPTC`
models that for the functional execution path along *either* axis of
the paper's dataflow:

* ``shard_axis="batch"`` — a batched ``[..., m, d] x [..., d, n]``
  matmul is split along the leading batch axis into contiguous shards,
  one per core; results are concatenated in shard order.
* ``shard_axis="contraction"`` — every core executes a contiguous
  ``[..., m, d/N] x [..., d/N, n]`` K-slab of the *same* matrix
  product through its own DPTC, and the per-core partial products are
  summed by a :class:`DigitalAccumulator`, mirroring the paper's
  post-photodetection digital partial-sum accumulation.

Per-core state is genuinely per-core:

* each core is a separate :class:`DPTC` (or :class:`CalibratedDPTC`)
  object, so dispersion profiles, channel caches, and calibration state
  never alias between cores;
* each core draws noise from its own RNG stream, spawned from the call's
  generator by core index (``rng.spawn``), so noise statistics stay
  per-core and a fixed seed reproduces the exact same per-core draws
  regardless of which cores end up with work, which backend runs them,
  or how the scheduler interleaves them.

**Exactness contract.**  On the ideal path the sharded result is
*bit-identical* to the single-core batched call (and to ``np.matmul``)
for both shard axes.  For the batch axis this is free — shards are
disjoint slices.  For the contraction axis it is a statement about the
*digital* accumulator: in hardware the per-slab partial products leave
the photodetectors through the ADC as fixed-point words and the digital
adder tree sums them exactly (integer addition is associative).  A
float64 model can only honour that exactness by not reassociating the
contraction — summing independently *rounded* float64 slab products
would inject ~1e-16 reassociation error that the exact fixed-point
accumulation does not have.  The ideal path therefore evaluates the
exact product in one full-contraction ``np.matmul`` on core 0, while
the noisy path performs genuine per-core K-slab execution plus
core-order digital accumulation (there the reassociation sits far
below the modelled noise floor).  Under noise the sharded result
matches the single-core engine distributionally — each core is its own
physical device with its own stochastic encoding, exactly as in
hardware.

**Backends.**  ``backend="thread"`` runs shards on a thread pool
(numpy releases the GIL inside the heavy kernels).  ``backend=
"process"`` runs them on a :class:`~concurrent.futures.
ProcessPoolExecutor` for true parallelism on multi-CPU hosts: the
per-core constructor arguments are pickled once per worker (pool
initializer) and workers rebuild their :class:`DPTC` replicas
deterministically on first use.  The hot path ships **no generators
and no pickled operands**: the parent pre-draws each job's noise from
the per-core stream (:meth:`DPTC.predraw`, consumed in exactly the
order the worker would have) and packs operands plus draw arrays into
one ``multiprocessing.shared_memory`` segment per call
(:mod:`repro.core.hotpath`), so jobs carry only names, offsets and
shapes.  Thread, process, and sequential execution of the same seed
are therefore bit-equal and independent of scheduling.  The pool uses
the ``spawn`` start method, which behaves identically on every
platform and never forks a threaded parent.  Results are reassembled
in shard (core) order, so the output never depends on the backend or
schedule.

**Chunked pipelining.**  ``chunk_size=c`` splits every per-core shard
into chunks of at most ``c`` stacks along the leading batch axis and
executes them through :func:`repro.core.hotpath.pipelined_matmul`:
with ``pipeline_depth >= 1`` (thread backend) each core's SAMPLE +
ENCODE stage for chunk ``k+1`` runs on a dedicated single-worker
prefetch thread while COMPUTE + DETECT of chunk ``k`` occupies the
core's pool thread; on the process backend the parent plays the
prefetch stage — it pre-draws every chunk's noise while the workers
chew through ENCODE+COMPUTE+DETECT.  Chunked execution consumes the
RNG in per-chunk fused draws, chunks in batch order, which is exactly
the stream sequential per-chunk engine calls would consume — so for
equal seeds pipelined == unpipelined == sequential, bit for bit,
across backends and shard axes.  ``chunk_size=None`` (default) keeps
the whole-batch draw order of the unchunked engine.
"""

from __future__ import annotations

import multiprocessing
import weakref
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.core.dptc import DPTC, DPTCGeometry, DPTCNoiseDraw
from repro.core.hotpath import (
    attach_segment,
    chunk_bounds,
    pack_arrays,
    pipelined_matmul,
    release_segment,
    slice_batch_operand,
    unpack_spec,
)
from repro.core.hotpath import shared_memory as _shm_module
from repro.core.noise import NoiseModel
from repro.obs.trace import current_tracer
from repro.optics.wdm import WDMGrid

#: Supported sharding axes: leading batch axis or the contraction (K) axis.
SHARD_AXES = ("batch", "contraction")

#: Supported shard-execution backends.
BACKENDS = ("thread", "process")

#: Start method for the process backend.  ``spawn`` is deliberately
#: chosen over the Linux default ``fork``: it behaves identically on
#: every platform, never forks a parent that already runs pool threads,
#: and makes worker state reconstruction explicit (the initializer),
#: which is what keeps seeded runs scheduler-independent.
_MP_START_METHOD = "spawn"


def shard_bounds(batch: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` bounds splitting ``batch`` items.

    ``np.array_split`` semantics: the first ``batch % num_shards`` shards
    get one extra item; when ``num_shards > batch`` the trailing shards
    are empty (those cores simply idle).
    """
    if batch < 0:
        raise ValueError(f"batch must be >= 0, got {batch}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    base, extra = divmod(batch, num_shards)
    bounds = []
    start = 0
    for index in range(num_shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def contraction_slabs(
    x: np.ndarray, num_shards: int, axis: int
) -> list[np.ndarray]:
    """Contiguous slabs of ``x`` along ``axis``, one per shard.

    The K-axis companion of :func:`shard_bounds`: slab ``i`` holds
    ``x[..., start_i:stop_i, ...]`` (``shard_bounds`` split along
    ``axis``), so concatenating the slabs along ``axis`` reproduces
    ``x`` exactly and ``num_shards`` greater than the axis length
    yields empty trailing slabs.  Slabs are views, not copies.
    """
    x = np.asarray(x)
    if not -x.ndim <= axis < x.ndim:
        raise ValueError(f"axis {axis} out of range for ndim {x.ndim}")
    slabs = []
    index: list[slice] = [slice(None)] * x.ndim
    for start, stop in shard_bounds(x.shape[axis], num_shards):
        index[axis] = slice(start, stop)
        slabs.append(x[tuple(index)])
    return slabs


class DigitalAccumulator:
    """Post-photodetection digital partial-sum accumulation (Sec. IV).

    After each core's photodetectors and ADCs produce a partial product
    for its contraction slab, the digital accumulator sums the partials
    — in core order, matching the adder tree's deterministic reduction.
    This is the float64 stand-in for the hardware's exact fixed-point
    accumulation; see the module docstring for why the *ideal* path
    bypasses it in favour of one exact full-contraction product.
    """

    @staticmethod
    def accumulate(partials: list[np.ndarray]) -> np.ndarray:
        """Sum per-core partial products in core order."""
        if not partials:
            raise ValueError("need at least one partial product")
        out = np.array(partials[0], dtype=float, copy=True)
        for partial in partials[1:]:
            out += partial
        return out


# -- process-backend worker state -----------------------------------------
#
# Each worker process rebuilds its DPTC replicas from constructor
# arguments shipped once via the pool initializer (pickled once per
# worker).  Construction is deterministic, and every job carries the
# core index plus that core's *pre-drawn* noise (or none, on the ideal
# path), so results depend only on (seed, core index, operands) — never
# on which worker happens to execute which core.

_WORKER_FACTORY: tuple | None = None
_WORKER_CORES: dict[int, DPTC] = {}


def _process_worker_init(
    core_cls: type[DPTC],
    geometry: DPTCGeometry,
    noise: NoiseModel,
    grid: WDMGrid,
) -> None:
    global _WORKER_FACTORY
    _WORKER_FACTORY = (core_cls, geometry, noise, grid)
    _WORKER_CORES.clear()


def _resolve_ref(segment, ref):
    """An operand/draw component from its job reference.

    Specs (``(offset, shape, dtype)`` tuples) resolve to views of the
    shared segment; plain floats and ndarrays (the inline-pickle
    fallback) pass through unchanged.
    """
    if isinstance(ref, tuple):
        return unpack_spec(segment, ref)
    return ref


def _process_worker_run(job: tuple) -> np.ndarray:
    """Execute one ``(shm_name, core_index, a_ref, b_ref, draw_refs)`` job.

    ``draw_refs`` is ``None`` only on the ideal path (exact matmul, no
    noise to draw); noisy jobs always carry the parent's pre-drawn
    realisation, so workers never touch an RNG.  Shared segments are
    attached per job and released before returning — the engine's
    matmul never returns memory aliasing its inputs, so the result
    survives the detach.
    """
    shm_name, core_index, a_ref, b_ref, draw_refs = job
    core = _WORKER_CORES.get(core_index)
    if core is None:
        if _WORKER_FACTORY is None:
            raise RuntimeError("process worker used before initialization")
        core_cls, geometry, noise, grid = _WORKER_FACTORY
        core = core_cls(geometry, noise, grid)
        _WORKER_CORES[core_index] = core
    segment = attach_segment(shm_name) if shm_name is not None else None
    try:
        a = _resolve_ref(segment, a_ref)
        b = _resolve_ref(segment, b_ref)
        if draw_refs is None:
            return core.matmul(a, b)
        draw = DPTCNoiseDraw(*(_resolve_ref(segment, ref) for ref in draw_refs))
        return core.matmul(a, b, draw=draw)
    finally:
        if segment is not None:
            release_segment(segment)


class ShardedDPTC:
    """N DPTC cores executing one batched matmul as shards.

    Drop-in for :class:`DPTC` on the ``matmul(a, b, rng=...)`` surface;
    with ``num_cores=1`` it degenerates to the plain single-core
    batched engine for either shard axis (plus the per-core
    stream-spawning discipline, kept uniform across core counts so
    results depend only on the seed and the core index).

    Args:
        num_cores: cores to spread the work over.
        geometry / noise / grid: forwarded to every core.
        core_cls: core implementation, e.g. :class:`CalibratedDPTC`;
            each core gets its own instance (own calibration state).
        parallel: run shards on the worker pool; sequential execution
            (``parallel=False``) gives bit-identical results.
        shard_axis: ``"batch"`` splits the leading batch axis into
            contiguous per-core shards; ``"contraction"`` splits the
            K axis into contiguous per-core slabs whose partial
            products are digitally accumulated in core order.
        backend: ``"thread"`` (default) or ``"process"``; see the
            module docstring.  Bit-equal for equal seeds.
        chunk_size: when set, split each core's shard into chunks of at
            most this many stacks along the leading batch axis and
            pipeline them (see the module docstring); ``None`` keeps
            the unchunked whole-shard draw order.
        pipeline_depth: chunks the prefetch stage may run ahead of
            compute (thread backend; the process backend's parent-side
            predraw is inherently ahead).  0 runs the chunk schedule
            strictly sequentially — bit-identical, no overlap.
        shared_memory: ship process-backend operands and draws through
            ``multiprocessing.shared_memory`` (default) instead of
            pickling them into the job queue.  Results are bit-equal
            either way; the flag exists as an escape hatch.
    """

    def __init__(
        self,
        num_cores: int = 1,
        geometry: DPTCGeometry | None = None,
        noise: NoiseModel | None = None,
        grid: WDMGrid | None = None,
        core_cls: type[DPTC] = DPTC,
        parallel: bool = True,
        shard_axis: str = "batch",
        backend: str = "thread",
        chunk_size: int | None = None,
        pipeline_depth: int = 1,
        shared_memory: bool = True,
    ) -> None:
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        if shard_axis not in SHARD_AXES:
            raise ValueError(
                f"shard_axis must be one of {SHARD_AXES}, got {shard_axis!r}"
            )
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1 or None, got {chunk_size}")
        if pipeline_depth < 0:
            raise ValueError(
                f"pipeline_depth must be >= 0, got {pipeline_depth}"
            )
        self.num_cores = num_cores
        self.shard_axis = shard_axis
        self.backend = backend
        self.core_cls = core_cls
        self.cores = [core_cls(geometry, noise, grid) for _ in range(num_cores)]
        self.geometry = self.cores[0].geometry
        self.noise = self.cores[0].noise
        self.grid = self.cores[0].grid
        self.parallel = parallel
        self.chunk_size = chunk_size
        self.pipeline_depth = pipeline_depth
        self.shared_memory = shared_memory and _shm_module is not None
        self._pool: Executor | None = None
        self._finalizer: weakref.finalize | None = None
        self._prefetch_pools: list[ThreadPoolExecutor | None] = [None] * num_cores
        self._prefetch_finalizers: list[weakref.finalize] = []

    def close(self) -> None:
        """Shut down every worker pool (idempotent; pools recreate lazily).

        Prefetch pools are drained *first*, then the main pool: an
        in-flight core job that tries to prefetch after its pool closed
        gets a ``RuntimeError`` from ``submit`` and falls back to
        preparing chunks inline (same draws, same order), so a
        close-while-busy never deadlocks and never changes results.
        Releases thread *and* process pools alike and detaches the
        garbage-collection finalizers, so no executor outlives an
        explicitly closed engine.
        """
        for index, pool in enumerate(self._prefetch_pools):
            if pool is not None:
                pool.shutdown(wait=True)
                self._prefetch_pools[index] = None
        for finalizer in self._prefetch_finalizers:
            finalizer.detach()
        self._prefetch_finalizers.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None

    def _workers(self) -> Executor:
        if self._pool is None:
            if self.backend == "process":
                self._pool = ProcessPoolExecutor(
                    max_workers=self.num_cores,
                    mp_context=multiprocessing.get_context(_MP_START_METHOD),
                    initializer=_process_worker_init,
                    initargs=(self.core_cls, self.geometry, self.noise, self.grid),
                )
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_cores, thread_name_prefix="dptc-core"
                )
            # Release the workers when this engine is collected; the
            # finalizer holds the pool, not self, so no cycle.
            self._finalizer = weakref.finalize(
                self, self._pool.shutdown, wait=False
            )
        return self._pool

    def _prefetch(self, index: int) -> ThreadPoolExecutor:
        """Core ``index``'s lazy single-worker SAMPLE+ENCODE stage.

        Single-worker is load-bearing: the prefetch executor serialises
        chunk preparations in submission (FIFO) order, which is what
        keeps the stateful RNG stream consumed in batch order at any
        ``pipeline_depth``.
        """
        pool = self._prefetch_pools[index]
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"dptc-prefetch-{index}"
            )
            self._prefetch_pools[index] = pool
            self._prefetch_finalizers.append(
                weakref.finalize(self, pool.shutdown, wait=False)
            )
        return pool

    def tile_matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """One-shot single-tile product; a single tile occupies one core."""
        return self.cores[0].tile_matmul(a, b, rng=rng)

    def _spawn_streams(self, rng: np.random.Generator | None) -> list:
        """One independent child stream per core (stable by core index).

        ``SeedSequence`` spawning is prefix-stable: child ``i`` of a
        fresh generator is the same stream for *any* ``num_cores > i``,
        so growing the core grid never perturbs the draws of the cores
        that already existed.
        """
        if self.noise.is_ideal:
            return [None] * self.num_cores
        if rng is None:
            rng = np.random.default_rng()
        return rng.spawn(self.num_cores)

    @staticmethod
    def _shard_operand(
        x: np.ndarray, batch_rank: int, start: int, stop: int
    ) -> np.ndarray:
        """Slice the shard's rows out of one operand (batch axis).

        An operand only participates in the split when it actually
        carries the leading batch axis (full batch rank and size > 1);
        broadcast operands — a shared 2-D weight, or a size-1 leading
        axis — are passed whole, so each core encodes them once for its
        shard, mirroring the crossbar's operand sharing.
        """
        return slice_batch_operand(x, batch_rank, start, stop)

    def _core_matmul(
        self,
        index: int,
        a: np.ndarray,
        b: np.ndarray,
        stream: np.random.Generator | None,
        sequential: bool = False,
        trace: tuple | None = None,
    ) -> np.ndarray:
        """One core's shard, chunk-pipelined when ``chunk_size`` is set.

        ``sequential=True`` (the ``parallel=False`` engine) runs the
        identical chunk schedule with no prefetch overlap — the
        bit-equality oracle for the pipelined paths.

        ``trace`` is ``(tracer, parent_span)`` captured on the *caller*
        thread: this method may run on a pool thread where the ambient
        contextvars are empty, so the shard span crosses explicitly and
        is re-activated here for the hot path beneath.
        """
        if trace is not None:
            tracer, parent = trace
            with tracer.span(
                "shard.core", parent=parent, core=index
            ) as core_span:
                with tracer.activate(core_span):
                    return self._core_matmul(
                        index, a, b, stream, sequential=sequential
                    )
        core = self.cores[index]
        if self.chunk_size is None:
            return core.matmul(a, b, rng=stream)
        prefetch = None
        depth = 0
        if not sequential and self.parallel and self.pipeline_depth >= 1:
            depth = self.pipeline_depth
            prefetch = self._prefetch(index)
        return pipelined_matmul(
            core,
            a,
            b,
            stream,
            chunk_size=self.chunk_size,
            pipeline_depth=depth,
            prefetch=prefetch,
        )

    def _run_jobs(
        self, jobs: list[tuple], trace: tuple | None = None
    ) -> list[np.ndarray]:
        """Execute ``(core_index, a, b, stream)`` jobs, results in job order."""
        if not self.parallel:
            return [
                self._core_matmul(index, a, b, stream, sequential=True, trace=trace)
                for index, a, b, stream in jobs
            ]
        if self.backend == "process":
            if trace is not None:
                # Spans cannot cross the process boundary; the parent's
                # SAMPLE stage + dispatch is visible as one point event.
                trace[1].add_event(
                    "process_dispatch",
                    jobs=len(jobs),
                    cores=sorted({job[0] for job in jobs}),
                )
            return self._run_jobs_process(jobs)

        def run(job: tuple) -> np.ndarray:
            index, a, b, stream = job
            return self._core_matmul(index, a, b, stream, trace=trace)

        return list(self._workers().map(run, jobs))

    def _run_jobs_process(self, jobs: list[tuple]) -> list[np.ndarray]:
        """Process-backend execution with pre-drawn noise + shared memory.

        The parent is the pipeline's SAMPLE stage: it consumes each
        per-core stream chunk-by-chunk (exactly the order the chunked
        thread/sequential paths consume it), packs operands and draw
        arrays into one shared segment, and ships reference-only jobs.
        All-zero chunks short-circuit parent-side — the worker never
        sees them, matching the engine's draw-less zero fast path.
        """
        raw: list[tuple[int, np.ndarray, np.ndarray, DPTCNoiseDraw | None]] = []
        plan: list[list[tuple]] = []  # ("zeros", shape) | ("job", raw_index)
        for index, a, b, stream in jobs:
            entries: list[tuple] = []
            if self.noise.is_ideal:
                # Exact matmul: no draws, no chunk gain — one whole job.
                entries.append(("job", len(raw)))
                raw.append((index, a, b, None))
                plan.append(entries)
                continue
            out_shape = DPTC._broadcast_out_shape(a.shape, b.shape)
            batch = out_shape[:-2]
            chunked = (
                self.chunk_size is not None
                and bool(batch)
                and batch[0] > self.chunk_size
            )
            if not chunked:
                draw = self.cores[index].predraw(a, b, stream)
                if draw is None:
                    entries.append(("zeros", out_shape))
                else:
                    entries.append(("job", len(raw)))
                    raw.append((index, a, b, draw))
                plan.append(entries)
                continue
            batch_rank = len(batch)
            for start, stop in chunk_bounds(batch[0], self.chunk_size):
                a_chunk = slice_batch_operand(a, batch_rank, start, stop)
                b_chunk = slice_batch_operand(b, batch_rank, start, stop)
                draw = self.cores[index].predraw(a_chunk, b_chunk, stream)
                if draw is None:
                    entries.append(("zeros", (stop - start,) + out_shape[1:]))
                else:
                    entries.append(("job", len(raw)))
                    raw.append((index, a_chunk, b_chunk, draw))
            plan.append(entries)

        job_results: list[np.ndarray] = []
        if raw:
            packed_jobs, segment = self._pack_process_jobs(raw)
            try:
                job_results = list(
                    self._workers().map(_process_worker_run, packed_jobs)
                )
            finally:
                if segment is not None:
                    release_segment(segment, unlink=True)

        results = []
        for entries in plan:
            parts = [
                np.zeros(payload) if tag == "zeros" else job_results[payload]
                for tag, payload in entries
            ]
            results.append(
                parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
            )
        return results

    def _pack_process_jobs(self, raw: list[tuple]) -> tuple[list[tuple], object]:
        """Turn predrawn jobs into shipped jobs (+ the shared segment).

        With shared memory enabled, every distinct operand/draw array is
        copied into the segment exactly once (dedupe by identity — a
        broadcast weight shared across cores packs once) and jobs carry
        ``(offset, shape, dtype)`` specs; scalars ride along inline.
        The fallback ships the arrays themselves (pickled), same job
        shape, ``shm_name=None``.
        """
        if not self.shared_memory:
            return [
                (
                    None,
                    index,
                    a,
                    b,
                    None if draw is None else (
                        draw.magnitude_a,
                        draw.magnitude_b,
                        draw.phase_a,
                        draw.phase_b,
                        draw.systematic,
                    ),
                )
                for index, a, b, draw in raw
            ], None
        arrays: list[np.ndarray] = []
        slot_by_id: dict[int, int] = {}
        staged: list[tuple] = []

        def stage(x):
            if isinstance(x, np.ndarray):
                key = id(x)
                if key not in slot_by_id:
                    slot_by_id[key] = len(arrays)
                    arrays.append(x)
                return ("slot", slot_by_id[key])
            return ("inline", x)

        for index, a, b, draw in raw:
            staged.append(
                (
                    index,
                    stage(a),
                    stage(b),
                    None if draw is None else tuple(
                        stage(component)
                        for component in (
                            draw.magnitude_a,
                            draw.magnitude_b,
                            draw.phase_a,
                            draw.phase_b,
                            draw.systematic,
                        )
                    ),
                )
            )
        segment, specs = pack_arrays(arrays)

        def resolve(ref):
            tag, payload = ref
            return specs[payload] if tag == "slot" else payload

        packed = [
            (
                segment.name,
                index,
                resolve(a_ref),
                resolve(b_ref),
                None if draw_refs is None else tuple(
                    resolve(ref) for ref in draw_refs
                ),
            )
            for index, a_ref, b_ref, draw_refs in staged
        ]
        return packed, segment

    def matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Batched ``a @ b`` sharded across the cores.

        Dispatches on :attr:`shard_axis`; cores with an empty shard or
        slab idle (their RNG streams are still reserved, so per-core
        draws are reproducible independently of the problem size).
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        out_shape = DPTC._broadcast_out_shape(a.shape, b.shape)
        tracer = current_tracer()
        if not tracer.enabled:
            if self.shard_axis == "contraction":
                return self._matmul_contraction(a, b, out_shape, rng)
            return self._matmul_batch(a, b, out_shape, rng)
        with tracer.span(
            "shard.matmul",
            num_cores=self.num_cores,
            shard_axis=self.shard_axis,
            backend=self.backend,
            batch=list(out_shape[:-2]),
        ) as span:
            trace = (tracer, span)
            if self.shard_axis == "contraction":
                return self._matmul_contraction(
                    a, b, out_shape, rng, trace=trace
                )
            return self._matmul_batch(a, b, out_shape, rng, trace=trace)

    def _single(
        self,
        a: np.ndarray,
        b: np.ndarray,
        stream: np.random.Generator | None,
        trace: tuple | None = None,
    ) -> np.ndarray:
        """Whole problem on core 0 (chunk-pipelined in the parent)."""
        return self._core_matmul(
            0, a, b, stream, sequential=not self.parallel, trace=trace
        )

    def _matmul_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        out_shape: tuple[int, ...],
        rng: np.random.Generator | None,
        trace: tuple | None = None,
    ) -> np.ndarray:
        """Leading-batch-axis sharding (concatenate in shard order)."""
        batch = out_shape[:-2]
        streams = self._spawn_streams(rng)
        # <= 1 covers the zero-size batch axis too: core 0 returns the
        # empty stack exactly like the single-core engine.
        if not batch or batch[0] <= 1 or self.num_cores == 1:
            return self._single(a, b, streams[0], trace=trace)

        batch_rank = len(batch)
        jobs = []  # (core_index, a_shard, b_shard, stream)
        for index, (start, stop) in enumerate(
            shard_bounds(batch[0], self.num_cores)
        ):
            if start == stop:
                continue
            jobs.append(
                (
                    index,
                    self._shard_operand(a, batch_rank, start, stop),
                    self._shard_operand(b, batch_rank, start, stop),
                    streams[index],
                )
            )
        # batch[0] >= 2 and num_cores >= 2 here, so there are always at
        # least two non-empty shards.
        results = self._run_jobs(jobs, trace=trace)
        out = np.concatenate(results, axis=0)
        assert out.shape == out_shape
        return out

    def _matmul_contraction(
        self,
        a: np.ndarray,
        b: np.ndarray,
        out_shape: tuple[int, ...],
        rng: np.random.Generator | None,
        trace: tuple | None = None,
    ) -> np.ndarray:
        """Contraction-axis sharding with digital partial-sum accumulation.

        Core ``i`` executes the contiguous K-slab ``a[..., ki:ki+1] @
        b[..., ki:ki+1, :]`` on its own DPTC with its own RNG stream;
        the :class:`DigitalAccumulator` then sums the partial products
        in core order.  The ideal path evaluates the exact
        full-contraction product on core 0 instead — the accumulator is
        exact in hardware, and reassociating a float64 contraction is
        not (see the module docstring) — which keeps ideal results
        bit-identical to ``np.matmul`` at every core count, divisible
        or not.
        """
        d = a.shape[-1]
        streams = self._spawn_streams(rng)
        if self.noise.is_ideal or self.num_cores == 1 or d <= 1:
            # Ideal: exact digital accumulation == the exact product.
            # num_cores == 1 (or a single-element contraction): the
            # plain batched engine, one slab on core 0 / stream 0.
            return self._single(a, b, streams[0], trace=trace)

        a_slabs = contraction_slabs(a, self.num_cores, axis=-1)
        b_slabs = contraction_slabs(b, self.num_cores, axis=-2)
        jobs = [  # (core_index, a_slab, b_slab, stream)
            (index, a_slab, b_slab, streams[index])
            for index, (a_slab, b_slab) in enumerate(zip(a_slabs, b_slabs))
            if a_slab.shape[-1] > 0  # num_cores > d: trailing cores idle
        ]
        partials = self._run_jobs(jobs, trace=trace)
        out = DigitalAccumulator.accumulate(partials)
        assert out.shape == out_shape
        return out
