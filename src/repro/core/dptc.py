"""DPTC: the dynamically-operated photonic tensor core (Sec. III-B).

A DPTC is a crossbar of ``Nv x Nh`` DDot engines sharing modulated WDM
signals along rows and columns.  In one clock cycle it computes a full
``[Nh, Nlambda] x [Nlambda, Nv]`` matrix-matrix product; larger GEMMs
are tiled over cycles.

Two views are provided:

* :class:`DPTCGeometry` — the pure arithmetic of the core: per-cycle
  throughput, tile counts for a GEMM, and the intra-core operand-sharing
  encoding-cost model of Eq. 6.
* :class:`DPTC` — a functional (noisy) executor for arbitrary-size
  matrix multiplication, vectorised over the whole GEMM.  It reproduces
  looping the analytic DDot over every tile, including per-channel
  dispersion (channels are assigned cyclically along the contraction
  dimension) and stochastic encoding noise per encoded element.

The executor is *batched*: operands may carry any number of leading
batch axes (``[..., m, d] x [..., d, n]``) with numpy-style rank
broadcasting (e.g. a 2-D weight against 3-D activations), and the whole
stack — every head and every sequence of an attention product — is
computed as single whole-batch einsum/matmul expressions.  The
per-matrix Python loop of the original engine is preserved verbatim as
:meth:`DPTC.matmul_reference` so the equivalence and speedup of the
vectorised path stay measurable.

**Hot-path staging.**  A noisy matmul is four stages — SAMPLE (the
fused RNG draw of :meth:`DPTC.sample_noise`), ENCODE (per-matrix
normalisation, magnitude factors, and the trig operand products),
COMPUTE (the two exact matmuls plus the additive dispersion terms) and
DETECT (systematic factors, ``beta`` rescaling, zero masking).  The
pair :meth:`DPTC.prepare_chunk` / :meth:`DPTC.finish_chunk` exposes
that split — ``finish_chunk(prepare_chunk(a, b, rng))`` *is*
``matmul(a, b, rng=rng)``, bit for bit, because :meth:`DPTC.matmul`
itself is implemented on top of the pair.  The split is what
:mod:`repro.core.hotpath` pipelines: SAMPLE+ENCODE of batch chunk
``k+1`` runs on a prefetch thread while COMPUTE+DETECT of chunk ``k``
occupies the caller, reordering the stages in wall-clock time without
touching the documented RNG sampling order.

The per-contraction-length dispersion factor cache is a small LRU
(:data:`CHANNEL_CACHE_SIZE` entries): long-lived serving engines see
ragged traffic with unbounded distinct contraction lengths, and an
uncapped cache is a slow memory leak.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.dispersion import DispersionProfile, dispersion_profile
from repro.core.noise import NoiseModel
from repro.optics.wdm import WDMGrid


@dataclass(frozen=True)
class DPTCGeometry:
    """Dimensions of one DPTC crossbar (paper Table II notation)."""

    n_h: int = 12  #: input waveguides along the horizontal direction
    n_v: int = 12  #: input waveguides along the vertical direction
    n_lambda: int = 12  #: wavelengths multiplexed per waveguide

    def __post_init__(self) -> None:
        if min(self.n_h, self.n_v, self.n_lambda) < 1:
            raise ValueError(f"all DPTC dimensions must be >= 1, got {self}")

    @property
    def n_ddots(self) -> int:
        """Number of DDot engines in the crossbar."""
        return self.n_h * self.n_v

    @property
    def macs_per_cycle(self) -> int:
        """Multiply-accumulates completed per clock cycle."""
        return self.n_h * self.n_lambda * self.n_v

    @property
    def ops_per_cycle(self) -> int:
        """Operations per cycle (2 per MAC, the usual TOPS convention)."""
        return 2 * self.macs_per_cycle

    def tile_counts(self, m: int, d: int, n: int) -> tuple[int, int, int]:
        """Tile grid needed for an ``[m, d] x [d, n]`` GEMM."""
        if min(m, d, n) < 1:
            raise ValueError(f"GEMM dims must be >= 1, got {(m, d, n)}")
        return (
            math.ceil(m / self.n_h),
            math.ceil(d / self.n_lambda),
            math.ceil(n / self.n_v),
        )

    def cycles(self, m: int, d: int, n: int) -> int:
        """Clock cycles one DPTC needs for an ``[m, d] x [d, n]`` GEMM."""
        tiles_m, tiles_d, tiles_n = self.tile_counts(m, d, n)
        return tiles_m * tiles_d * tiles_n

    def utilization(self, m: int, d: int, n: int) -> float:
        """Fraction of the crossbar's MACs doing useful work for a GEMM."""
        useful = m * d * n
        provisioned = self.cycles(m, d, n) * self.macs_per_cycle
        return useful / provisioned

    def encoding_ops_shared(self, tiles_h: int = 1, tiles_v: int = 1) -> int:
        """Scalar encodings (DAC+MZM ops) per tile-MM with intra-core sharing.

        Eq. 6: the crossbar broadcasts each modulated waveguide to a full
        row/column of DDots, so a ``[Nh,Nl] x [Nl,Nv]`` shot needs only
        ``Nh*Nl + Nl*Nv`` encodings.
        """
        return (self.n_h * self.n_lambda + self.n_lambda * self.n_v) * tiles_h * tiles_v

    def encoding_ops_unshared(self, tiles_h: int = 1, tiles_v: int = 1) -> int:
        """Scalar encodings without operand sharing (separate dot engines).

        Prior designs encode both operands for every DDot independently:
        ``2 * Nh * Nv * Nlambda`` per shot.
        """
        return (2 * self.n_h * self.n_v * self.n_lambda) * tiles_h * tiles_v

    def encoding_saving(self) -> float:
        """Encoding-cost reduction factor ``2*Nh*Nv / (Nh + Nv)``.

        12x for the paper's 12x12x12 core.
        """
        return self.encoding_ops_unshared() / self.encoding_ops_shared()


@dataclass(frozen=True)
class DPTCNoiseDraw:
    """One realisation of every stochastic factor of a (batched) matmul.

    The arrays live at the *given* operand shapes (before batch
    broadcasting), so a shared 2-D weight is encoded — and perturbed —
    once for the whole batch, exactly like the crossbar's operand
    sharing broadcasts one modulated waveguide to a full row of DDots.

    Attributes:
        magnitude_a, magnitude_b: multiplicative encoding factors
            ``1 + delta`` applied to the normalised operands.
        phase_a, phase_b: per-element phase drifts (rad).
        systematic: multiplicative output factors ``1 + eps`` at the
            broadcast output shape.

    Ideal components collapse to scalars (1 for factors, 0 for phases)
    so a disabled noise term costs neither RNG draws nor memory.
    """

    magnitude_a: np.ndarray | float
    magnitude_b: np.ndarray | float
    phase_a: np.ndarray | float
    phase_b: np.ndarray | float
    systematic: np.ndarray | float


@dataclass
class PreparedMatmul:
    """SAMPLE+ENCODE output of one (chunk of a) noisy matmul.

    Everything COMPUTE+DETECT needs, produced by
    :meth:`DPTC.prepare_chunk` and consumed exactly once by
    :meth:`DPTC.finish_chunk`.  Holding one of these per in-flight
    pipeline chunk is what lets the hot path overlap stages in
    wall-clock time without reordering any floating-point operation.
    """

    out_shape: tuple[int, ...]
    beta_a: np.ndarray
    beta_b: np.ndarray
    has_zero: bool
    systematic: np.ndarray | float
    a_cos: np.ndarray
    a_sin: np.ndarray
    b_cos: np.ndarray
    b_sin: np.ndarray
    row_term: np.ndarray
    col_term: np.ndarray


#: Entries kept in the per-contraction-length dispersion factor cache.
#: One entry per distinct ``d`` seen by the engine; ragged serving
#: traffic would grow an uncapped cache without bound.
CHANNEL_CACHE_SIZE = 32


class DPTC:
    """Functional (optionally noisy) executor for DPTC matrix multiplies.

    Args:
        geometry: crossbar dimensions.
        noise: non-ideality bundle (defaults to exact arithmetic).
        grid: DWDM grid; defaults to the paper's grid sized to
            ``geometry.n_lambda`` channels.
    """

    def __init__(
        self,
        geometry: DPTCGeometry | None = None,
        noise: NoiseModel | None = None,
        grid: WDMGrid | None = None,
    ) -> None:
        self.geometry = geometry if geometry is not None else DPTCGeometry()
        self.noise = noise if noise is not None else NoiseModel.ideal()
        self.grid = grid if grid is not None else WDMGrid(self.geometry.n_lambda)
        if self.grid.n_channels != self.geometry.n_lambda:
            raise ValueError(
                f"grid has {self.grid.n_channels} channels, geometry expects "
                f"{self.geometry.n_lambda}"
            )
        if self.noise.include_dispersion:
            self.profile = dispersion_profile(self.grid)
        else:
            self.profile = DispersionProfile.ideal(self.geometry.n_lambda)
        self._channel_cache: OrderedDict[
            int, tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = OrderedDict()

    def tile_matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """One-shot ``[Nh, Nlambda] x [Nlambda, Nv]`` tile product."""
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        expected_a = (self.geometry.n_h, self.geometry.n_lambda)
        expected_b = (self.geometry.n_lambda, self.geometry.n_v)
        if a.shape != expected_a or b.shape != expected_b:
            raise ValueError(
                f"tile shapes must be {expected_a} x {expected_b}, "
                f"got {a.shape} x {b.shape}"
            )
        return self.matmul(a, b, rng=rng)

    @staticmethod
    def _broadcast_out_shape(
        a_shape: tuple[int, ...], b_shape: tuple[int, ...]
    ) -> tuple[int, ...]:
        """Validate stacked operand shapes; return the output shape."""
        if len(a_shape) < 2 or len(b_shape) < 2:
            raise ValueError(
                f"operands must be at least 2-D, got {a_shape} x {b_shape}"
            )
        if a_shape[-1] != b_shape[-2]:
            raise ValueError(
                f"incompatible matmul shapes: {a_shape} x {b_shape}"
            )
        try:
            batch = np.broadcast_shapes(a_shape[:-2], b_shape[:-2])
        except ValueError as exc:
            raise ValueError(
                f"batch dims not broadcastable: {a_shape} x {b_shape}"
            ) from exc
        return batch + (a_shape[-2], b_shape[-1])

    def sample_noise(
        self,
        a_shape: tuple[int, ...],
        b_shape: tuple[int, ...],
        rng: np.random.Generator,
    ) -> DPTCNoiseDraw:
        """Draw every stochastic factor for one (batched) matmul.

        The sampling order is fixed — magnitude A, magnitude B, phase A,
        phase B, systematic — and each array is drawn in one vectorised
        call, so the batched engine and the per-matrix reference loop
        consume an identical RNG stream when handed the same generator.
        """
        a_shape = tuple(a_shape)
        b_shape = tuple(b_shape)
        out_shape = self._broadcast_out_shape(a_shape, b_shape)
        encoding = self.noise.encoding
        # (shape, std, base) per draw; factors are base + std * N(0, 1).
        segments = (
            (a_shape, encoding.magnitude_std, 1.0),
            (b_shape, encoding.magnitude_std, 1.0),
            (a_shape, encoding.phase_std_rad, 0.0),
            (b_shape, encoding.phase_std_rad, 0.0),
            (out_shape, self.noise.systematic.std, 1.0),
        )
        # One fused standard-normal draw for all segments.  The PCG64
        # stream is consumed value-by-value, so slicing one big draw is
        # bit-identical to five sequential ``rng.normal`` calls — the
        # documented sampling order is unchanged, just cheaper.  The
        # magnitude pair and the phase pair each share a std, so each
        # pair is scaled in one pass.
        total = sum(math.prod(shape) for shape, std, _ in segments if std > 0.0)
        z = rng.standard_normal(total) if total else None
        values: list[np.ndarray | float] = []
        offset = 0
        for pair in (segments[0:2], segments[2:4], segments[4:5]):
            std, base = pair[0][1], pair[0][2]
            if std == 0.0:
                values.extend(base for _ in pair)
                continue
            counts = [math.prod(shape) for shape, _, _ in pair]
            block = z[offset : offset + sum(counts)]
            offset += sum(counts)
            block *= std
            if base != 0.0:
                block += base
            lo = 0
            for (shape, _, _), count in zip(pair, counts):
                values.append(block[lo : lo + count].reshape(shape))
                lo += count
        return DPTCNoiseDraw(*values)

    def _channel_factors(
        self, d: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-contraction-element dispersion factors (cyclic channels).

        Cached per contraction length: the profile is fixed at
        construction, so the cyclic tiling never changes.  The cache is
        a small LRU capped at :data:`CHANNEL_CACHE_SIZE` entries —
        ragged serving traffic (variable-``d`` GEMVs against a
        long-lived engine) touches unboundedly many distinct lengths,
        and evicted entries are merely recomputed, never wrong.
        """
        cached = self._channel_cache.get(d)
        if cached is None:
            kappa = np.resize(self.profile.kappa, d)
            phase_deviation = np.resize(self.profile.phase_deviation, d)
            two_tk = 2.0 * np.sqrt(kappa * (1.0 - kappa))
            cached = (kappa, phase_deviation, two_tk)
            self._channel_cache[d] = cached
            if len(self._channel_cache) > CHANNEL_CACHE_SIZE:
                self._channel_cache.popitem(last=False)
        else:
            self._channel_cache.move_to_end(d)
        return cached

    def matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None = None,
        draw: DPTCNoiseDraw | None = None,
    ) -> np.ndarray:
        """Full-range matrix product ``a @ b`` executed on the DPTC.

        Operands may be stacked: ``[..., m, d] x [..., d, n]`` with
        numpy-style broadcasting of the leading batch axes (a 2-D weight
        against 3-D activations is fine).  The whole batch — every head
        and every sequence — is computed in single whole-batch matmul
        expressions; there is no per-matrix Python loop.

        Arbitrary GEMM sizes are supported; the contraction dimension is
        mapped cyclically onto the WDM channels (tile ``i`` of the
        contraction uses channel ``i mod Nlambda``), which is exactly the
        channel assignment of tiled execution on the hardware.

        Operands are normalised per matrix by their maximum magnitudes
        (the hardware's ``beta_x``/``beta_y`` scaling) and the output is
        rescaled, so values of any range are accepted.

        Args:
            a, b: stacked operands.
            rng: noise sampling stream (fresh unseeded generator if
                omitted); unused when ``draw`` is given.
            draw: a pre-sampled :class:`DPTCNoiseDraw` for this operand
                pair, e.g. to share one realisation with
                :meth:`matmul_reference`.
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        out_shape = self._broadcast_out_shape(a.shape, b.shape)
        if self.noise.is_ideal:
            return np.matmul(a, b)
        prepared = self.prepare_chunk(a, b, rng=rng, draw=draw)
        if prepared is None:
            return np.zeros(out_shape)
        return self.finish_chunk(prepared)

    def predraw(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None,
    ) -> DPTCNoiseDraw | None:
        """The draw ``matmul(a, b, rng=rng)`` would consume, pre-sampled.

        ``None`` when the call would short-circuit without sampling: an
        ideal engine, or an all-zero operand (the caller then fills
        zeros).  Used by the process backend to ship *pre-drawn* noise
        with shard jobs — the parent consumes the per-core stream in
        exactly the order the worker would have, so results stay
        bit-identical while the hot path stops pickling generators.
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if self.noise.is_ideal:
            return None
        if not np.abs(a).any() or not np.abs(b).any():
            return None
        if rng is None:
            rng = np.random.default_rng()
        return self.sample_noise(a.shape, b.shape, rng)

    def prepare_chunk(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None = None,
        draw: DPTCNoiseDraw | None = None,
    ) -> PreparedMatmul | None:
        """SAMPLE+ENCODE stages of one noisy matmul (or chunk thereof).

        Returns the :class:`PreparedMatmul` that :meth:`finish_chunk`
        turns into the result, or ``None`` when the draw-less all-zero
        short-circuit fires (the caller returns zeros; the RNG stream
        is untouched, exactly like :meth:`matmul`).  Requires a
        non-ideal noise model — the ideal path has no stages to split.

        ``finish_chunk(prepare_chunk(a, b, rng=rng))`` is bit-identical
        to ``matmul(a, b, rng=rng)`` by construction: ``matmul`` is
        implemented on this very pair.
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        out_shape = self._broadcast_out_shape(a.shape, b.shape)

        # Per-matrix normalisation: each [m, d] / [d, n] slice of the
        # stack gets its own beta (all-zero slices are masked at the end).
        beta_a = np.max(np.abs(a), axis=(-2, -1), keepdims=True)
        beta_b = np.max(np.abs(b), axis=(-2, -1), keepdims=True)
        if draw is None:
            if not beta_a.any() or not beta_b.any():
                # An all-zero operand short-circuits before any noise is
                # sampled, like the reference loop's per-matrix early
                # return — the shared RNG stream stays aligned.
                return None
            if rng is None:
                rng = np.random.default_rng()
            draw = self.sample_noise(a.shape, b.shape, rng)
        has_zero = bool((beta_a == 0.0).any() or (beta_b == 0.0).any())
        a_hat = a / (np.where(beta_a == 0.0, 1.0, beta_a) if has_zero else beta_a)
        b_hat = b / (np.where(beta_b == 0.0, 1.0, beta_b) if has_zero else beta_b)
        a_hat *= draw.magnitude_a
        b_hat *= draw.magnitude_b

        d = a.shape[-1]
        kappa, phase_deviation, two_tk = self._channel_factors(d)

        # Additive term first, while a_hat/b_hat are pristine:
        # sum_i -(2*kappa_i - 1) * (a_i^2 - b_i^2) / 2.  The fused
        # einsum squares and contracts in one pass.
        additive = -(2.0 * kappa - 1.0)
        row_term = np.einsum("...md,...md,d->...m", a_hat, a_hat, additive)
        col_term = np.einsum("d,...dn,...dn->...n", additive, b_hat, b_hat)

        # Multiplicative term: sum_i 2*t_i*k_i * cos(dphi_i + py - px) * a*b,
        # expanded via cos(P - Q) so it reduces to two exact matmuls.
        # Buffers are recycled (trig results host the products) — every
        # array here is freshly allocated by this call, never caller- or
        # draw-owned.
        angle_b = phase_deviation[:, None] + draw.phase_b
        cos_b = np.cos(angle_b)
        sin_b = np.sin(angle_b, out=angle_b)
        b_hat *= two_tk[:, None]
        if cos_b.shape == b_hat.shape:
            b_cos = np.multiply(b_hat, cos_b, out=cos_b)
            b_sin = np.multiply(b_hat, sin_b, out=sin_b)
        else:  # scalar phase drift: angle is the [d, 1] channel profile
            b_cos = b_hat * cos_b
            b_sin = b_hat * sin_b
        if isinstance(draw.phase_a, np.ndarray):
            cos_a = np.cos(draw.phase_a)
            sin_a = np.sin(draw.phase_a)
            a_cos = np.multiply(a_hat, cos_a, out=cos_a)
            a_sin = np.multiply(a_hat, sin_a, out=sin_a)
        else:
            a_cos = a_hat * math.cos(draw.phase_a)
            a_sin = a_hat * math.sin(draw.phase_a)
        return PreparedMatmul(
            out_shape=out_shape,
            beta_a=beta_a,
            beta_b=beta_b,
            has_zero=has_zero,
            systematic=draw.systematic,
            a_cos=a_cos,
            a_sin=a_sin,
            b_cos=b_cos,
            b_sin=b_sin,
            row_term=row_term,
            col_term=col_term,
        )

    def compute_chunk(self, prepared: PreparedMatmul) -> np.ndarray:
        """COMPUTE stage: the two exact matmuls plus the additive terms.

        Repeatable — it never mutates ``prepared`` (the profiling
        harness relies on that).
        """
        out = prepared.a_cos @ prepared.b_cos
        out += prepared.a_sin @ prepared.b_sin
        out += 0.5 * prepared.row_term[..., :, None]
        out -= 0.5 * prepared.col_term[..., None, :]
        return out

    def detect_chunk(
        self, prepared: PreparedMatmul, out: np.ndarray
    ) -> np.ndarray:
        """DETECT stage: systematic factors, beta rescale, zero masking.

        Consumes ``out`` (in-place scaling) — pass a fresh
        :meth:`compute_chunk` result, or a copy when profiling.
        """
        out *= prepared.systematic
        out *= prepared.beta_a * prepared.beta_b
        if prepared.has_zero:
            out = np.where(
                (prepared.beta_a == 0.0) | (prepared.beta_b == 0.0), 0.0, out
            )
        return out

    def finish_chunk(self, prepared: PreparedMatmul) -> np.ndarray:
        """COMPUTE+DETECT stages: turn a prepared chunk into its result."""
        return self.detect_chunk(prepared, self.compute_chunk(prepared))

    def matmul_reference(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None = None,
        draw: DPTCNoiseDraw | None = None,
    ) -> np.ndarray:
        """Per-matrix Python-loop execution (the pre-batching engine).

        Preserved as ground truth for :meth:`matmul`: every ``[m, d] x
        [d, n]`` slice of the stack is computed by a separate 2-D
        evaluation, exactly like the original executor loop.

        Two RNG disciplines are supported:

        * ``draw`` given — the loop consumes the one whole-batch noise
          realisation (sampling order preserved), so the result matches
          the vectorised engine to machine precision;
        * ``rng`` given (or neither) — noise is sampled per matrix
          inside the loop, the original engine's behaviour; results
          then match the batched path only distributionally.
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        out_shape = self._broadcast_out_shape(a.shape, b.shape)
        batch = out_shape[:-2]
        a_full = np.broadcast_to(a, batch + a.shape[-2:])
        b_full = np.broadcast_to(b, batch + b.shape[-2:])

        if self.noise.is_ideal:
            out = np.empty(out_shape)
            for index in np.ndindex(batch):
                out[index] = a_full[index] @ b_full[index]
            return out

        out = np.empty(out_shape)
        if draw is None:
            # Original discipline: every slice samples its own noise
            # from the shared generator, exactly like the pre-batching
            # engine did (five separate draws per matrix).
            if rng is None:
                rng = np.random.default_rng()
            for index in np.ndindex(batch):
                out[index] = self._matmul_2d_legacy(a_full[index], b_full[index], rng)
            return out

        magnitude_a = np.broadcast_to(draw.magnitude_a, a_full.shape)
        magnitude_b = np.broadcast_to(draw.magnitude_b, b_full.shape)
        phase_a = np.broadcast_to(draw.phase_a, a_full.shape)
        phase_b = np.broadcast_to(draw.phase_b, b_full.shape)
        systematic = np.broadcast_to(draw.systematic, out_shape)
        for index in np.ndindex(batch):
            slice_draw = DPTCNoiseDraw(
                magnitude_a=magnitude_a[index],
                magnitude_b=magnitude_b[index],
                phase_a=phase_a[index],
                phase_b=phase_b[index],
                systematic=systematic[index],
            )
            out[index] = self._noisy_matmul_2d(
                a_full[index], b_full[index], slice_draw
            )
        return out

    def _matmul_2d_legacy(
        self, a: np.ndarray, b: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """The original (pre-batching) noisy 2-D product, verbatim.

        Samples noise inline — magnitude A, magnitude B, phase A,
        phase B, systematic, each as its own draw — and recomputes the
        channel tiling per call, exactly like the seed implementation.
        """
        beta_a = float(np.max(np.abs(a)))
        beta_b = float(np.max(np.abs(b)))
        if beta_a == 0.0 or beta_b == 0.0:
            return np.zeros((a.shape[0], b.shape[1]))

        a_hat = self.noise.encoding.perturb_magnitude(a / beta_a, rng)
        b_hat = self.noise.encoding.perturb_magnitude(b / beta_b, rng)

        d = a.shape[1]
        kappa = np.resize(self.profile.kappa, d)
        phase_deviation = np.resize(self.profile.phase_deviation, d)
        two_tk = 2.0 * np.sqrt(kappa * (1.0 - kappa))

        phase_a = self.noise.encoding.sample_phase(a.shape, rng)
        phase_b = self.noise.encoding.sample_phase(b.shape, rng)
        angle_b = phase_deviation[:, None] + phase_b
        a_cos = a_hat * np.cos(phase_a)
        a_sin = a_hat * np.sin(phase_a)
        b_cos = two_tk[:, None] * b_hat * np.cos(angle_b)
        b_sin = two_tk[:, None] * b_hat * np.sin(angle_b)
        out = a_cos @ b_cos + a_sin @ b_sin

        additive = -(2.0 * kappa - 1.0)
        out += 0.5 * ((a_hat**2) @ additive)[:, None]
        out -= 0.5 * (additive @ (b_hat**2))[None, :]

        out = self.noise.systematic.apply(out, rng)
        return out * beta_a * beta_b

    def _noisy_matmul_2d(
        self, a: np.ndarray, b: np.ndarray, draw: DPTCNoiseDraw
    ) -> np.ndarray:
        """One noisy 2-D product with an explicit noise realisation."""
        beta_a = float(np.max(np.abs(a)))
        beta_b = float(np.max(np.abs(b)))
        if beta_a == 0.0 or beta_b == 0.0:
            return np.zeros((a.shape[0], b.shape[1]))

        a_hat = (a / beta_a) * draw.magnitude_a
        b_hat = (b / beta_b) * draw.magnitude_b
        kappa, phase_deviation, two_tk = self._channel_factors(a.shape[1])

        angle_b = phase_deviation[:, None] + draw.phase_b
        a_cos = a_hat * np.cos(draw.phase_a)
        a_sin = a_hat * np.sin(draw.phase_a)
        b_cos = two_tk[:, None] * b_hat * np.cos(angle_b)
        b_sin = two_tk[:, None] * b_hat * np.sin(angle_b)
        out = a_cos @ b_cos + a_sin @ b_sin

        additive = -(2.0 * kappa - 1.0)
        out += 0.5 * ((a_hat**2) @ additive)[:, None]
        out -= 0.5 * (additive @ (b_hat**2))[None, :]

        out = out * draw.systematic
        return out * (beta_a * beta_b)
