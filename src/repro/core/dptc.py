"""DPTC: the dynamically-operated photonic tensor core (Sec. III-B).

A DPTC is a crossbar of ``Nv x Nh`` DDot engines sharing modulated WDM
signals along rows and columns.  In one clock cycle it computes a full
``[Nh, Nlambda] x [Nlambda, Nv]`` matrix-matrix product; larger GEMMs
are tiled over cycles.

Two views are provided:

* :class:`DPTCGeometry` — the pure arithmetic of the core: per-cycle
  throughput, tile counts for a GEMM, and the intra-core operand-sharing
  encoding-cost model of Eq. 6.
* :class:`DPTC` — a functional (noisy) executor for arbitrary-size
  matrix multiplication, vectorised over the whole GEMM.  It reproduces
  looping the analytic DDot over every tile, including per-channel
  dispersion (channels are assigned cyclically along the contraction
  dimension) and stochastic encoding noise per encoded element.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.dispersion import DispersionProfile, dispersion_profile
from repro.core.noise import NoiseModel
from repro.optics.wdm import WDMGrid


@dataclass(frozen=True)
class DPTCGeometry:
    """Dimensions of one DPTC crossbar (paper Table II notation)."""

    n_h: int = 12  #: input waveguides along the horizontal direction
    n_v: int = 12  #: input waveguides along the vertical direction
    n_lambda: int = 12  #: wavelengths multiplexed per waveguide

    def __post_init__(self) -> None:
        if min(self.n_h, self.n_v, self.n_lambda) < 1:
            raise ValueError(f"all DPTC dimensions must be >= 1, got {self}")

    @property
    def n_ddots(self) -> int:
        """Number of DDot engines in the crossbar."""
        return self.n_h * self.n_v

    @property
    def macs_per_cycle(self) -> int:
        """Multiply-accumulates completed per clock cycle."""
        return self.n_h * self.n_lambda * self.n_v

    @property
    def ops_per_cycle(self) -> int:
        """Operations per cycle (2 per MAC, the usual TOPS convention)."""
        return 2 * self.macs_per_cycle

    def tile_counts(self, m: int, d: int, n: int) -> tuple[int, int, int]:
        """Tile grid needed for an ``[m, d] x [d, n]`` GEMM."""
        if min(m, d, n) < 1:
            raise ValueError(f"GEMM dims must be >= 1, got {(m, d, n)}")
        return (
            math.ceil(m / self.n_h),
            math.ceil(d / self.n_lambda),
            math.ceil(n / self.n_v),
        )

    def cycles(self, m: int, d: int, n: int) -> int:
        """Clock cycles one DPTC needs for an ``[m, d] x [d, n]`` GEMM."""
        tiles_m, tiles_d, tiles_n = self.tile_counts(m, d, n)
        return tiles_m * tiles_d * tiles_n

    def utilization(self, m: int, d: int, n: int) -> float:
        """Fraction of the crossbar's MACs doing useful work for a GEMM."""
        useful = m * d * n
        provisioned = self.cycles(m, d, n) * self.macs_per_cycle
        return useful / provisioned

    def encoding_ops_shared(self, tiles_h: int = 1, tiles_v: int = 1) -> int:
        """Scalar encodings (DAC+MZM ops) per tile-MM with intra-core sharing.

        Eq. 6: the crossbar broadcasts each modulated waveguide to a full
        row/column of DDots, so a ``[Nh,Nl] x [Nl,Nv]`` shot needs only
        ``Nh*Nl + Nl*Nv`` encodings.
        """
        return (self.n_h * self.n_lambda + self.n_lambda * self.n_v) * tiles_h * tiles_v

    def encoding_ops_unshared(self, tiles_h: int = 1, tiles_v: int = 1) -> int:
        """Scalar encodings without operand sharing (separate dot engines).

        Prior designs encode both operands for every DDot independently:
        ``2 * Nh * Nv * Nlambda`` per shot.
        """
        return (2 * self.n_h * self.n_v * self.n_lambda) * tiles_h * tiles_v

    def encoding_saving(self) -> float:
        """Encoding-cost reduction factor ``2*Nh*Nv / (Nh + Nv)``.

        12x for the paper's 12x12x12 core.
        """
        return self.encoding_ops_unshared() / self.encoding_ops_shared()


class DPTC:
    """Functional (optionally noisy) executor for DPTC matrix multiplies.

    Args:
        geometry: crossbar dimensions.
        noise: non-ideality bundle (defaults to exact arithmetic).
        grid: DWDM grid; defaults to the paper's grid sized to
            ``geometry.n_lambda`` channels.
    """

    def __init__(
        self,
        geometry: DPTCGeometry | None = None,
        noise: NoiseModel | None = None,
        grid: WDMGrid | None = None,
    ) -> None:
        self.geometry = geometry if geometry is not None else DPTCGeometry()
        self.noise = noise if noise is not None else NoiseModel.ideal()
        self.grid = grid if grid is not None else WDMGrid(self.geometry.n_lambda)
        if self.grid.n_channels != self.geometry.n_lambda:
            raise ValueError(
                f"grid has {self.grid.n_channels} channels, geometry expects "
                f"{self.geometry.n_lambda}"
            )
        if self.noise.include_dispersion:
            self.profile = dispersion_profile(self.grid)
        else:
            self.profile = DispersionProfile.ideal(self.geometry.n_lambda)

    def tile_matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """One-shot ``[Nh, Nlambda] x [Nlambda, Nv]`` tile product."""
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        expected_a = (self.geometry.n_h, self.geometry.n_lambda)
        expected_b = (self.geometry.n_lambda, self.geometry.n_v)
        if a.shape != expected_a or b.shape != expected_b:
            raise ValueError(
                f"tile shapes must be {expected_a} x {expected_b}, "
                f"got {a.shape} x {b.shape}"
            )
        return self.matmul(a, b, rng=rng)

    def matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Full-range matrix product ``a @ b`` executed on the DPTC.

        Arbitrary GEMM sizes are supported; the contraction dimension is
        mapped cyclically onto the WDM channels (tile ``i`` of the
        contraction uses channel ``i mod Nlambda``), which is exactly the
        channel assignment of tiled execution on the hardware.

        Operands are normalised per matrix by their maximum magnitudes
        (the hardware's ``beta_x``/``beta_y`` scaling) and the output is
        rescaled, so values of any range are accepted.
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(
                f"incompatible matmul shapes: {a.shape} x {b.shape}"
            )
        if self.noise.is_ideal:
            return a @ b

        if rng is None:
            rng = np.random.default_rng()
        beta_a = float(np.max(np.abs(a)))
        beta_b = float(np.max(np.abs(b)))
        if beta_a == 0.0 or beta_b == 0.0:
            return np.zeros((a.shape[0], b.shape[1]))

        a_hat = self.noise.encoding.perturb_magnitude(a / beta_a, rng)
        b_hat = self.noise.encoding.perturb_magnitude(b / beta_b, rng)

        d = a.shape[1]
        kappa = np.resize(self.profile.kappa, d)
        phase_deviation = np.resize(self.profile.phase_deviation, d)
        two_tk = 2.0 * np.sqrt(kappa * (1.0 - kappa))

        # Multiplicative term: sum_i 2*t_i*k_i * cos(dphi_i + py - px) * a*b,
        # expanded via cos(P - Q) so it reduces to two exact matmuls.
        phase_a = self.noise.encoding.sample_phase(a.shape, rng)
        phase_b = self.noise.encoding.sample_phase(b.shape, rng)
        angle_b = phase_deviation[:, None] + phase_b
        a_cos = a_hat * np.cos(phase_a)
        a_sin = a_hat * np.sin(phase_a)
        b_cos = two_tk[:, None] * b_hat * np.cos(angle_b)
        b_sin = two_tk[:, None] * b_hat * np.sin(angle_b)
        out = a_cos @ b_cos + a_sin @ b_sin

        # Additive term: sum_i -(2*kappa_i - 1) * (a_i^2 - b_i^2) / 2.
        additive = -(2.0 * kappa - 1.0)
        out += 0.5 * ((a_hat**2) @ additive)[:, None]
        out -= 0.5 * (additive @ (b_hat**2))[None, :]

        out = self.noise.systematic.apply(out, rng)
        return out * beta_a * beta_b
