"""Load generators for the serving engine (benchmark + CLI harness).

Two canonical arrival patterns:

* **Open-loop Poisson** — requests arrive on a schedule drawn from an
  exponential inter-arrival distribution, independent of completions
  (the regime that exposes queueing and batching behaviour; seeded so a
  benchmark's arrival process is reproducible).
* **Closed-loop** — ``concurrency`` synthetic users each submit, wait
  for the result, and immediately submit again for ``rounds`` turns
  (the regime that measures sustainable service rate under think-time
  zero).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Sequence

import numpy as np

from repro.serving.engine import ServingEngine


def poisson_gaps(
    n: int, mean_gap_s: float, rng: np.random.Generator
) -> np.ndarray:
    """``n`` exponential inter-arrival gaps with the given mean (seconds)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if mean_gap_s < 0:
        raise ValueError(f"mean_gap_s must be >= 0, got {mean_gap_s}")
    if mean_gap_s == 0:
        return np.zeros(n)
    return rng.exponential(mean_gap_s, size=n)


def _handle_stats(handles: Sequence) -> dict:
    if not handles:
        return {
            "latency_p50_ms": 0.0,
            "latency_p95_ms": 0.0,
            "latency_p99_ms": 0.0,
            "queue_wait_p50_ms": 0.0,
            "mean_batch_size": 0.0,
        }
    latencies = [h.latency for h in handles]
    waits = [h.queue_wait for h in handles]
    occupancy = [h.batch_size for h in handles if h.batch_size]
    return {
        "latency_p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "latency_p95_ms": float(np.percentile(latencies, 95) * 1e3),
        "latency_p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "queue_wait_p50_ms": float(np.percentile(waits, 50) * 1e3),
        "mean_batch_size": float(np.mean(occupancy)) if occupancy else 0.0,
    }


def run_open_loop(
    engine: ServingEngine,
    payloads: Sequence[Any],
    gaps: Sequence[float],
    *,
    submit_kwargs: Callable[[int], dict] | None = None,
) -> dict:
    """Open-loop run: submit on the arrival schedule, wait for all.

    ``gaps[i]`` is the pause before submitting ``payloads[i]``.  Returns
    throughput over the full makespan (first submit to last completion)
    plus latency percentiles from the request handles.
    """
    if len(payloads) != len(gaps):
        raise ValueError(
            f"{len(payloads)} payloads vs {len(gaps)} arrival gaps"
        )
    handles = []
    start = time.perf_counter()
    for i, (payload, gap) in enumerate(zip(payloads, gaps)):
        if gap > 0:
            time.sleep(gap)
        kwargs = submit_kwargs(i) if submit_kwargs is not None else {}
        handles.append(engine.submit(payload, **kwargs))
    for handle in handles:
        handle.result(timeout=60.0)
    elapsed = time.perf_counter() - start
    return {
        "pattern": "open-loop-poisson",
        "requests": len(handles),
        "elapsed_s": elapsed,
        "throughput_rps": len(handles) / elapsed if elapsed > 0 else 0.0,
        **_handle_stats(handles),
    }


def run_closed_loop(
    engine: ServingEngine,
    payloads: Sequence[Any],
    *,
    rounds: int = 4,
    submit_kwargs: Callable[[int], dict] | None = None,
) -> dict:
    """Closed-loop run: ``len(payloads)`` users in submit-wait-repeat.

    Each user ``i`` submits ``payloads[i]`` ``rounds`` times, waiting
    for each result before the next submission.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    handles_per_user: list[list] = [[] for _ in payloads]
    errors: list[BaseException] = []

    def user(i: int, payload: Any) -> None:
        try:
            for _ in range(rounds):
                kwargs = submit_kwargs(i) if submit_kwargs is not None else {}
                handle = engine.submit(payload, **kwargs)
                handle.result(timeout=60.0)
                handles_per_user[i].append(handle)
        except BaseException as error:  # noqa: BLE001 - surfaced to caller
            errors.append(error)

    threads = [
        threading.Thread(target=user, args=(i, payload), daemon=True)
        for i, payload in enumerate(payloads)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    handles = [handle for user_handles in handles_per_user for handle in user_handles]
    return {
        "pattern": "closed-loop",
        "concurrency": len(payloads),
        "requests": len(handles),
        "elapsed_s": elapsed,
        "throughput_rps": len(handles) / elapsed if elapsed > 0 else 0.0,
        **_handle_stats(handles),
    }
