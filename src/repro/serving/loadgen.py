"""Load generators for the serving engine (benchmark + CLI harness).

Two canonical arrival patterns:

* **Open-loop Poisson** — requests arrive on a schedule drawn from an
  exponential inter-arrival distribution, independent of completions
  (the regime that exposes queueing and batching behaviour; seeded so a
  benchmark's arrival process is reproducible).
* **Closed-loop** — ``concurrency`` synthetic users each submit, wait
  for the result, and immediately submit again for ``rounds`` turns
  (the regime that measures sustainable service rate under think-time
  zero).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.serving.engine import ServingEngine


def poisson_gaps(
    n: int, mean_gap_s: float, rng: np.random.Generator
) -> np.ndarray:
    """``n`` exponential inter-arrival gaps with the given mean (seconds)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if mean_gap_s < 0:
        raise ValueError(f"mean_gap_s must be >= 0, got {mean_gap_s}")
    if mean_gap_s == 0:
        return np.zeros(n)
    return rng.exponential(mean_gap_s, size=n)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a multi-tenant arrival mix.

    Attributes:
        name: tenant label (appears on every arrival it generates).
        rate_rps: mean Poisson arrival rate of this tenant's stream.
        weights: request-kind mix, ``kind -> relative weight`` (each
            arrival draws a kind; weights are normalized internally).
        sessions: when > 0, arrivals carry a session id drawn uniformly
            from ``{name}/s0 .. {name}/s{sessions-1}`` — the
            decode-shaped traffic whose placement the cluster's
            session-affinity routing cares about.
    """

    name: str
    rate_rps: float
    weights: Mapping[str, float] = field(
        default_factory=lambda: {"default": 1.0}
    )
    sessions: int = 0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")
        if self.sessions < 0:
            raise ValueError(f"sessions must be >= 0, got {self.sessions}")
        if not self.weights:
            raise ValueError("weights must name at least one request kind")
        if any(w < 0 for w in self.weights.values()) or not any(
            w > 0 for w in self.weights.values()
        ):
            raise ValueError(f"weights must be >= 0 with a positive sum: {self.weights}")


@dataclass(frozen=True)
class Arrival:
    """One request of a generated arrival schedule."""

    time: float  #: absolute arrival instant (seconds from schedule start)
    tenant: str
    kind: str
    session: str | None  #: session id for decode-shaped tenants, else None
    index: int  #: global arrival order (0-based, after merging tenants)


def multi_tenant_arrivals(
    tenants: Sequence[TenantSpec],
    *,
    horizon_s: float,
    rng: np.random.Generator,
) -> list[Arrival]:
    """Merge per-tenant Poisson streams into one seeded arrival schedule.

    Each tenant draws an independent exponential-gap stream at its own
    rate until ``horizon_s``, tagging every arrival with a request kind
    (weighted draw) and, for session-shaped tenants, a session id.  The
    merged schedule is sorted by time (ties broken by tenant order) and
    is a pure function of the specs and the generator state — both
    ``bench_serving`` and ``bench_cluster`` replay identical mixes from
    equal seeds.
    """
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be > 0, got {horizon_s}")
    if not tenants:
        raise ValueError("need at least one TenantSpec")
    # One child generator per tenant, derived in spec order, so a
    # tenant's stream does not depend on how many arrivals the others
    # drew before it.
    seeds = rng.integers(0, 2**63, size=len(tenants))
    merged: list[tuple[float, int, Arrival]] = []
    for t_index, (spec, seed) in enumerate(zip(tenants, seeds)):
        tenant_rng = np.random.default_rng(int(seed))
        kinds = list(spec.weights)
        probabilities = np.asarray(
            [spec.weights[kind] for kind in kinds], dtype=float
        )
        probabilities /= probabilities.sum()
        now = 0.0
        while True:
            now += float(tenant_rng.exponential(1.0 / spec.rate_rps))
            if now > horizon_s:
                break
            kind = kinds[int(tenant_rng.choice(len(kinds), p=probabilities))]
            session = (
                f"{spec.name}/s{int(tenant_rng.integers(spec.sessions))}"
                if spec.sessions
                else None
            )
            merged.append(
                (now, t_index, Arrival(now, spec.name, kind, session, 0))
            )
    merged.sort(key=lambda item: (item[0], item[1]))
    return [
        Arrival(a.time, a.tenant, a.kind, a.session, i)
        for i, (_, _, a) in enumerate(merged)
    ]


def arrival_gaps(arrivals: Sequence[Arrival]) -> list[float]:
    """Inter-arrival gaps of a schedule (for :func:`run_open_loop`)."""
    gaps = []
    previous = 0.0
    for arrival in arrivals:
        gaps.append(arrival.time - previous)
        previous = arrival.time
    return gaps


def _handle_stats(handles: Sequence) -> dict:
    if not handles:
        return {
            "latency_p50_ms": 0.0,
            "latency_p95_ms": 0.0,
            "latency_p99_ms": 0.0,
            "queue_wait_p50_ms": 0.0,
            "mean_batch_size": 0.0,
        }
    latencies = [h.latency for h in handles]
    waits = [h.queue_wait for h in handles]
    occupancy = [h.batch_size for h in handles if h.batch_size]
    return {
        "latency_p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "latency_p95_ms": float(np.percentile(latencies, 95) * 1e3),
        "latency_p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "queue_wait_p50_ms": float(np.percentile(waits, 50) * 1e3),
        "mean_batch_size": float(np.mean(occupancy)) if occupancy else 0.0,
    }


def run_open_loop(
    engine: ServingEngine,
    payloads: Sequence[Any],
    gaps: Sequence[float],
    *,
    submit_kwargs: Callable[[int], dict] | None = None,
) -> dict:
    """Open-loop run: submit on the arrival schedule, wait for all.

    ``gaps[i]`` is the pause before submitting ``payloads[i]``.  Returns
    throughput over the full makespan (first submit to last completion)
    plus latency percentiles from the request handles.
    """
    if len(payloads) != len(gaps):
        raise ValueError(
            f"{len(payloads)} payloads vs {len(gaps)} arrival gaps"
        )
    handles = []
    start = time.perf_counter()
    for i, (payload, gap) in enumerate(zip(payloads, gaps)):
        if gap > 0:
            time.sleep(gap)
        kwargs = submit_kwargs(i) if submit_kwargs is not None else {}
        handles.append(engine.submit(payload, **kwargs))
    for handle in handles:
        handle.result(timeout=60.0)
    elapsed = time.perf_counter() - start
    return {
        "pattern": "open-loop-poisson",
        "requests": len(handles),
        "elapsed_s": elapsed,
        "throughput_rps": len(handles) / elapsed if elapsed > 0 else 0.0,
        **_handle_stats(handles),
    }


@dataclass(frozen=True)
class DecodeSessionSpec:
    """One decode session of a mixed-length trace.

    ``arrival_s`` is when the session's first step arrives; ``steps``
    is how many tokens it generates.  The per-step token vectors come
    from :func:`decode_payload` — a pure function of ``(seed,
    session_index, step)`` — so replays of the same trace are
    bit-identical across schedulers, engines, and cluster layouts.
    """

    session_id: str
    arrival_s: float
    steps: int

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError(f"arrival_s must be >= 0, got {self.arrival_s}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")


def mixed_decode_trace(
    sessions: int,
    *,
    seed: int = 0,
    min_steps: int = 2,
    max_steps: int = 10,
    horizon_s: float = 0.01,
) -> list[DecodeSessionSpec]:
    """Seeded mixed-length decode trace (the continuous-batching gate).

    Sessions arrive uniformly over ``horizon_s`` with uniformly drawn
    generation lengths in ``[min_steps, max_steps]`` — the ragged mix
    where request-level batching strands lanes behind stragglers and
    pays window waits, while iteration-level scheduling recomposes
    every step.
    """
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    if not 1 <= min_steps <= max_steps:
        raise ValueError(f"need 1 <= min_steps <= max_steps, got {min_steps}, {max_steps}")
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, horizon_s, size=sessions))
    steps = rng.integers(min_steps, max_steps + 1, size=sessions)
    return [
        DecodeSessionSpec(f"s{i}", float(arrivals[i]), int(steps[i]))
        for i in range(sessions)
    ]


def decode_payload(seed: int, session_index: int, step: int, dim: int) -> np.ndarray:
    """The token vector of one decode step — pure in its arguments."""
    rng = np.random.default_rng([seed, session_index, step])
    return rng.normal(0.0, 1.0, dim)


def run_decode_trace(
    target,
    specs: Sequence[DecodeSessionSpec],
    *,
    payload_fn: Callable[[int, int], Any],
    idle_tick_s: float = 0.0,
    release: bool = True,
    max_idle_ticks: int = 1_000_000,
    submit_kwargs: Callable[[int], dict] | None = None,
) -> dict:
    """Replay a decode trace closed-loop under a simulated clock.

    ``target`` is a :class:`~repro.serving.engine.ServingEngine` or a
    :class:`~repro.cluster.cluster.ServingCluster` in manual mode: it
    needs ``submit(payload, session_id=...)``, ``step(force=...)``,
    ``release_session`` and a ``clock`` with ``advance``.  Each session
    is closed-loop — step ``k+1`` is submitted only once step ``k``
    resolved, the real decode dependency — and the loop is event-driven:
    when a step executes nothing, virtual time advances to the next
    session arrival or by ``idle_tick_s`` (the request-mode batching
    window; continuous mode never needs it).  ``payload_fn(session_index,
    step)`` produces each step's payload.  Sessions are released (KV
    freed) on completion when ``release`` is set.
    ``submit_kwargs(session_index)`` adds extra keyword arguments to
    every ``submit`` of that session's steps — e.g. the cluster's
    ``prefix_id=`` for sessions forked from a shared prompt prefix.

    Returns per-session outputs (``outputs[session_id]`` is the list of
    step results, for bit-equality gates), the virtual makespan, and
    steps-per-virtual-second throughput.
    """
    clock = target.clock
    if getattr(clock, "real", True):
        raise ValueError("run_decode_trace needs a simulated clock")
    order = sorted(range(len(specs)), key=lambda i: (specs[i].arrival_s, i))
    pending = list(order)  # spec indices not yet arrived
    inflight: dict[int, Any] = {}  # spec index -> unresolved handle
    next_step = {i: 0 for i in range(len(specs))}
    outputs: dict[str, list[np.ndarray]] = {spec.session_id: [] for spec in specs}
    start = clock.now()
    done = 0
    idle_ticks = 0

    def extra(index: int) -> dict:
        return submit_kwargs(index) if submit_kwargs is not None else {}

    def submit_due() -> None:
        now = clock.now() - start
        while pending and specs[pending[0]].arrival_s <= now + 1e-12:
            index = pending.pop(0)
            inflight[index] = target.submit(
                payload_fn(index, next_step[index]),
                session_id=specs[index].session_id,
                **extra(index),
            )

    submit_due()
    while done < len(specs):
        executed = target.step(force=False)
        progressed = executed > 0
        for index, handle in list(inflight.items()):
            if not handle.done():
                continue
            del inflight[index]
            spec = specs[index]
            outputs[spec.session_id].append(handle.result())
            next_step[index] += 1
            progressed = True
            if next_step[index] >= spec.steps:
                done += 1
                if release:
                    target.release_session(spec.session_id)
            else:
                inflight[index] = target.submit(
                    payload_fn(index, next_step[index]),
                    session_id=spec.session_id,
                    **extra(index),
                )
        if progressed:
            idle_ticks = 0
            submit_due()
            continue
        # Nothing ran and nothing resolved: advance virtual time to the
        # next event — a future arrival, or the batching-window expiry
        # of the oldest undispatched step (its handle carries the exact
        # submit stamp, so request mode pays its window and not a tick
        # more).
        now_abs = clock.now()
        next_arrival = (
            start + specs[pending[0]].arrival_s if pending else np.inf
        )
        window = (
            min(h.arrival for h in inflight.values()) + idle_tick_s
            if idle_tick_s > 0 and inflight
            else np.inf
        )
        tick_to = min(next_arrival, window)
        if not np.isfinite(tick_to) or tick_to <= now_abs:
            # No timed event left: force the residual partial batch out.
            if target.step(force=True) == 0:
                raise RuntimeError(
                    "decode trace stalled: no progress and no pending event"
                )
            continue
        clock.advance(tick_to - now_abs)
        idle_ticks += 1
        if idle_ticks > max_idle_ticks:
            raise RuntimeError("decode trace stalled: idle-tick limit reached")
        submit_due()
    makespan = clock.now() - start
    total_steps = sum(spec.steps for spec in specs)
    return {
        "sessions": len(specs),
        "steps": total_steps,
        "makespan_s": makespan,
        "throughput_sps": total_steps / makespan if makespan > 0 else 0.0,
        "outputs": outputs,
    }


def run_closed_loop(
    engine: ServingEngine,
    payloads: Sequence[Any],
    *,
    rounds: int = 4,
    submit_kwargs: Callable[[int], dict] | None = None,
) -> dict:
    """Closed-loop run: ``len(payloads)`` users in submit-wait-repeat.

    Each user ``i`` submits ``payloads[i]`` ``rounds`` times, waiting
    for each result before the next submission.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    handles_per_user: list[list] = [[] for _ in payloads]
    errors: list[BaseException] = []

    def user(i: int, payload: Any) -> None:
        try:
            for _ in range(rounds):
                kwargs = submit_kwargs(i) if submit_kwargs is not None else {}
                handle = engine.submit(payload, **kwargs)
                handle.result(timeout=60.0)
                handles_per_user[i].append(handle)
        except BaseException as error:  # noqa: BLE001 - surfaced to caller
            errors.append(error)

    threads = [
        threading.Thread(target=user, args=(i, payload), daemon=True)
        for i, payload in enumerate(payloads)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    handles = [handle for user_handles in handles_per_user for handle in user_handles]
    return {
        "pattern": "closed-loop",
        "concurrency": len(payloads),
        "requests": len(handles),
        "elapsed_s": elapsed,
        "throughput_rps": len(handles) / elapsed if elapsed > 0 else 0.0,
        **_handle_stats(handles),
    }
