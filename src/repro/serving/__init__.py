"""Async dynamic-batching inference serving over the photonic engine.

The request-to-batch layer of the stack: concurrent ``submit()`` calls
enter a bounded :class:`RequestQueue`, a :class:`DynamicBatcher`
coalesces them into ``[batch, ...]`` tensors under a
``max_batch_size`` / ``max_wait_us`` :class:`BatchingPolicy`, and the
:class:`ServingEngine` worker executes each batch on the sharded
photonic engine (PR 1-3's ``num_cores`` / ``shard_axis`` / ``backend``
knobs apply unchanged).  A :class:`SessionCache` memoizes repeated
prompts and keeps KV-session accounting consistent with the Sec. VI-B
decode analysis, and :class:`Metrics` records throughput, latency
percentiles, and batch occupancy — deterministically, under a
:class:`SimulatedClock`, so the whole pipeline is testable without
sleeping.
"""

from repro.serving.batcher import BatchingPolicy, DynamicBatcher
from repro.serving.cache import (
    MISS,
    BlockPool,
    KVBlock,
    PrefixChain,
    Session,
    SessionCache,
)
from repro.serving.clock import SimulatedClock, WallClock
from repro.serving.config import EngineConfig, reset_deprecation_warnings
from repro.serving.engine import SCHEDULERS, ServingEngine
from repro.serving.loadgen import (
    Arrival,
    DecodeSessionSpec,
    TenantSpec,
    arrival_gaps,
    decode_payload,
    mixed_decode_trace,
    multi_tenant_arrivals,
    poisson_gaps,
    run_closed_loop,
    run_decode_trace,
    run_open_loop,
)
from repro.serving.metrics import Metrics, RequestRecord, summarize
from repro.serving.scheduler import IterationCost, IterationScheduler
from repro.serving.request import (
    EngineClosed,
    InferenceRequest,
    QueueFull,
    RequestHandle,
    RequestQueue,
    ServingError,
)
from repro.serving.servable import (
    DecodeServable,
    Servable,
    TextServable,
    VisionServable,
)

__all__ = [
    "Arrival",
    "BatchingPolicy",
    "BlockPool",
    "DecodeServable",
    "DecodeSessionSpec",
    "DynamicBatcher",
    "EngineClosed",
    "EngineConfig",
    "InferenceRequest",
    "IterationCost",
    "IterationScheduler",
    "KVBlock",
    "MISS",
    "Metrics",
    "PrefixChain",
    "QueueFull",
    "RequestHandle",
    "RequestQueue",
    "RequestRecord",
    "SCHEDULERS",
    "Servable",
    "ServingEngine",
    "ServingError",
    "Session",
    "SessionCache",
    "SimulatedClock",
    "TenantSpec",
    "TextServable",
    "VisionServable",
    "WallClock",
    "arrival_gaps",
    "decode_payload",
    "mixed_decode_trace",
    "multi_tenant_arrivals",
    "poisson_gaps",
    "reset_deprecation_warnings",
    "run_closed_loop",
    "run_decode_trace",
    "run_open_loop",
    "summarize",
]
