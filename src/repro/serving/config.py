"""Frozen serving configuration objects (the unified construction API).

Six PRs of engine growth left knobs scattered across constructors:
batching (``max_batch_size``/``max_wait_us``), scheduling
(``scheduler``/``iteration_cost``), executor geometry
(``num_cores``/``shard_axis``/``backend``) and KV paging
(``block_size``/``kv_capacity_bytes``/``kv_bits``) each lived on
whichever call site grew them first.  :class:`EngineConfig` collapses
that surface into one frozen, validated dataclass accepted by
:class:`~repro.serving.engine.ServingEngine`,
:func:`~repro.workloads.transformer.servable_model` and
:func:`~repro.workloads.llm.decode_servable` (and embedded per-replica
inside :class:`~repro.cluster.config.ClusterConfig`).  The old keyword
arguments keep working through :func:`warn_deprecated_kwargs` — a
shim that warns **once per process per API** and refuses ambiguous
calls that mix a config object with legacy knobs.

Configs round-trip through JSON (:meth:`EngineConfig.to_dict` /
:meth:`EngineConfig.from_dict`) so the CLI's ``--config`` flag and the
benchmark scripts share one serialized form.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Iterable

from repro.serving.batcher import BatchingPolicy
from repro.serving.scheduler import IterationCost

#: Engine scheduling modes (request-level dynamic batching vs
#: iteration-level continuous batching).
SCHEDULERS = ("request", "continuous")

#: Executor sharding axes / backends accepted by
#: :meth:`repro.neural.photonic.PhotonicExecutor.ideal`.
SHARD_AXES = ("batch", "contraction")
BACKENDS = ("thread", "process")

# One deprecation warning per API name per process: repeated legacy
# call sites (test suites, benchmark loops) stay quiet after the first.
_WARNED: set[str] = set()


def warn_deprecated_kwargs(api: str, names: Iterable[str]) -> None:
    """Warn (once per process per ``api``) about legacy knob kwargs."""
    if api in _WARNED:
        return
    _WARNED.add(api)
    warnings.warn(
        f"{api}: keyword arguments {sorted(names)} are deprecated; pass "
        "config=EngineConfig(...) / ClusterConfig(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warnings() -> None:
    """Forget which APIs already warned (test isolation hook)."""
    _WARNED.clear()


@dataclass(frozen=True)
class EngineConfig:
    """Everything one serving engine (or cluster replica) is built from.

    Attributes:
        max_batch_size: occupancy cap of one coalesced batch (request
            mode) or active lanes per iteration (continuous mode).
        max_wait_us: dynamic-batching wait budget of the oldest queued
            request, microseconds.
        queue_depth: admission-control bound of the request queue.
        scheduler: ``"request"`` or ``"continuous"``.
        iteration_cost: virtual service time per fused decode iteration
            (continuous mode under a simulated clock); ``None`` = no
            virtual time.
        num_cores: photonic cores the executor shards over.
        shard_axis: ``"batch"`` or ``"contraction"``.
        backend: ``"thread"`` or ``"process"`` executor pool.
        chunk_size: hot-path pipelining chunk (stacks per chunk along
            the leading batch axis); ``None`` disables chunking.
        pipeline_depth: chunks the engine's prefetch stage may run
            ahead of compute (0 = chunked but strictly sequential).
        block_size: tokens per KV page.
        kv_capacity_bytes: KV :class:`~repro.serving.cache.BlockPool`
            byte budget (``None`` = unbounded).
        kv_bits: K/V element precision for byte accounting.
        seed: weight seed of servables built from this config.
    """

    max_batch_size: int = 8
    max_wait_us: float = 1_000.0
    queue_depth: int = 64
    scheduler: str = "request"
    iteration_cost: IterationCost | None = None
    num_cores: int = 1
    shard_axis: str = "batch"
    backend: str = "thread"
    chunk_size: int | None = None
    pipeline_depth: int = 1
    block_size: int = 1
    kv_capacity_bytes: int | None = None
    kv_bits: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {self.max_wait_us}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; expected one of "
                f"{SCHEDULERS}"
            )
        if self.num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.shard_axis not in SHARD_AXES:
            raise ValueError(
                f"unknown shard_axis {self.shard_axis!r}; expected one of "
                f"{SHARD_AXES}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1 or None, got {self.chunk_size}"
            )
        if self.pipeline_depth < 0:
            raise ValueError(
                f"pipeline_depth must be >= 0, got {self.pipeline_depth}"
            )
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if self.kv_capacity_bytes is not None and self.kv_capacity_bytes < 0:
            raise ValueError(
                f"kv_capacity_bytes must be >= 0, got {self.kv_capacity_bytes}"
            )
        if self.kv_bits < 1:
            raise ValueError(f"kv_bits must be >= 1, got {self.kv_bits}")

    @property
    def batching(self) -> BatchingPolicy:
        """The batching policy view of this config."""
        return BatchingPolicy(
            max_batch_size=self.max_batch_size, max_wait_us=self.max_wait_us
        )

    def replace(self, **changes: Any) -> "EngineConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-serializable form (nested ``iteration_cost`` mapping)."""
        data = dataclasses.asdict(self)
        if self.iteration_cost is not None:
            data["iteration_cost"] = dataclasses.asdict(self.iteration_cost)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "EngineConfig":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown EngineConfig fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs = dict(data)
        cost = kwargs.get("iteration_cost")
        if isinstance(cost, dict):
            kwargs["iteration_cost"] = IterationCost(**cost)
        return cls(**kwargs)
