"""Iteration-level (continuous) decode scheduling.

Request-level dynamic batching freezes batch composition when a batch
is dispatched, so a decode session arriving mid-step waits out the
whole :class:`~repro.serving.batcher.DynamicBatcher` window and a
session finishing early leaves its GEMV lane idle.  The
:class:`IterationScheduler` is the vLLM-style alternative: every
*iteration* it recomposes the batch from the active session set —
newly-arrived sessions are admitted immediately, finished ones retire,
and one decode step per active session rides the same batched photonic
GEMV projection.  HAPA's hybrid split is what makes this free of
bit-level consequences: attention is per-session digital state, and
the photonic projections are per-sample GEMV stacks, so outputs are
independent of batch composition.

KV residency is the scheduling constraint.  Sessions hold paged K/V
state in a :class:`~repro.serving.cache.BlockPool`; before a session
runs, the scheduler ensures its pages are resident and one slot of
headroom exists, **preempting** the lowest-priority sessions (swap-out:
budget released, bits kept) when the pool is exhausted.  Priority is
first-admission order and survives preemption, so resumption is FCFS
and deterministic.  A session whose page demand can never fit the pool
— even with every other session preempted — is *doomed* and its queued
steps are failed rather than spinning forever.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.serving.cache import SessionCache
from repro.serving.request import InferenceRequest, ServingError


@dataclass(frozen=True)
class IterationCost:
    """Virtual service time of one fused decode iteration.

    Mirrors :class:`repro.cluster.replica.ServiceModel` for the engine
    layer: under a :class:`~repro.serving.clock.SimulatedClock` the
    engine advances virtual time by ``batch_seconds(b)`` per executed
    iteration, so request-level and continuous scheduling are compared
    under the *same* cost model and differ only in composition and
    window waits.
    """

    base_s: float = 1e-3
    per_request_s: float = 250e-6

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.per_request_s < 0:
            raise ValueError(f"iteration costs must be >= 0: {self}")

    def batch_seconds(self, batch_size: int) -> float:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return self.base_s + self.per_request_s * batch_size


@dataclass
class Iteration:
    """One composed iteration: the batch to execute plus doomed requests
    (sessions whose KV demand cannot fit the pool at any priority).

    ``preempted`` and ``swapped_in`` record the residency actions this
    composition took (victim sessions swapped out, planned sessions
    swapped back in), in action order — the engine's iteration span
    reports them as events.
    """

    batch: list[InferenceRequest] = field(default_factory=list)
    doomed: list[InferenceRequest] = field(default_factory=list)
    preempted: list[str] = field(default_factory=list)
    swapped_in: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.batch or self.doomed)


class IterationScheduler:
    """Composes one decode step per active session, every iteration.

    Holds per-session FIFO step queues (a session's steps never
    reorder) plus a FIFO of sessionless requests that fill spare lanes,
    so ``scheduler="continuous"`` also serves stateless servables.
    ``max_active`` caps lanes per iteration (the photonic batch axis);
    the attached cache's :class:`~repro.serving.cache.BlockPool` caps
    residency.  All mutation happens under the engine's scheduler lock.
    """

    def __init__(self, *, max_active: int, cache: SessionCache | None = None) -> None:
        if max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active}")
        self.max_active = max_active
        self.cache = cache if cache is not None and cache.pool is not None else None
        self._steps: dict[str, deque[InferenceRequest]] = {}
        self._priority: dict[str, int] = {}
        self._stamp = 0
        self._sessionless: deque[InferenceRequest] = deque()
        self.admissions = 0
        self.preemptions = 0
        self.swap_ins = 0
        self.iterations = 0

    # -- intake ---------------------------------------------------------------
    def enqueue(self, request: InferenceRequest) -> None:
        """Admit one request into the scheduler's pending state."""
        sid = request.session_id
        if sid is None:
            self._sessionless.append(request)
            return
        if sid not in self._priority:
            # First-seen admission order is the priority, kept across
            # preemption: resumption is FCFS, simultaneous arrivals are
            # ordered by submission (request_id) order.
            self._priority[sid] = self._stamp
            self._stamp += 1
            self.admissions += 1
        self._steps.setdefault(sid, deque()).append(request)

    @property
    def held(self) -> int:
        """Requests admitted to the scheduler but not yet dispatched."""
        return sum(len(q) for q in self._steps.values()) + len(self._sessionless)

    def has_work(self) -> bool:
        return bool(self._sessionless) or any(self._steps.values())

    # -- residency ------------------------------------------------------------
    def _needed_blocks(self, sid: str) -> int:
        """Additional pool blocks running ``sid`` one step may charge."""
        pool = self.cache.pool
        if not self.cache.has_session(sid):
            return pool.blocks_for(1)
        session = self.cache.session(sid)
        headroom = 0 if session.has_room else 1
        if session.swapped:
            # Only private pages re-enter the pool budget on swap-in;
            # shared prefix pages stay in tier custody throughout.
            return session.private_blocks + headroom
        return headroom

    def _pick_victim(self, protected: set[str]) -> str | None:
        """Lowest-priority preemptable resident session, quiescent first.

        Quiescent residents (no queued steps — including sessions this
        scheduler never admitted, e.g. adopted via migration) are
        preferred victims; among runnable residents the latest-admitted
        goes first.  ``protected`` shields sessions already planned
        into the current iteration.
        """
        candidates = [
            sid
            for sid in self.cache.session_ids()
            if sid not in protected and not self.cache.session(sid).swapped
        ]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda sid: (
                not self._steps.get(sid),  # quiescent first
                self._priority.get(sid, -1),
                sid,
            ),
        )

    def _ensure_resident(
        self, sid: str, planned: list[str], iteration: Iteration
    ) -> bool:
        """Make ``sid`` runnable this iteration, preempting if needed.

        Returns False when the pool cannot host the session right now
        (it stays queued and retries next iteration).  Raises
        :class:`ServingError` via the doomed path in :meth:`compose`
        when the session can *never* fit.  Victims and swap-ins are
        recorded on ``iteration`` for observability.
        """
        pool = self.cache.pool
        needed = self._needed_blocks(sid)
        protected = set(planned) | {sid}
        while not pool.can_fit(needed):
            victim = self._pick_victim(protected)
            if victim is None:
                return False
            self.cache.swap_out(victim)
            self.preemptions += 1
            iteration.preempted.append(victim)
        if self.cache.has_session(sid) and self.cache.session(sid).swapped:
            self.cache.swap_in(sid)
            self.swap_ins += 1
            iteration.swapped_in.append(sid)
        return True

    # -- composition ----------------------------------------------------------
    def compose(self) -> Iteration:
        """Plan one iteration from the current active set.

        Runnable sessions are planned in priority (first-admission)
        order up to ``max_active``; spare lanes fill with sessionless
        requests FIFO.  When the highest-priority runnable session
        cannot fit the pool even with everything else preempted, its
        steps are returned as ``doomed`` (the engine fails them) so
        stepping always makes progress.
        """
        iteration = Iteration()
        runnable = sorted(
            (sid for sid, steps in self._steps.items() if steps),
            key=lambda sid: self._priority[sid],
        )
        planned: list[str] = []
        for sid in runnable:
            if len(planned) >= self.max_active:
                break
            if self.cache is not None and not self._ensure_resident(
                sid, planned, iteration
            ):
                if planned:
                    continue  # blocked behind protected higher-priority work
                # Nothing is planned and nothing is preemptable: this
                # session's pages can never fit the pool.
                self._doom(sid, iteration)
                continue
            planned.append(sid)
        iteration.batch.extend(self._steps[sid].popleft() for sid in planned)
        while self._sessionless and len(iteration.batch) < self.max_active:
            iteration.batch.append(self._sessionless.popleft())
        if iteration.batch:
            self.iterations += 1
        return iteration

    def _doom(self, sid: str, iteration: Iteration) -> None:
        iteration.doomed.extend(self._steps.pop(sid, ()))
        self._priority.pop(sid, None)
        if self.cache is not None and self.cache.has_session(sid):
            self.cache.close_session(sid)

    @staticmethod
    def doom_error(request: InferenceRequest) -> ServingError:
        return ServingError(
            f"session {request.session_id!r} needs more KV blocks than "
            f"the pool can ever hold"
        )

    # -- retirement / failover ------------------------------------------------
    def release(self, session_id: str) -> None:
        """Retire a finished session's scheduler state.

        Steps still queued for it would be silently dropped, so that is
        an error — resolve or evict them first.
        """
        if self._steps.get(session_id):
            raise ValueError(
                f"session {session_id!r} still has queued steps; "
                "cannot release"
            )
        self._steps.pop(session_id, None)
        self._priority.pop(session_id, None)

    def forget(self, session_id: str) -> None:
        """Drop priority state for a departed session (migration)."""
        self._steps.pop(session_id, None)
        self._priority.pop(session_id, None)

    def drain(self) -> list[InferenceRequest]:
        """Remove every held request, in global submission order.

        The failover hook behind
        :meth:`~repro.serving.engine.ServingEngine.evict_pending`:
        handles stay pending, per-session step order is preserved
        (request ids are engine-monotone), and the scheduler forgets
        the drained sessions so re-dispatch elsewhere starts clean.
        """
        drained = list(self._sessionless)
        self._sessionless.clear()
        for steps in self._steps.values():
            drained.extend(steps)
        self._steps.clear()
        self._priority.clear()
        return sorted(drained, key=lambda request: request.request_id)

    def stats(self) -> dict:
        return {
            "max_active": self.max_active,
            "held": self.held,
            "admissions": self.admissions,
            "preemptions": self.preemptions,
            "swap_ins": self.swap_ins,
            "iterations": self.iterations,
        }
