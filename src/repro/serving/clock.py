"""Time sources for the serving subsystem.

The batching policy (``max_wait_us``) and every latency metric are
defined against a *clock*, not against ``time`` directly, so the whole
request-to-batch pipeline can run under two regimes:

* :class:`WallClock` — real monotonic time; the production regime, used
  by the background worker thread and the load generators.
* :class:`SimulatedClock` — virtual time advanced explicitly by the
  caller.  Tests drive the engine synchronously (``ServingEngine.step``)
  and advance the clock by exact amounts, so batching deadlines and
  latency percentiles are bit-deterministic and no test ever sleeps.
"""

from __future__ import annotations

import time


class WallClock:
    """Real monotonic time (seconds)."""

    #: Real clocks may be waited on; the engine runs a background thread.
    real = True

    def now(self) -> float:
        return time.monotonic()


class SimulatedClock:
    """Manually-advanced virtual time (seconds).

    The engine never blocks on a simulated clock: batching runs in
    manual-stepping mode and deadlines are evaluated against ``now()``
    at each step, so a test controls exactly which requests fall inside
    a coalescing window.
    """

    real = False

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward (monotonicity is enforced) and return it."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self._now += float(seconds)
        return self._now
