"""The serving engine: request admission -> dynamic batch -> photonic run.

:class:`ServingEngine` is the worker loop that turns concurrent
``submit()`` calls into coalesced photonic batches.  Two execution
regimes share every code path except the loop driver:

* **Wall-clock mode** (default): ``start()`` launches a background
  worker thread that blocks on the :class:`DynamicBatcher` and executes
  batches as they become due.  ``submit()`` applies backpressure
  through the bounded queue.
* **Manual mode** (a :class:`~repro.serving.clock.SimulatedClock`):
  no thread, no sleeps.  Tests call :meth:`step` /
  :meth:`run_until_idle` to drive the same batching + execution logic
  deterministically.

The engine inherits the photonic execution configuration from whatever
executor the servable's model was built with — ``num_cores``,
``shard_axis`` and ``backend`` (PR 2-3) all apply to the coalesced
``[batch, ...]`` stacks unchanged.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro.neural.autograd import no_grad
from repro.obs.trace import NULL_TRACER
from repro.serving.batcher import BatchingPolicy, DynamicBatcher
from repro.serving.cache import MISS, SessionCache
from repro.serving.clock import WallClock
from repro.serving.config import SCHEDULERS, EngineConfig, warn_deprecated_kwargs
from repro.serving.metrics import Metrics
from repro.serving.request import (
    EngineClosed,
    InferenceRequest,
    RequestHandle,
    RequestQueue,
    ServingError,
)
from repro.serving.scheduler import IterationCost, IterationScheduler
from repro.serving.servable import Servable

__all__ = ["SCHEDULERS", "ServingEngine"]


def _isolated(value: Any) -> Any:
    """A copy of array values, so cache entries never alias results."""
    return value.copy() if isinstance(value, np.ndarray) else value


class ServingEngine:
    """Dynamic-batching inference server over a :class:`Servable`.

    Args:
        servable: the model adapter executing coalesced batches.
        config: an :class:`~repro.serving.config.EngineConfig` carrying
            every construction knob (the preferred API).  The legacy
            keyword arguments below keep working through a deprecation
            shim that warns once per process; mixing them with
            ``config`` is an error.
        policy: batching policy; or pass ``max_batch_size`` /
            ``max_wait_us`` directly.  *Deprecated* — use ``config``.
        queue_depth: bound of the admission queue (backpressure).
        clock: time source.  A real clock (default) enables the
            background worker thread; a simulated clock selects manual
            stepping and never sleeps.
        cache: optional :class:`SessionCache` consulted at submit time
            for ``cache_key`` memoization (hits bypass the queue).
        metrics: recorder; a fresh :class:`Metrics` by default.
        tracer: an :class:`~repro.obs.trace.Tracer` to emit request /
            iteration / batch spans into (and to activate around batch
            execution, so the sharded engine and hot path beneath trace
            too).  Defaults to the no-op
            :data:`~repro.obs.trace.NULL_TRACER` — with it, every
            instrumented path executes its exact pre-tracing code.
        recorder: an optional
            :class:`~repro.obs.recorder.FlightRecorder`; the engine
            freezes a postmortem bundle (recent spans/events + its
            metrics registry) when an iteration dooms a session or a
            batch fails with an execution error.  ``None`` (default)
            keeps every path byte-identical to the unrecorded engine —
            the failure paths gate on one ``is not None`` check.
        close_executor: close the servable's photonic executor (its
            sharded worker pools) when the engine closes.
        scheduler: batch-composition mode.  ``"request"`` (default) is
            classic dynamic batching — composition frozen per batch,
            partial batches wait out the policy window.  ``"continuous"``
            is iteration-level scheduling via the
            :class:`~repro.serving.scheduler.IterationScheduler`: every
            iteration re-admits arrivals, retires finished sessions,
            recomposes the photonic GEMV batch from the active set, and
            preempts lowest-priority sessions when the servable's KV
            :class:`~repro.serving.cache.BlockPool` is exhausted.
        iteration_cost: optional
            :class:`~repro.serving.scheduler.IterationCost` — in manual
            (simulated-clock) mode the engine advances virtual time by
            ``batch_seconds(b)`` per executed batch, in *both* scheduler
            modes, so throughput comparisons share one cost model.
    """

    def __init__(
        self,
        servable: Servable,
        *,
        config: EngineConfig | None = None,
        policy: BatchingPolicy | None = None,
        max_batch_size: int | None = None,
        max_wait_us: float | None = None,
        queue_depth: int | None = None,
        clock=None,
        cache: SessionCache | None = None,
        metrics: Metrics | None = None,
        tracer=None,
        recorder=None,
        close_executor: bool = False,
        scheduler: str | None = None,
        iteration_cost: IterationCost | None = None,
    ) -> None:
        legacy = {
            name
            for name, value in (
                ("policy", policy),
                ("max_batch_size", max_batch_size),
                ("max_wait_us", max_wait_us),
                ("queue_depth", queue_depth),
                ("scheduler", scheduler),
                ("iteration_cost", iteration_cost),
            )
            if value is not None
        }
        if config is not None and legacy:
            raise ValueError(
                "pass either config=EngineConfig(...) or the legacy knobs "
                f"{sorted(legacy)}, not both"
            )
        if config is None:
            if policy is not None and (
                max_batch_size is not None or max_wait_us is not None
            ):
                raise ValueError(
                    "pass either policy or the individual knobs, not both"
                )
            if legacy:
                warn_deprecated_kwargs("ServingEngine", legacy)
            batching = (
                policy
                if policy is not None
                else BatchingPolicy(
                    max_batch_size=8 if max_batch_size is None else max_batch_size,
                    max_wait_us=1_000.0 if max_wait_us is None else max_wait_us,
                )
            )
            config = EngineConfig(
                max_batch_size=batching.max_batch_size,
                max_wait_us=batching.max_wait_us,
                queue_depth=64 if queue_depth is None else queue_depth,
                scheduler="request" if scheduler is None else scheduler,
                iteration_cost=iteration_cost,
            )
        self.config = config
        self.servable = servable
        self.policy = config.batching
        self.clock = clock if clock is not None else WallClock()
        self.manual = not getattr(self.clock, "real", True)
        if config.iteration_cost is not None and not self.manual:
            raise ValueError(
                "iteration_cost models virtual service time; it needs a "
                "SimulatedClock"
            )
        self.cache = cache
        self.metrics = metrics if metrics is not None else Metrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.recorder = recorder
        self._close_executor = close_executor
        self._queue = RequestQueue(config.queue_depth)
        self._batcher = DynamicBatcher(self._queue, self.policy, self.clock)
        self.scheduler = config.scheduler
        self.iteration_cost = config.iteration_cost
        self._continuous = config.scheduler == "continuous"
        # KV residency is governed by the *servable's* session cache
        # (where decode state lives), not the memoization cache.
        session_cache = getattr(servable, "cache", None)
        self._scheduler = (
            IterationScheduler(
                max_active=self.policy.max_batch_size,
                cache=session_cache
                if isinstance(session_cache, SessionCache)
                else None,
            )
            if self._continuous
            else None
        )
        # Guards scheduler state: the worker composes while clients
        # release sessions / the cluster evicts for failover.
        self._sched_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._lifecycle = threading.Lock()
        self._closed = False
        self._next_id = 0
        self._id_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ServingEngine":
        """Launch the worker thread (no-op in manual mode / if running)."""
        with self._lifecycle:
            if self._closed:
                raise EngineClosed("engine already closed")
            if not self.manual and self._thread is None:
                target = (
                    self._worker_continuous if self._continuous else self._worker
                )
                self._thread = threading.Thread(
                    target=target, name="serving-engine", daemon=True
                )
                self._thread.start()
        return self

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting work; finish (or fail) what is queued.

        ``drain=True`` completes every pending request before shutdown;
        ``drain=False`` fails pending handles with :class:`EngineClosed`.
        Idempotent.  Closes the servable's executor if requested at
        construction.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._thread = None
        if not drain:
            abandoned = self._queue.drain_pending()
            if self._scheduler is not None:
                with self._sched_lock:
                    abandoned += self._scheduler.drain()
            for request in abandoned:
                request.handle._fail(EngineClosed("engine closed before execution"))
                self.metrics.record_failures()
                if request.span is not None:
                    request.span.add_event("abandoned")
                    self.tracer.end(request.span)
        self._queue.close()  # worker drains the remainder, then exits
        if thread is not None:
            thread.join()
        elif drain:
            self._run_pending()
        if self._close_executor:
            executor = getattr(self.servable, "executor", None)
            if executor is None:
                executor = getattr(
                    getattr(self.servable, "model", None), "executor", None
                )
            if executor is not None:
                executor.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def evict_pending(self) -> list[InferenceRequest]:
        """Remove and return queued requests *without* failing them.

        The failover hook: when a replica is torn down, the cluster
        evicts its undispatched requests — handles still pending — and
        re-routes them to surviving replicas.  A subsequent
        ``close(drain=False)`` then has nothing left to fail.  Under
        continuous scheduling the scheduler's held steps (including
        those of preempted sessions) are evicted too, merged in global
        submission order so per-session step order survives re-dispatch.
        """
        evicted = self._queue.drain_pending()
        if self._scheduler is not None:
            with self._sched_lock:
                evicted += self._scheduler.drain()
            evicted.sort(key=lambda request: request.request_id)
        for request in evicted:
            # The engine-level span ends here; a re-dispatch elsewhere
            # opens a fresh one on the adopting engine.
            if request.span is not None:
                request.span.add_event("evicted")
                self.tracer.end(request.span)
                request.span = None
        return evicted

    def release_session(self, session_id: str) -> int:
        """Retire a finished decode session; returns the KV bytes freed.

        Drops the scheduler's priority/queue state for the session and
        closes it in the servable's cache, returning its pages to the
        :class:`~repro.serving.cache.BlockPool` free list.  Call only
        once the session's submitted steps have resolved.
        """
        if self._scheduler is not None:
            with self._sched_lock:
                self._scheduler.release(session_id)
        session_cache = getattr(self.servable, "cache", None)
        if (
            isinstance(session_cache, SessionCache)
            and session_cache.has_session(session_id)
        ):
            return session_cache.close_session(session_id)
        return 0

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        payload: Any,
        *,
        cache_key: Any = None,
        session_id: str | None = None,
        block: bool = True,
        timeout: float | None = None,
    ) -> RequestHandle:
        """Admit one request; returns its Future-style handle.

        ``cache_key`` consults the engine's :class:`SessionCache` first:
        a hit resolves the handle immediately without queueing.  When
        the bounded queue is full, wall-clock submissions block (the
        backpressure path) unless ``block=False`` / ``timeout`` says to
        raise :class:`~repro.serving.request.QueueFull`; manual-mode
        submissions never block (there is no concurrent consumer).
        """
        if self._closed:
            raise EngineClosed("engine is closed")
        with self._id_lock:
            request_id = self._next_id
            self._next_id += 1
        arrival = self.clock.now()
        handle = RequestHandle(request_id, arrival)
        tracer = self.tracer
        span = None
        if tracer.enabled:
            span = tracer.start_span(
                "request", request_id=request_id, session_id=session_id
            )
            span.add_event("submit")
        # Consult the cache before prepare(): hits skip validation and
        # padding entirely — the memoization path stays allocation-free.
        if cache_key is not None and self.cache is not None:
            hit = self.cache.get(cache_key)
            if hit is not MISS:
                handle._resolve(
                    _isolated(hit),
                    started=arrival,
                    finished=arrival,
                    batch_size=0,
                    cache_hit=True,
                )
                self.metrics.record_request(handle)
                if span is not None:
                    span.set_attr("cache_hit", True)
                    span.add_event("complete", cache_hit=True)
                    tracer.end(span)
                return handle
        prepared = self.servable.prepare(payload)
        request = InferenceRequest(
            payload=prepared,
            handle=handle,
            arrival=arrival,
            cache_key=cache_key,
            session_id=session_id,
            request_id=request_id,
            span=span,
        )
        try:
            self._queue.put(
                request, block=block and not self.manual, timeout=timeout
            )
        except Exception as error:  # backpressure rejection / closed queue
            if span is not None:
                span.add_event("rejected", error=type(error).__name__)
                tracer.end(span)
            raise
        if span is not None:
            span.add_event("queue", depth=len(self._queue))
        return handle

    @property
    def pending(self) -> int:
        """Requests admitted but not yet dispatched into a batch."""
        queued = len(self._queue)
        if self._scheduler is not None:
            with self._sched_lock:
                queued += self._scheduler.held
        return queued

    # -- manual stepping (simulated clock) -----------------------------------
    def step(self, *, force: bool = True) -> int:
        """Collect and execute one batch; returns its size (0 if none).

        In request mode ``force=False`` respects the batching policy at
        the clock's current instant — the batch is dispatched only if
        it is full or the oldest request's wait budget has expired.
        Continuous mode has no window: every step ingests all arrivals
        and executes one recomposed iteration (``force`` is ignored).
        """
        if self._continuous:
            return self._step_continuous()
        batch = self._batcher.collect(force=force)
        if batch:
            self._execute(batch)
        return len(batch)

    def _step_continuous(self) -> int:
        """Ingest arrivals, compose one iteration, execute it."""
        arrivals = self._queue.drain_pending()
        # Doomed requests count as progress: run_until_idle must keep
        # stepping past a doom-only iteration while work remains.
        return self._run_iteration(arrivals)

    def _run_iteration(self, arrivals: list[InferenceRequest]) -> int:
        """Admit ``arrivals``, compose one iteration, execute it.

        Shared by manual stepping and the wall-clock continuous worker.
        Returns requests progressed (executed + doomed).
        """
        tracer = self.tracer
        if not tracer.enabled:
            with self._sched_lock:
                for request in arrivals:
                    self._scheduler.enqueue(request)
                iteration = self._scheduler.compose()
            for request in iteration.doomed:
                request.handle._fail(self._scheduler.doom_error(request))
                self.metrics.record_failures()
                self._record_doom(request)
            if iteration.batch:
                self.metrics.record_iteration(len(iteration.batch))
                self._execute(iteration.batch)
            return len(iteration.batch) + len(iteration.doomed)
        span = tracer.start_span("engine.iteration", arrivals=len(arrivals))
        try:
            with self._sched_lock:
                for request in arrivals:
                    self._scheduler.enqueue(request)
                iteration = self._scheduler.compose()
            if arrivals:
                span.add_event(
                    "admission",
                    requests=[request.request_id for request in arrivals],
                )
            for victim in iteration.preempted:
                span.add_event("preempt", session_id=victim)
            for sid in iteration.swapped_in:
                span.add_event("swap_in", session_id=sid)
            for request in iteration.doomed:
                span.add_event(
                    "doom",
                    request_id=request.request_id,
                    session_id=request.session_id,
                )
                if request.span is not None:
                    request.span.add_event("doomed")
                    tracer.end(request.span)
                request.handle._fail(self._scheduler.doom_error(request))
                self.metrics.record_failures()
                self._record_doom(request)
            span.set_attr("batch", len(iteration.batch))
            if iteration.batch:
                self.metrics.record_iteration(len(iteration.batch))
                self._execute_traced(iteration.batch, parent=span)
            return len(iteration.batch) + len(iteration.doomed)
        finally:
            tracer.end(span)

    def run_until_idle(self) -> int:
        """Step until the queue is empty; returns requests processed."""
        processed = 0
        while True:
            n = self.step(force=True)
            if n == 0:
                return processed
            processed += n

    def _run_pending(self) -> None:
        """Drain-on-close for manual mode (close() holds the lifecycle)."""
        while self.step(force=True):
            pass

    # -- worker --------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            batch = self._batcher.next_batch()
            if batch is None:
                return
            self._execute(batch)

    def _worker_continuous(self) -> None:
        """Wall-clock continuous loop: iterate while work exists.

        Unlike :meth:`_worker` there is no batching window — the loop
        only blocks when both the queue and the scheduler are empty,
        and every pass ingests all arrivals before recomposing.
        """
        queue = self._queue
        while True:
            with queue.not_empty:
                while (
                    not queue._items
                    and not queue.closed
                    and not self._scheduler.has_work()
                ):
                    queue.not_empty.wait()
                if (
                    not queue._items
                    and queue.closed
                    and not self._scheduler.has_work()
                ):
                    return
                arrivals = queue.pop_locked(len(queue._items))
            self._run_iteration(arrivals)

    # -- flight recording -----------------------------------------------------
    def _record_doom(self, request: InferenceRequest) -> None:
        """Freeze a postmortem bundle for a doomed session (if recording)."""
        if self.recorder is None:
            return
        self.recorder.note(
            "doomed_session",
            request_id=request.request_id,
            session_id=request.session_id,
        )
        self.recorder.trigger(
            "doomed_session",
            registry=self.metrics.registry,
            request_id=request.request_id,
            session_id=request.session_id,
        )

    def _record_batch_failure(self, error: Exception, batch_size: int) -> None:
        """Freeze a postmortem bundle for a failed batch (if recording)."""
        if self.recorder is None:
            return
        self.recorder.note(
            "serving_error", error=type(error).__name__, batch_size=batch_size
        )
        self.recorder.trigger(
            "serving_error",
            registry=self.metrics.registry,
            error=type(error).__name__,
            detail=str(error),
            batch_size=batch_size,
        )

    def _finished_time(self, batch_size: int) -> float:
        """Completion timestamp; charges the virtual iteration cost."""
        if self.iteration_cost is not None:
            self.clock.advance(self.iteration_cost.batch_seconds(batch_size))
        return self.clock.now()

    def _execute(self, batch: list[InferenceRequest]) -> None:
        if self.tracer.enabled:
            self._execute_traced(batch)
            return
        started = self.clock.now()
        try:
            with no_grad():
                outputs = self.servable.execute(batch)
            if len(outputs) != len(batch):
                raise ServingError(
                    f"servable returned {len(outputs)} outputs for a "
                    f"batch of {len(batch)}"
                )
        except Exception as error:  # noqa: BLE001 - failures go to handles
            finished = self._finished_time(len(batch))
            for request in batch:
                request.handle._fail(
                    error, started=started, finished=finished, batch_size=len(batch)
                )
            self.metrics.record_failures(len(batch))
            self._record_batch_failure(error, len(batch))
            return
        finished = self._finished_time(len(batch))
        self.metrics.record_batch(len(batch))
        for request, output in zip(batch, outputs):
            if request.cache_key is not None and self.cache is not None:
                # Store an isolated copy: the requester's result array
                # must never alias the cache entry (or later hits).
                self.cache.put(request.cache_key, _isolated(output))
            request.handle._resolve(
                output, started=started, finished=finished, batch_size=len(batch)
            )
            self.metrics.record_request(request.handle)

    def _execute_traced(self, batch: list[InferenceRequest], parent=None) -> None:
        """The traced twin of :meth:`_execute`.

        Identical control flow plus an ``engine.batch`` span (activated
        around ``servable.execute`` so the sharded engine and hot path
        trace beneath it) and dispatch/complete/failed events on each
        request's span.  Kept as a separate body so the default
        untraced path stays byte-identical to its pre-tracing code.
        """
        tracer = self.tracer
        span = tracer.start_span(
            "engine.batch",
            parent=parent,
            size=len(batch),
            request_ids=[request.request_id for request in batch],
        )
        for request in batch:
            if request.span is not None:
                request.span.add_event("dispatch", batch_size=len(batch))
        started = self.clock.now()
        try:
            try:
                with tracer.activate(span):
                    with no_grad():
                        outputs = self.servable.execute(batch)
                if len(outputs) != len(batch):
                    raise ServingError(
                        f"servable returned {len(outputs)} outputs for a "
                        f"batch of {len(batch)}"
                    )
            except Exception as error:  # noqa: BLE001 - failures go to handles
                finished = self._finished_time(len(batch))
                span.add_event("failed", error=type(error).__name__)
                for request in batch:
                    request.handle._fail(
                        error,
                        started=started,
                        finished=finished,
                        batch_size=len(batch),
                    )
                    if request.span is not None:
                        request.span.add_event(
                            "failed", error=type(error).__name__
                        )
                        tracer.end(request.span)
                self.metrics.record_failures(len(batch))
                self._record_batch_failure(error, len(batch))
                return
            finished = self._finished_time(len(batch))
            self.metrics.record_batch(len(batch))
            for request, output in zip(batch, outputs):
                if request.cache_key is not None and self.cache is not None:
                    self.cache.put(request.cache_key, _isolated(output))
                request.handle._resolve(
                    output,
                    started=started,
                    finished=finished,
                    batch_size=len(batch),
                )
                if request.span is not None:
                    request.span.add_event("complete", batch_size=len(batch))
                    tracer.end(request.span)
                self.metrics.record_request(request.handle)
        finally:
            tracer.end(span)
