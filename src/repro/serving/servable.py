"""Servables: model-side adapters between requests and batched tensors.

A servable owns the two batch-boundary conversions the engine needs:
``prepare`` canonicalizes and validates one request payload at submit
time (in the caller's thread, so bad inputs fail fast and never poison
a coalesced batch), and ``execute`` turns a list of queued requests
into one ``[batch, ...]`` photonic execution and back into per-request
outputs.

Every built-in servable keeps per-request results **independent of
batch composition**: quantization scales are per-matrix (PR 2), padding
targets are fixed by the model rather than the batch, and decode
attention is per-session.  On a deterministic executor this makes a
dynamically coalesced batch bit-identical to sequential single-request
execution — the invariant ``benchmarks/bench_serving.py`` gates.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np

from repro.neural.autograd import Tensor, no_grad
from repro.serving.cache import SessionCache
from repro.serving.request import InferenceRequest
from repro.workloads.llm import DecoderConfig, pad_prompts


class Servable(abc.ABC):
    """Interface the :class:`~repro.serving.engine.ServingEngine` drives."""

    name = "servable"

    def prepare(self, payload: Any) -> Any:
        """Validate/canonicalize one payload (runs in the submit thread)."""
        return payload

    @abc.abstractmethod
    def execute(self, requests: Sequence[InferenceRequest]) -> list[Any]:
        """Run one coalesced batch; return one output per request."""


class VisionServable(Servable):
    """Serves a :class:`~repro.neural.vision.TinyViT`-style classifier.

    Payloads are single ``[H, W]`` images; a batch stacks them into the
    ``[batch, H, W]`` tensor the model's batched forward consumes.
    """

    name = "vision"

    def __init__(self, model) -> None:
        self.model = model

    def prepare(self, payload: Any) -> np.ndarray:
        image = np.asarray(payload, dtype=float)
        expected = (self.model.image_size, self.model.image_size)
        if image.shape != expected:
            raise ValueError(f"expected one {expected} image, got {image.shape}")
        return image

    def execute(self, requests: Sequence[InferenceRequest]) -> list[np.ndarray]:
        stacked = np.stack([request.payload for request in requests])
        with no_grad():
            logits = self.model(stacked).data
        return [row.copy() for row in logits]


class TextServable(Servable):
    """Serves a :class:`~repro.neural.text.TinyBERT`-style classifier.

    Payloads are **ragged** 1-D token-id prompts.  The padding policy
    pads every prompt to the model's *fixed* sequence length (never to
    the batch maximum), so a request's padded form — and therefore its
    logits on a deterministic executor — does not depend on which other
    prompts it was coalesced with.
    """

    name = "text"

    def __init__(self, model, *, pad_id: int = 0) -> None:
        if not 0 <= pad_id < model.vocab_size:
            raise ValueError(
                f"pad_id {pad_id} outside vocabulary [0, {model.vocab_size})"
            )
        self.model = model
        self.pad_id = pad_id

    def prepare(self, payload: Any) -> np.ndarray:
        ids = np.asarray(payload, dtype=int)
        if ids.ndim != 1 or not 1 <= ids.shape[0] <= self.model.seq_len:
            raise ValueError(
                f"expected a 1-D prompt of 1..{self.model.seq_len} tokens, "
                f"got shape {ids.shape}"
            )
        padded, _ = pad_prompts(
            [ids], pad_id=self.pad_id, length=self.model.seq_len
        )
        return padded[0]

    def execute(self, requests: Sequence[InferenceRequest]) -> list[np.ndarray]:
        stacked = np.stack([request.payload for request in requests])
        with no_grad():
            logits = self.model(stacked).data
        return [row.copy() for row in logits]


class DecodeServable(Servable):
    """One LLM decode step over per-session KV caches (Sec. VI-B shape).

    Models one representative decoder layer the way a hybrid
    photonic-digital design (HAPA-style) splits the work: the **linear
    projections are batched photonic GEMVs** — all coalesced requests'
    token vectors run as one ``[batch, 1, dim]`` stack against shared
    ``[dim, n]`` weights, exactly the ``qkv_proj``/``out_proj``/``ffn``
    rows :func:`repro.workloads.llm.decode_trace` counts — while the
    **attention over each session's KV cache stays per-request digital**
    (each request attends over its own context length).

    Each executed step appends the request's new K/V to its session in
    the :class:`~repro.serving.cache.SessionCache`, whose byte ledger is
    defined by :func:`repro.workloads.llm.kv_cache_bytes`.  Prompt
    tokens are modelled as zero K/V state (the accounting still charges
    them); a session's functional state therefore depends only on its
    own step sequence, keeping batched decode bit-identical to
    sequential decode on a deterministic executor.
    """

    name = "decode"

    def __init__(
        self,
        config: DecoderConfig,
        *,
        executor=None,
        cache: SessionCache | None = None,
        seed: int = 0,
        block_size: int = 1,
        kv_capacity_bytes: int | None = None,
        kv_bits: int = 8,
    ) -> None:
        from repro.neural.photonic import PhotonicExecutor

        self.config = config
        self.executor = (
            executor if executor is not None else PhotonicExecutor.digital_reference()
        )
        if cache is not None and (block_size != 1 or kv_capacity_bytes is not None):
            raise ValueError(
                "pass paging knobs (block_size / kv_capacity_bytes) or an "
                "explicit cache, not both"
            )
        self.cache = (
            cache
            if cache is not None
            else SessionCache(
                config,
                kv_bits=kv_bits,
                block_size=block_size,
                kv_capacity_bytes=kv_capacity_bytes,
            )
        )
        if self.cache.config is None:
            self.cache.config = config
        rng = np.random.default_rng(seed)
        dim, ffn = config.dim, config.ffn_dim
        scale = 1.0 / np.sqrt(dim)
        self.w_qkv = rng.normal(0.0, scale, (dim, 3 * dim))
        self.w_out = rng.normal(0.0, scale, (dim, dim))
        self.w_ffn1 = rng.normal(0.0, scale, (dim, ffn))
        self.w_ffn2 = rng.normal(0.0, 1.0 / np.sqrt(ffn), (ffn, dim))

    def prepare(self, payload: Any) -> np.ndarray:
        x = np.asarray(payload, dtype=float)
        if x.shape != (self.config.dim,):
            raise ValueError(
                f"expected one [{self.config.dim}] token vector, got {x.shape}"
            )
        return x

    def _project(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Batched photonic ``[b, 1, k] @ [k, n]`` projection."""
        return self.executor.matmul(Tensor(x), Tensor(w), weight_operand=1).data

    def _attend(
        self,
        session_id: str,
        q: np.ndarray,
        pending: list[tuple[np.ndarray, np.ndarray]],
    ) -> np.ndarray:
        """Digital single-query attention over the session's committed
        KV state (read straight from its paged blocks) plus this batch's
        pending (uncommitted) K/V pairs."""
        dim = self.config.dim
        keys = [key[None] for key, _ in pending]
        values = [value[None] for _, value in pending]
        if self.cache.has_session(session_id):
            session = self.cache.session(session_id)
            committed_k, committed_v = session.kv_arrays(dim)
            keys = [committed_k] + keys
            values = [committed_v] + values
        keys = np.concatenate(keys)
        values = np.concatenate(values)
        scores = keys @ q / np.sqrt(dim)
        weights = np.exp(scores - scores.max())
        weights /= weights.sum()
        return weights @ values

    def execute(self, requests: Sequence[InferenceRequest]) -> list[np.ndarray]:
        # Validate the whole batch before touching any session: a bad
        # batch-mate must never poison another request's KV state.
        for request in requests:
            if request.session_id is None:
                raise ValueError("decode requests need a session_id")
        xs = np.stack([request.payload for request in requests])[:, None, :]
        # K/V pairs this batch produces, staged per session so a later
        # step of the same session attends over an earlier batch-mate's
        # state (exactly like sequential execution) while nothing is
        # committed to the cache until the whole batch succeeds.
        pending: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}
        with no_grad():
            qkv = self._project(xs, self.w_qkv)  # [b, 1, 3*dim]
            q, k, v = np.split(qkv, 3, axis=-1)
            contexts = []
            for i, request in enumerate(requests):
                staged = pending.setdefault(request.session_id, [])
                staged.append((k[i, 0], v[i, 0]))
                contexts.append(self._attend(request.session_id, q[i, 0], staged))
            ctx = np.stack(contexts)[:, None, :]
            h = xs + self._project(ctx, self.w_out)
            f1 = np.maximum(self._project(h, self.w_ffn1), 0.0)
            y = h + self._project(f1, self.w_ffn2)
        # The whole batch succeeded: commit every staged K/V (lazily
        # opening sessions), so a failed batch leaves no state behind.
        for session_id, staged in pending.items():
            if not self.cache.has_session(session_id):
                self.cache.open_session(session_id)
            for key, value in staged:
                self.cache.append_kv(session_id, key, value)
        return [y[i, 0].copy() for i in range(len(requests))]
