"""Serving observability: throughput, latency percentiles, occupancy.

Every number is derived from request timestamps stamped by the engine's
clock, so under a simulated clock the whole snapshot — including the
p50/p95/p99 latencies — is bit-deterministic and testable without a
single sleep.

:class:`Metrics` sits on the unified
:class:`~repro.obs.registry.MetricsRegistry` substrate: counts,
occupancy series, and latency distributions are registry instruments
(shared naming, JSON snapshot, Prometheus exposition via
:meth:`Metrics.to_prometheus`), while raw :class:`RequestRecord` rows
are kept alongside so percentiles and span throughput stay *exact* —
registry histograms bucket, records don't.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.obs.registry import MetricsRegistry
from repro.serving.request import RequestHandle

#: Percentiles of the latency summaries.
PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one completed request."""

    arrival: float
    started: float
    finished: float
    batch_size: int
    cache_hit: bool

    @property
    def latency(self) -> float:
        return self.finished - self.arrival

    @property
    def queue_wait(self) -> float:
        return self.started - self.arrival


def summarize(values: list[float]) -> dict[str, float]:
    """mean/p50/p95/p99 of a latency series (zeros when empty).

    The one summary shape every layer shares: per-engine latency and
    queue-wait summaries here, and the fleet-level aggregates in
    :mod:`repro.cluster.metrics`, so percentiles are always computed the
    same way from raw per-request records.
    """
    if not values:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    arr = np.asarray(values, dtype=float)
    p50, p95, p99 = np.percentile(arr, PERCENTILES)
    return {
        "mean": float(arr.mean()),
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
    }


_summary = summarize


def span_throughput(records) -> float:
    """Completed requests per second of observed span.

    ``records`` need ``arrival`` and ``finished`` attributes; the span
    runs from the earliest arrival to the latest completion, and a
    degenerate span (single instant) reports 0.  Shared by the
    per-engine recorder and the fleet-level
    :class:`repro.cluster.metrics.ClusterMetrics`, so "throughput"
    means the same thing at every layer.
    """
    if not records:
        return 0.0
    span = max(r.finished for r in records) - min(r.arrival for r in records)
    if span <= 0:
        return 0.0
    return len(records) / span


class Metrics:
    """Thread-safe recorder the :class:`ServingEngine` reports into.

    Counts and distributions live in a
    :class:`~repro.obs.registry.MetricsRegistry` (pass one in to share
    it across recorders; a private one is built by default); exact
    per-request rows live in ``_records``.  Exact occupancy histograms
    are labelled counter series (``size="4"``), which keeps them
    lossless across merges.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._lock = threading.Lock()
        self._records: list[RequestRecord] = []
        self.registry = registry if registry is not None else MetricsRegistry()
        self._completed_c = self.registry.counter(
            "serving_requests_completed_total", "Resolved requests"
        )
        self._failed_c = self.registry.counter(
            "serving_requests_failed_total", "Failed requests"
        )
        self._cache_hits_c = self.registry.counter(
            "serving_cache_hits_total", "Requests served from cache"
        )
        self._latency_h = self.registry.histogram(
            "serving_request_latency_seconds", "End-to-end request latency"
        )
        self._queue_wait_h = self.registry.histogram(
            "serving_queue_wait_seconds", "Admission-to-execution wait"
        )

    def _occupancy_counter(self, name: str, size: int):
        return self.registry.counter(
            name, "Exact occupancy histogram (labelled counter)", size=size
        )

    # -- engine side ---------------------------------------------------------
    def record_request(self, handle: RequestHandle) -> None:
        """Record a resolved (successful) request from its handle."""
        record = RequestRecord(
            arrival=handle.arrival,
            started=handle.started if handle.started is not None else handle.arrival,
            finished=handle.finished
            if handle.finished is not None
            else handle.arrival,
            batch_size=handle.batch_size or 0,
            cache_hit=handle.cache_hit,
        )
        self.record(record)

    def record_batch(self, size: int) -> None:
        """Record one executed batch's occupancy."""
        counter = self._occupancy_counter("serving_batches_total", size)
        with self._lock:
            counter.inc()

    def record_iteration(self, active: int) -> None:
        """Record one continuous-scheduler iteration's active-session
        count (sessionless fill-in requests count as one lane each)."""
        counter = self._occupancy_counter("serving_iterations_total", active)
        with self._lock:
            counter.inc()

    def record_failures(self, count: int = 1) -> None:
        with self._lock:
            self._failed_c.inc(count)

    def record(self, record: RequestRecord) -> None:
        """Record one already-built :class:`RequestRecord` (merging path)."""
        with self._lock:
            self._records.append(record)
            self._completed_c.inc()
            if record.cache_hit:
                self._cache_hits_c.inc()
            self._latency_h.observe(record.latency)
            self._queue_wait_h.observe(record.queue_wait)

    # -- read side -----------------------------------------------------------
    def records(self) -> list[RequestRecord]:
        """Copy of every completed-request record (aggregation hook)."""
        with self._lock:
            return list(self._records)

    @classmethod
    def merged(cls, parts: "list[Metrics] | tuple[Metrics, ...]") -> "Metrics":
        """One recorder holding every part's records, batches, failures.

        The cluster layer merges per-replica recorders with this to get
        fleet-wide latency and queue-wait percentiles computed from the
        raw records — not averaged from per-replica summaries, which
        would be wrong for percentiles.  Registry families merge too
        (counters and labelled occupancy series sum, so batch *and*
        iteration occupancy histograms are preserved exactly), and the
        edge cases hold: no parts yields an empty recorder, and parts
        holding only failures contribute their failure counts.
        """
        out = cls()
        for part in parts:
            with part._lock:
                out._records.extend(part._records)
                out.registry.merge_from(part.registry)
        return out

    @property
    def completed(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def failed(self) -> int:
        with self._lock:
            return int(self._failed_c.value)

    @property
    def cache_hits(self) -> int:
        with self._lock:
            return int(self._cache_hits_c.value)

    def throughput(self) -> float:
        """Completed requests per second (see :func:`span_throughput`)."""
        with self._lock:
            records = list(self._records)
        return span_throughput(records)

    def latency_summary(self) -> dict[str, float]:
        with self._lock:
            values = [record.latency for record in self._records]
        return _summary(values)

    def queue_wait_summary(self) -> dict[str, float]:
        with self._lock:
            values = [record.queue_wait for record in self._records]
        return _summary(values)

    def _occupancy_series(self, name: str) -> dict[int, int]:
        series = self.registry.counter_series(name, "size")
        return {
            size: count
            for size, count in sorted(
                (int(value), int(total)) for value, total in series.items()
            )
        }

    def batch_occupancy(self) -> dict[int, int]:
        """Histogram: batch size -> number of batches executed."""
        return self._occupancy_series("serving_batches_total")

    def mean_occupancy(self) -> float:
        occupancy = self.batch_occupancy()
        total = sum(size * n for size, n in occupancy.items())
        batches = sum(occupancy.values())
        return total / batches if batches else 0.0

    def iteration_occupancy(self) -> dict[int, int]:
        """Histogram: active sessions -> continuous iterations executed.

        Empty unless the engine ran with ``scheduler="continuous"`` —
        the iteration-level counterpart of :meth:`batch_occupancy`.
        """
        return self._occupancy_series("serving_iterations_total")

    def mean_iteration_occupancy(self) -> float:
        occupancy = self.iteration_occupancy()
        total = sum(size * n for size, n in occupancy.items())
        iterations = sum(occupancy.values())
        return total / iterations if iterations else 0.0

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the registry instruments."""
        return self.registry.to_prometheus()

    def snapshot(self) -> dict:
        """JSON-able summary of everything recorded so far."""
        return {
            "completed": self.completed,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "throughput_rps": self.throughput(),
            "latency_s": self.latency_summary(),
            "queue_wait_s": self.queue_wait_summary(),
            "batch_occupancy": {
                str(size): count for size, count in self.batch_occupancy().items()
            },
            "mean_batch_occupancy": self.mean_occupancy(),
            "iteration_occupancy": {
                str(size): count
                for size, count in self.iteration_occupancy().items()
            },
            "mean_iteration_occupancy": self.mean_iteration_occupancy(),
        }
