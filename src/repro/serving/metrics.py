"""Serving observability: throughput, latency percentiles, occupancy.

Every number is derived from request timestamps stamped by the engine's
clock, so under a simulated clock the whole snapshot — including the
p50/p95/p99 latencies — is bit-deterministic and testable without a
single sleep.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.serving.request import RequestHandle

#: Percentiles of the latency summaries.
PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one completed request."""

    arrival: float
    started: float
    finished: float
    batch_size: int
    cache_hit: bool

    @property
    def latency(self) -> float:
        return self.finished - self.arrival

    @property
    def queue_wait(self) -> float:
        return self.started - self.arrival


def summarize(values: list[float]) -> dict[str, float]:
    """mean/p50/p95/p99 of a latency series (zeros when empty).

    The one summary shape every layer shares: per-engine latency and
    queue-wait summaries here, and the fleet-level aggregates in
    :mod:`repro.cluster.metrics`, so percentiles are always computed the
    same way from raw per-request records.
    """
    if not values:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    arr = np.asarray(values, dtype=float)
    p50, p95, p99 = np.percentile(arr, PERCENTILES)
    return {
        "mean": float(arr.mean()),
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
    }


_summary = summarize


def span_throughput(records) -> float:
    """Completed requests per second of observed span.

    ``records`` need ``arrival`` and ``finished`` attributes; the span
    runs from the earliest arrival to the latest completion, and a
    degenerate span (single instant) reports 0.  Shared by the
    per-engine recorder and the fleet-level
    :class:`repro.cluster.metrics.ClusterMetrics`, so "throughput"
    means the same thing at every layer.
    """
    if not records:
        return 0.0
    span = max(r.finished for r in records) - min(r.arrival for r in records)
    if span <= 0:
        return 0.0
    return len(records) / span


class Metrics:
    """Thread-safe recorder the :class:`ServingEngine` reports into."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[RequestRecord] = []
        self._batch_sizes: Counter[int] = Counter()
        self._iteration_sizes: Counter[int] = Counter()
        self._failed = 0

    # -- engine side ---------------------------------------------------------
    def record_request(self, handle: RequestHandle) -> None:
        """Record a resolved (successful) request from its handle."""
        record = RequestRecord(
            arrival=handle.arrival,
            started=handle.started if handle.started is not None else handle.arrival,
            finished=handle.finished
            if handle.finished is not None
            else handle.arrival,
            batch_size=handle.batch_size or 0,
            cache_hit=handle.cache_hit,
        )
        with self._lock:
            self._records.append(record)

    def record_batch(self, size: int) -> None:
        """Record one executed batch's occupancy."""
        with self._lock:
            self._batch_sizes[size] += 1

    def record_iteration(self, active: int) -> None:
        """Record one continuous-scheduler iteration's active-session
        count (sessionless fill-in requests count as one lane each)."""
        with self._lock:
            self._iteration_sizes[active] += 1

    def record_failures(self, count: int = 1) -> None:
        with self._lock:
            self._failed += count

    def record(self, record: RequestRecord) -> None:
        """Record one already-built :class:`RequestRecord` (merging path)."""
        with self._lock:
            self._records.append(record)

    # -- read side -----------------------------------------------------------
    def records(self) -> list[RequestRecord]:
        """Copy of every completed-request record (aggregation hook)."""
        with self._lock:
            return list(self._records)

    @classmethod
    def merged(cls, parts: "list[Metrics] | tuple[Metrics, ...]") -> "Metrics":
        """One recorder holding every part's records, batches, failures.

        The cluster layer merges per-replica recorders with this to get
        fleet-wide latency and queue-wait percentiles computed from the
        raw records — not averaged from per-replica summaries, which
        would be wrong for percentiles.
        """
        out = cls()
        for part in parts:
            with part._lock:
                out._records.extend(part._records)
                out._batch_sizes.update(part._batch_sizes)
                out._iteration_sizes.update(part._iteration_sizes)
                out._failed += part._failed
        return out

    @property
    def completed(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def failed(self) -> int:
        with self._lock:
            return self._failed

    @property
    def cache_hits(self) -> int:
        with self._lock:
            return sum(1 for record in self._records if record.cache_hit)

    def throughput(self) -> float:
        """Completed requests per second (see :func:`span_throughput`)."""
        with self._lock:
            records = list(self._records)
        return span_throughput(records)

    def latency_summary(self) -> dict[str, float]:
        with self._lock:
            values = [record.latency for record in self._records]
        return _summary(values)

    def queue_wait_summary(self) -> dict[str, float]:
        with self._lock:
            values = [record.queue_wait for record in self._records]
        return _summary(values)

    def batch_occupancy(self) -> dict[int, int]:
        """Histogram: batch size -> number of batches executed."""
        with self._lock:
            return dict(sorted(self._batch_sizes.items()))

    def mean_occupancy(self) -> float:
        with self._lock:
            total = sum(size * n for size, n in self._batch_sizes.items())
            batches = sum(self._batch_sizes.values())
        return total / batches if batches else 0.0

    def iteration_occupancy(self) -> dict[int, int]:
        """Histogram: active sessions -> continuous iterations executed.

        Empty unless the engine ran with ``scheduler="continuous"`` —
        the iteration-level counterpart of :meth:`batch_occupancy`.
        """
        with self._lock:
            return dict(sorted(self._iteration_sizes.items()))

    def mean_iteration_occupancy(self) -> float:
        with self._lock:
            total = sum(size * n for size, n in self._iteration_sizes.items())
            iterations = sum(self._iteration_sizes.values())
        return total / iterations if iterations else 0.0

    def snapshot(self) -> dict:
        """JSON-able summary of everything recorded so far."""
        return {
            "completed": self.completed,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "throughput_rps": self.throughput(),
            "latency_s": self.latency_summary(),
            "queue_wait_s": self.queue_wait_summary(),
            "batch_occupancy": {
                str(size): count for size, count in self.batch_occupancy().items()
            },
            "mean_batch_occupancy": self.mean_occupancy(),
            "iteration_occupancy": {
                str(size): count
                for size, count in self.iteration_occupancy().items()
            },
            "mean_iteration_occupancy": self.mean_iteration_occupancy(),
        }
