"""Dynamic batching: coalescing queued requests under a wait policy.

The paper's Sec. VI-B decode analysis shows that small latency-sensitive
requests leave the photonic core idle unless they are batched; the
:class:`DynamicBatcher` implements the standard dynamic-batching policy
that closes that gap: take up to ``max_batch_size`` requests, but never
hold the oldest request longer than ``max_wait_us`` — the knob that
trades batch occupancy (throughput) against queueing latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.request import InferenceRequest, RequestQueue


@dataclass(frozen=True)
class BatchingPolicy:
    """Coalescing policy of the serving engine.

    Attributes:
        max_batch_size: hard occupancy cap of one coalesced batch (maps
            onto the leading batch axis the photonic engine shards).
        max_wait_us: microseconds the *oldest* queued request may wait
            for the batch to fill before it is dispatched partially
            full.  0 dispatches whatever is queued immediately.
    """

    max_batch_size: int = 8
    max_wait_us: float = 1_000.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {self.max_wait_us}")

    @property
    def wait_s(self) -> float:
        """The wait budget in clock seconds."""
        return self.max_wait_us * 1e-6


class DynamicBatcher:
    """Coalesces queue entries into batches under a :class:`BatchingPolicy`.

    Two consumption modes over the same policy logic:

    * :meth:`next_batch` — blocking; used by the wall-clock worker
      thread.  Waits for the first request, then waits until either the
      batch fills or the oldest request's wait budget expires.
    * :meth:`collect` — non-blocking; used in manual-stepping mode
      (simulated clock).  Returns a batch only when the policy says one
      is due at the clock's current instant (or when forced).
    """

    def __init__(self, queue: RequestQueue, policy: BatchingPolicy, clock) -> None:
        self.queue = queue
        self.policy = policy
        self.clock = clock

    def _due_locked(self, now: float) -> bool:
        """Policy check; caller holds the queue mutex (queue non-empty)."""
        items = self.queue._items
        if len(items) >= self.policy.max_batch_size:
            return True
        return now - items[0].arrival >= self.policy.wait_s

    def next_batch(self) -> list[InferenceRequest] | None:
        """Block until a batch is due; ``None`` once closed and drained."""
        queue = self.queue
        with queue.not_empty:
            while True:
                items = queue._items
                if not items:
                    if queue.closed:
                        return None
                    queue.not_empty.wait()
                    continue
                if queue.closed or self._due_locked(self.clock.now()):
                    # A closing queue drains immediately: pending work
                    # still completes, it just stops waiting for company.
                    return queue.pop_locked(self.policy.max_batch_size)
                remaining = (
                    items[0].arrival + self.policy.wait_s - self.clock.now()
                )
                queue.not_empty.wait(remaining)

    def collect(self, *, force: bool = False) -> list[InferenceRequest]:
        """Non-blocking pop of one due batch (empty list when none is)."""
        queue = self.queue
        with queue.mutex:
            if not queue._items:
                return []
            if force or queue.closed or self._due_locked(self.clock.now()):
                return queue.pop_locked(self.policy.max_batch_size)
            return []
